//! DC operating-point analysis.
//!
//! Computes the quiescent state the paper requires before any mixed-signal
//! simulation can start ("the synchronization also requires the formal
//! definition of a consistent initial (quiescent) state for the whole
//! mixed-signal system", §3). Capacitors are open, inductors are shorts;
//! nonlinear elements are solved by Newton iteration with SPICE-style
//! junction limiting, falling back to gmin stepping and source stepping
//! when plain Newton fails.

use crate::assembly::{MnaSystem, SolverBackend, Stamp};
use crate::devices::{nmos_linearize, NmosOp};
use crate::mna::{
    stamp_branch_kcl, stamp_branch_voltage, stamp_conductance, stamp_current, stamp_mos,
    stamp_vccs, MnaLayout,
};
use crate::{Circuit, ElementId, ElementKind, NetError, NodeId};
use ams_math::{DVec, SolveStats};

/// Thermal voltage at 300 K.
pub(crate) const VT: f64 = 0.02585;
/// Minimum conductance added across nonlinear junctions.
pub(crate) const GMIN: f64 = 1e-12;

/// Per-diode linearization state used across analyses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DiodeOp {
    /// Small-signal conductance at the operating point.
    pub g: f64,
    /// Junction current at the operating point.
    pub i: f64,
}

/// Evaluates the (exponent-limited) Shockley model: returns `(i, g)`.
pub(crate) fn diode_iv(v: f64, is_sat: f64, n: f64) -> (f64, f64) {
    let vt = n * VT;
    // Linearize beyond v_max to avoid overflow; the Newton limiter keeps
    // iterates out of this region in converged solutions.
    let v_max = 40.0 * vt;
    if v <= v_max {
        let e = (v / vt).exp();
        (is_sat * (e - 1.0), is_sat / vt * e)
    } else {
        let e = (v_max / vt).exp();
        let g = is_sat / vt * e;
        (is_sat * (e - 1.0) + g * (v - v_max), g)
    }
}

/// SPICE-style junction voltage limiting (pnjlim).
pub(crate) fn pnjlim(vnew: f64, vold: f64, vt: f64, vcrit: f64) -> f64 {
    if vnew > vcrit && (vnew - vold).abs() > 2.0 * vt {
        if vold > 0.0 {
            let arg = 1.0 + (vnew - vold) / vt;
            if arg > 0.0 {
                vold + vt * arg.ln()
            } else {
                vcrit
            }
        } else {
            vt * (vnew / vt).max(1e-30).ln()
        }
    } else {
        vnew
    }
}

/// The solved DC operating point of a circuit.
///
/// See [`Circuit::dc_operating_point`] for the usual entry point.
#[derive(Debug, Clone)]
pub struct DcSolution {
    pub(crate) circuit: Circuit,
    pub(crate) layout: MnaLayout,
    pub(crate) x: DVec<f64>,
    pub(crate) diode_ops: Vec<Option<DiodeOp>>,
    pub(crate) nmos_ops: Vec<Option<NmosOp>>,
    /// Newton iterations used by the successful attempt.
    pub iterations: usize,
    /// Linear-solver counters accumulated over every attempt (including
    /// failed gmin/source-stepping ones).
    pub solve: SolveStats,
}

impl DcSolution {
    /// The voltage of a node (0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        assert!(
            node.index() < self.layout.n_nodes,
            "node {} out of range",
            node.index()
        );
        match self.layout.node_var(node) {
            None => 0.0,
            Some(i) => self.x[i],
        }
    }

    /// The branch current of a voltage-defined element (voltage source,
    /// inductor, VCVS, CCVS), or the computed current for resistors,
    /// capacitors (always 0 at DC), diodes and switches.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownElement`] for handles outside the
    /// circuit or for current sources (use the source value directly).
    pub fn current(&self, elem: ElementId) -> Result<f64, NetError> {
        let e = self
            .circuit
            .elements()
            .get(elem.index())
            .ok_or(NetError::UnknownElement {
                index: elem.index(),
                what: "current",
            })?;
        if let Some(b) = self.layout.branch_var(elem) {
            return Ok(self.x[b]);
        }
        let v = self.voltage(e.p) - self.voltage(e.n);
        match &e.kind {
            ElementKind::Resistor { ohms } => Ok(v / ohms),
            ElementKind::Capacitor { .. } => Ok(0.0),
            ElementKind::Switch {
                r_on,
                r_off,
                initially_on,
            } => {
                let r = if *initially_on { *r_on } else { *r_off };
                Ok(v / r)
            }
            ElementKind::Diode { is_sat, n } => Ok(diode_iv(v, *is_sat, *n).0 + GMIN * v),
            ElementKind::Nmos {
                gate,
                kp,
                vt,
                lambda,
            } => {
                let vg = self.voltage(*gate);
                let vd = self.voltage(e.p);
                let vs = self.voltage(e.n);
                Ok(nmos_linearize(vg, vd, vs, *kp, *vt, *lambda).id + GMIN * v)
            }
            _ => Err(NetError::UnknownElement {
                index: elem.index(),
                what: "computable branch current",
            }),
        }
    }

    /// Raw access to the MNA solution vector.
    pub fn unknowns(&self) -> &[f64] {
        self.x.as_slice()
    }
}

/// Options for the DC solve (mostly for tests and the transient solver).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DcOptions {
    pub max_iter: usize,
    pub v_tol: f64,
    pub rel_tol: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iter: 200,
            v_tol: 1e-9,
            rel_tol: 1e-6,
        }
    }
}

impl Circuit {
    /// Solves the DC operating point with all external inputs at 0 and
    /// switches in their initial states.
    ///
    /// # Errors
    ///
    /// * [`NetError::Singular`] for floating nodes or source loops.
    /// * [`NetError::NoConvergence`] if Newton plus gmin/source stepping
    ///   all fail.
    pub fn dc_operating_point(&self) -> Result<DcSolution, NetError> {
        let ext = vec![0.0; self.external_input_count()];
        let switches = self.initial_switch_states();
        self.dc_operating_point_with(&ext, &switches)
    }

    /// Solves the DC operating point with explicit external-input values
    /// and switch states.
    ///
    /// # Errors
    ///
    /// See [`Circuit::dc_operating_point`].
    pub fn dc_operating_point_with(
        &self,
        ext: &[f64],
        switches: &[bool],
    ) -> Result<DcSolution, NetError> {
        self.dc_operating_point_with_backend(ext, switches, SolverBackend::default())
    }

    /// Solves the DC operating point on an explicit solver backend.
    ///
    /// The sparse backend records the MNA sparsity pattern once and
    /// reuses its symbolic analysis across every Newton iteration and
    /// every gmin/source-stepping attempt.
    ///
    /// # Errors
    ///
    /// See [`Circuit::dc_operating_point`].
    pub fn dc_operating_point_with_backend(
        &self,
        ext: &[f64],
        switches: &[bool],
        backend: SolverBackend,
    ) -> Result<DcSolution, NetError> {
        let layout = MnaLayout::build(self);
        let opts = DcOptions::default();
        let n = layout.n_unknowns;
        // One system for all attempts: the stamp sequence (hence the
        // pattern) does not depend on the iterate, gmin or source scale.
        let zero = DVec::zeros(n);
        let mut sys = MnaSystem::new(n, backend.use_sparse(n), |st| {
            assemble_dc(self, &layout, &zero, ext, switches, 1.0, GMIN, st)
        });

        // Attempt 1: plain Newton from zero.
        if let Ok(sol) = dc_newton(
            self, &layout, &mut sys, ext, switches, 1.0, GMIN, None, &opts,
        ) {
            return Ok(sol);
        }
        // Attempt 2: gmin stepping.
        let mut guess: Option<DVec<f64>> = None;
        let mut ok = true;
        for exp in (-12..=-2).rev().map(|e| 10f64.powi(e)) {
            match dc_newton(
                self,
                &layout,
                &mut sys,
                ext,
                switches,
                1.0,
                exp,
                guess.take(),
                &opts,
            ) {
                Ok(sol) => {
                    guess = Some(sol.x);
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            if let Some(g) = guess {
                if let Ok(sol) = dc_newton(
                    self,
                    &layout,
                    &mut sys,
                    ext,
                    switches,
                    1.0,
                    GMIN,
                    Some(g),
                    &opts,
                ) {
                    return Ok(sol);
                }
            }
        }
        // Attempt 3: source stepping.
        let mut guess: Option<DVec<f64>> = None;
        for k in 1..=20 {
            let scale = k as f64 / 20.0;
            match dc_newton(
                self,
                &layout,
                &mut sys,
                ext,
                switches,
                scale,
                GMIN,
                guess.take(),
                &opts,
            ) {
                Ok(sol) => guess = Some(sol.x),
                Err(e) => return Err(e),
            }
        }
        dc_newton(
            self, &layout, &mut sys, ext, switches, 1.0, GMIN, guess, &opts,
        )
    }

    /// Initial switch states, indexed by element position.
    pub(crate) fn initial_switch_states(&self) -> Vec<bool> {
        self.elements()
            .iter()
            .map(|e| match e.kind {
                ElementKind::Switch { initially_on, .. } => initially_on,
                _ => false,
            })
            .collect()
    }
}

/// One Newton solve at fixed gmin / source scaling.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dc_newton(
    ckt: &Circuit,
    layout: &MnaLayout,
    sys: &mut MnaSystem<f64>,
    ext: &[f64],
    switches: &[bool],
    source_scale: f64,
    gmin: f64,
    guess: Option<DVec<f64>>,
    opts: &DcOptions,
) -> Result<DcSolution, NetError> {
    let n = layout.n_unknowns;
    let mut x = guess.unwrap_or_else(|| DVec::zeros(n));
    if x.len() != n {
        x = DVec::zeros(n);
    }
    let nonlinear = ckt.elements().iter().any(|e| e.is_nonlinear());

    let max_iter = if nonlinear { opts.max_iter } else { 2 };
    for iter in 1..=max_iter {
        sys.assemble(|st| assemble_dc(ckt, layout, &x, ext, switches, source_scale, gmin, st));
        sys.factor(true)?;
        let x_new = sys.solve_rhs()?;

        // Junction limiting on diode voltages.
        let mut x_lim = x_new.clone();
        for e in ckt.elements() {
            if let ElementKind::Diode { is_sat, n: nf } = e.kind {
                let vt = nf * VT;
                let vcrit = vt * (vt / (std::f64::consts::SQRT_2 * is_sat)).ln();
                let vold = branch_voltage(layout, &x, e.p, e.n);
                let vnew = branch_voltage(layout, &x_new, e.p, e.n);
                let vlim = pnjlim(vnew, vold, vt, vcrit);
                if (vlim - vnew).abs() > 0.0 {
                    // Push the limited voltage back onto the node pair,
                    // preferring the non-ground node.
                    let dv = vlim - vnew;
                    if let Some(ip) = layout.node_var(e.p) {
                        x_lim[ip] += dv;
                    } else if let Some(in_) = layout.node_var(e.n) {
                        x_lim[in_] -= dv;
                    }
                }
            }
        }

        // Convergence: change in unknowns.
        let mut converged = true;
        for i in 0..n {
            let delta = (x_lim[i] - x[i]).abs();
            if delta > opts.v_tol + opts.rel_tol * x_lim[i].abs().max(x[i].abs()) {
                converged = false;
                break;
            }
        }
        let finite = x_lim.is_finite();
        x = x_lim;
        if converged && finite && (iter > 1 || !nonlinear) {
            let diode_ops = compute_diode_ops(ckt, layout, &x);
            let nmos_ops = compute_nmos_ops(ckt, layout, &x);
            return Ok(DcSolution {
                circuit: ckt.clone(),
                layout: layout.clone(),
                x,
                diode_ops,
                nmos_ops,
                iterations: iter,
                solve: sys.stats(),
            });
        }
        if !finite {
            break;
        }
    }
    Err(NetError::NoConvergence {
        analysis: "dc operating point",
        iterations: opts.max_iter,
    })
}

fn branch_voltage(layout: &MnaLayout, x: &DVec<f64>, p: NodeId, n: NodeId) -> f64 {
    let vp = layout.node_var(p).map_or(0.0, |i| x[i]);
    let vn = layout.node_var(n).map_or(0.0, |i| x[i]);
    vp - vn
}

pub(crate) fn compute_nmos_ops(
    ckt: &Circuit,
    layout: &MnaLayout,
    x: &DVec<f64>,
) -> Vec<Option<NmosOp>> {
    ckt.elements()
        .iter()
        .map(|e| match e.kind {
            ElementKind::Nmos {
                gate,
                kp,
                vt,
                lambda,
            } => {
                let vg = layout.node_var(gate).map_or(0.0, |i| x[i]);
                let vd = layout.node_var(e.p).map_or(0.0, |i| x[i]);
                let vs = layout.node_var(e.n).map_or(0.0, |i| x[i]);
                Some(nmos_linearize(vg, vd, vs, kp, vt, lambda))
            }
            _ => None,
        })
        .collect()
}

pub(crate) fn compute_diode_ops(
    ckt: &Circuit,
    layout: &MnaLayout,
    x: &DVec<f64>,
) -> Vec<Option<DiodeOp>> {
    ckt.elements()
        .iter()
        .map(|e| match e.kind {
            ElementKind::Diode { is_sat, n } => {
                let v = branch_voltage(layout, x, e.p, e.n);
                let (i, g) = diode_iv(v, is_sat, n);
                Some(DiodeOp { g, i })
            }
            _ => None,
        })
        .collect()
}

/// Assembles the DC-linearized MNA system at the given iterate.
///
/// The stamp-call sequence is data-independent (it depends only on the
/// circuit topology), which is what makes the recorded sparsity pattern
/// and stamp pointers of the sparse backend valid for every iterate,
/// gmin and source scale.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_dc(
    ckt: &Circuit,
    layout: &MnaLayout,
    x: &DVec<f64>,
    ext: &[f64],
    switches: &[bool],
    source_scale: f64,
    gmin: f64,
    st: &mut dyn Stamp<f64>,
) {
    for (idx, e) in ckt.elements().iter().enumerate() {
        let eid = ElementId(idx);
        match &e.kind {
            ElementKind::Resistor { ohms } => {
                stamp_conductance(layout, st, e.p, e.n, 1.0 / ohms);
            }
            ElementKind::Capacitor { .. } => {
                // Open at DC; tiny gmin keeps otherwise-floating nodes solvable.
                stamp_conductance(layout, st, e.p, e.n, GMIN);
            }
            ElementKind::Inductor { .. } => {
                // Short at DC: branch with V(p) − V(n) = 0.
                let b = layout.branch_var(eid).expect("inductor has a branch");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
            }
            ElementKind::VoltageSource { wave, .. } => {
                let b = layout.branch_var(eid).expect("vsource has a branch");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
                st.rhs(b, source_scale * wave.dc_value(ext));
            }
            ElementKind::CurrentSource { wave, .. } => {
                stamp_current(layout, st, e.p, e.n, source_scale * wave.dc_value(ext));
            }
            ElementKind::Vcvs { cp, cn, gain } => {
                let b = layout.branch_var(eid).expect("vcvs has a branch");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
                stamp_branch_voltage(layout, st, b, *cp, *cn, -*gain);
            }
            ElementKind::Vccs { cp, cn, gm } => {
                stamp_vccs(layout, st, e.p, e.n, *cp, *cn, *gm);
            }
            ElementKind::Cccs { ctrl, gain } => {
                let cb = layout
                    .branch_var(*ctrl)
                    .expect("controlling element validated at construction");
                if let Some(ip) = layout.node_var(e.p) {
                    st.mat(ip, cb, *gain);
                }
                if let Some(in_) = layout.node_var(e.n) {
                    st.mat(in_, cb, -*gain);
                }
            }
            ElementKind::Ccvs { ctrl, r } => {
                let b = layout.branch_var(eid).expect("ccvs has a branch");
                let cb = layout
                    .branch_var(*ctrl)
                    .expect("controlling element validated at construction");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
                st.mat(b, cb, -*r);
            }
            ElementKind::Diode { is_sat, n } => {
                let v = branch_voltage(layout, x, e.p, e.n);
                let (i, g) = diode_iv(v, *is_sat, *n);
                // Companion: i ≈ g·v + (i₀ − g·v₀).
                stamp_conductance(layout, st, e.p, e.n, g + gmin);
                stamp_current(layout, st, e.p, e.n, i - g * v);
            }
            ElementKind::Nmos {
                gate,
                kp,
                vt,
                lambda,
            } => {
                let vg = layout.node_var(*gate).map_or(0.0, |i| x[i]);
                let vd = layout.node_var(e.p).map_or(0.0, |i| x[i]);
                let vs = layout.node_var(e.n).map_or(0.0, |i| x[i]);
                let op = nmos_linearize(vg, vd, vs, *kp, *vt, *lambda);
                stamp_mos(layout, st, e.p, *gate, e.n, &op, vg, vd, vs);
                stamp_conductance(layout, st, e.p, e.n, gmin);
            }
            ElementKind::Switch { r_on, r_off, .. } => {
                let r = if switches.get(idx).copied().unwrap_or(false) {
                    *r_on
                } else {
                    *r_off
                };
                stamp_conductance(layout, st, e.p, e.n, 1.0 / r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("V1", vin, Circuit::GROUND, 10.0)
            .unwrap();
        ckt.resistor("R1", vin, out, 6e3).unwrap();
        ckt.resistor("R2", out, Circuit::GROUND, 4e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 4.0).abs() < 1e-9);
        assert!((op.voltage(vin) - 10.0).abs() < 1e-12);
        assert_eq!(op.voltage(Circuit::GROUND), 0.0);
    }

    #[test]
    fn voltage_source_current() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.voltage_source("V1", a, Circuit::GROUND, 5.0).unwrap();
        let r = ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        // The source supplies 5 mA; the branch current flows p→n inside
        // the source, so it reads −5 mA.
        assert!((op.current(v).unwrap() + 5e-3).abs() < 1e-12);
        assert!((op.current(r).unwrap() - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        let l = ckt.inductor("L1", a, b, 1e-3).unwrap();
        ckt.resistor("R1", b, Circuit::GROUND, 100.0).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-9);
        assert!((op.current(l).unwrap() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.capacitor("C1", b, Circuit::GROUND, 1e-6).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        // No current flows: b sits at the source voltage.
        assert!((op.voltage(b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // 1 mA from ground into a (p = ground, n = a).
        ckt.current_source("I1", Circuit::GROUND, a, 1e-3).unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 2e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        assert!((op.voltage(a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn vcvs_amplifier() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("V1", inp, Circuit::GROUND, 0.1).unwrap();
        ckt.vcvs("E1", out, Circuit::GROUND, inp, Circuit::GROUND, 50.0)
            .unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_transconductor() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("V1", inp, Circuit::GROUND, 1.0).unwrap();
        // I(out→gnd) = 1 mS · V(in): pulls current out of node `out`.
        ckt.vccs("G1", out, Circuit::GROUND, inp, Circuit::GROUND, 1e-3)
            .unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        assert!((op.voltage(out) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cccs_current_mirror() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        let v = ckt
            .voltage_source("Vsense", a, Circuit::GROUND, 1.0)
            .unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        // Branch current of Vsense is −1 mA; mirror ×2 into `out`.
        ckt.cccs("F1", Circuit::GROUND, out, v, 2.0).unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        // The controlling branch current (a→gnd inside Vsense) is −1 mA;
        // F1 injects gain·ictrl into its n terminal (out):
        // V(out) = gain·ictrl·RL = 2·(−1 mA)·1 kΩ = −2 V.
        let ictrl = op.current(v).unwrap();
        assert!((ictrl + 1e-3).abs() < 1e-9);
        assert!((op.voltage(out) - (2.0 * ictrl * 1e3)).abs() < 1e-9);
    }

    #[test]
    fn diode_forward_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, 5.0).unwrap();
        ckt.resistor("R1", a, d, 1e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let vd = op.voltage(d);
        // Silicon-ish drop in the 0.6–0.75 V range.
        assert!((0.55..0.8).contains(&vd), "vd = {vd}");
        // Current consistency: (5 − vd)/1k = diode current.
        let i_r = (5.0 - vd) / 1e3;
        let (i_d, _) = diode_iv(vd, 1e-14, 1.0);
        assert!((i_r - i_d).abs() / i_r < 1e-4, "i_r={i_r}, i_d={i_d}");
    }

    #[test]
    fn reverse_diode_blocks() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, -5.0).unwrap();
        ckt.resistor("R1", a, d, 1e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        // Nearly the full −5 V appears across the diode.
        assert!(op.voltage(d) < -4.9);
    }

    #[test]
    fn current_source_into_open_node_is_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // A current source forcing current into a node with no DC path to
        // anywhere: the node-voltage row is all zeros.
        ckt.current_source("I1", Circuit::GROUND, a, 1e-3).unwrap();
        let r = ckt.dc_operating_point();
        assert!(
            matches!(
                r,
                Err(NetError::Singular { .. }) | Err(NetError::NoConvergence { .. })
            ),
            "expected failure, got {r:?}"
        );
    }

    #[test]
    fn dangling_resistor_node_is_still_solvable() {
        // A node reached only through one resistor has a well-defined
        // voltage (no current flows): MNA handles it without gmin tricks.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, b, 1e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn switch_states_respected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source("V1", a, Circuit::GROUND, 10.0).unwrap();
        ckt.switch("S1", a, out, 1.0, 1e9, true).unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let op_on = ckt.dc_operating_point().unwrap();
        assert!((op_on.voltage(out) - 10.0 * 1e3 / 1001.0).abs() < 1e-6);

        let switches = vec![false];
        let op_off = ckt.dc_operating_point_with(&[], &switches).unwrap();
        assert!(op_off.voltage(out) < 1e-4);
    }

    #[test]
    fn external_input_drives_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let inp = ckt.external_input();
        ckt.voltage_source_wave("V1", a, Circuit::GROUND, crate::Waveform::External(inp))
            .unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let op = ckt
            .dc_operating_point_with(&[3.3], &ckt.initial_switch_states())
            .unwrap();
        assert!((op.voltage(a) - 3.3).abs() < 1e-12);
    }

    #[test]
    fn bridge_rectifier_dc() {
        // Full diode bridge with DC excitation: classic two-diode drop.
        let mut ckt = Circuit::new();
        let acp = ckt.node("acp");
        let acn = ckt.node("acn");
        let vp = ckt.node("vp");
        let vn = ckt.node("vn");
        ckt.voltage_source("V1", acp, acn, 5.0).unwrap();
        ckt.diode("D1", acp, vp, 1e-14, 1.0).unwrap();
        ckt.diode("D2", acn, vp, 1e-14, 1.0).unwrap();
        ckt.diode("D3", vn, acp, 1e-14, 1.0).unwrap();
        ckt.diode("D4", vn, acn, 1e-14, 1.0).unwrap();
        ckt.resistor("RL", vp, vn, 1e3).unwrap();
        // Reference the floating bridge to ground.
        ckt.resistor("Rref", vn, Circuit::GROUND, 1e6).unwrap();
        ckt.resistor("Rref2", acn, Circuit::GROUND, 1e6).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let vload = op.voltage(vp) - op.voltage(vn);
        assert!((3.0..4.2).contains(&vload), "vload = {vload}");
    }
}
