//! Regression tests for the adaptive-step controller.
//!
//! Two bugs shipped in the original `run_adaptive`:
//!
//! 1. the final step applied `.max(min_step)` *after* clamping to the
//!    remaining span, so when `t_end - time < min_step` the last step
//!    overshot `t_end` and probes observed samples past the horizon;
//! 2. the growth factor `(0.8 / err).min(3.0)` used an order-blind
//!    exponent of −1, over-reacting to the error estimate and causing
//!    needless rejections on stiff workloads.

use ams_net::{AdaptiveOptions, Circuit, IntegrationMethod, NodeId, TransientSolver, Waveform};

fn rc_circuit() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("R1", a, out, 1e3).unwrap();
    ckt.capacitor_ic("C1", out, Circuit::GROUND, 1e-6, 0.0)
        .unwrap();
    (ckt, out)
}

/// The E3 half-wave rectifier: 50 Hz source → diode → 100 µF ∥ 10 kΩ.
fn rectifier() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.voltage_source_wave(
        "V",
        src,
        Circuit::GROUND,
        Waveform::Sine {
            offset: 0.0,
            ampl: 10.0,
            freq: 50.0,
            phase: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("Rs", src, mid, 10.0).unwrap();
    ckt.diode("D", mid, out, 1e-12, 1.0).unwrap();
    ckt.capacitor("C", out, Circuit::GROUND, 100e-6).unwrap();
    ckt.resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
    (ckt, out)
}

/// Bug 1: with `min_step = max_step = 4 µs` and `t_end = 10 µs` the
/// remaining span after two steps (2 µs) is below `min_step`; the
/// pre-fix controller stepped 4 µs anyway and probed `t = 12 µs`.
#[test]
fn adaptive_final_step_never_overshoots_t_end() {
    let (ckt, _out) = rc_circuit();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_with_ic().unwrap();
    let t_end = 1.0e-5;
    // Loose tolerances: every 4 µs step on a 1 ms RC is accepted, so
    // the run exercises only the span clamp, not the error controller.
    let opts = AdaptiveOptions {
        rel_tol: 1e-2,
        abs_tol: 1e-3,
        initial_step: 4e-6,
        min_step: 4e-6,
        max_step: 4e-6,
    };
    let mut times = Vec::new();
    tr.run_adaptive(t_end, &opts, |s| times.push(s.time()))
        .unwrap();
    assert!(!times.is_empty());
    for t in &times {
        assert!(*t <= t_end, "probe observed t = {t} past t_end = {t_end}");
    }
    for w in times.windows(2) {
        assert!(w[0] < w[1], "probe times not strictly increasing: {w:?}");
    }
    let last = *times.last().unwrap();
    assert!(
        (last - t_end).abs() < 1e-12,
        "run stopped at {last}, expected {t_end}"
    );
    assert_eq!(tr.time(), last);
}

/// Bug 2: the order-blind growth factor produced 151 rejections (1476
/// accepted steps) on the E3 rectifier at `rel_tol = 1e-4`; the
/// order-aware controller needs 47 (975 steps). Guard against a
/// regression anywhere between the two, with slack for platform noise.
#[test]
fn adaptive_rejections_do_not_regress_on_stiff_rectifier() {
    let (ckt, out) = rectifier();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_dc().unwrap();
    tr.run_adaptive(
        0.1,
        &AdaptiveOptions {
            rel_tol: 1e-4,
            abs_tol: 1e-6,
            initial_step: 1e-7,
            max_step: 1e-3,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    let s = tr.stats();
    assert!(
        s.rejected <= 100,
        "rejection count regressed: {} (order-aware controller: 47, order-blind: 151)",
        s.rejected
    );
    assert!(
        s.steps <= 1200,
        "accepted-step count regressed: {} (order-aware controller: 975)",
        s.steps
    );
    // Accuracy must not degrade: the fine fixed-step reference gives
    // v_out ≈ 9.1316 V at t = 0.1 s.
    assert!(
        (tr.voltage(out) - 9.1316).abs() < 5e-3,
        "v_out = {}",
        tr.voltage(out)
    );
}

/// Backward Euler uses the order-1 exponent (err^(-1/2)) and must still
/// integrate the RC charge curve accurately.
#[test]
fn adaptive_backward_euler_stays_accurate() {
    let (ckt, out) = rc_circuit();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::BackwardEuler).unwrap();
    tr.initialize_with_ic().unwrap();
    tr.run_adaptive(
        1e-3,
        &AdaptiveOptions {
            rel_tol: 1e-5,
            abs_tol: 1e-9,
            initial_step: 1e-8,
            max_step: 1e-4,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    let expected = 1.0 - (-1.0f64).exp();
    assert!(
        (tr.voltage(out) - expected).abs() < 1e-3,
        "{} vs {expected}",
        tr.voltage(out)
    );
    assert!((tr.time() - 1e-3).abs() < 1e-12);
}
