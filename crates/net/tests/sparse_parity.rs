//! Dense/sparse backend parity on the paper's Figure 1 line network.
//!
//! The F1 ADSL subscriber-line interface (Vd → Rp → line ∥ Cl → Rl →
//! sub ∥ (Rs, Cs)) is the repo's reference netlist. Every analysis —
//! DC, transient, AC, noise — must produce the same answer on the
//! sparse backend as on the dense one, to well below solver tolerance,
//! and the sparse path must actually engage (symbolic analysis run,
//! numeric refactors over the cached pattern).

use ams_net::{
    Circuit, IntegrationMethod, Multiphysics, NodeId, SolverBackend, TransientSolver, Waveform,
};

/// Figure 1 line network. `sine_drive` selects the stimulus: a 5 kHz
/// sine source for transient runs, or a unit-magnitude AC source for
/// DC/AC/noise. Returns the circuit plus the probe nodes.
fn f1_line(sine_drive: bool) -> (Circuit, NodeId, NodeId, NodeId) {
    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    let line = ckt.node("line");
    let sub = ckt.node("sub");
    if sine_drive {
        ckt.voltage_source_wave(
            "Vd",
            drive,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 5e3,
                phase: 0.0,
            },
        )
        .unwrap();
    } else {
        ckt.voltage_source_ac("Vd", drive, Circuit::GROUND, 0.0, 1.0)
            .unwrap();
    }
    ckt.resistor("Rp", drive, line, 50.0).unwrap();
    ckt.capacitor("Cl", line, Circuit::GROUND, 20e-9).unwrap();
    ckt.resistor("Rl", line, sub, 130.0).unwrap();
    ckt.resistor("Rs", sub, Circuit::GROUND, 600.0).unwrap();
    ckt.capacitor("Cs", sub, Circuit::GROUND, 10e-9).unwrap();
    (ckt, drive, line, sub)
}

#[test]
fn dc_parity_on_f1() {
    let (ckt, drive, line, sub) = f1_line(false);
    let ext: Vec<f64> = vec![];
    let switches = vec![false; ckt.elements().len()];
    let dense = ckt
        .dc_operating_point_with_backend(&ext, &switches, SolverBackend::Dense)
        .unwrap();
    let sparse = ckt
        .dc_operating_point_with_backend(&ext, &switches, SolverBackend::Sparse)
        .unwrap();
    for node in [drive, line, sub] {
        assert!(
            (dense.voltage(node) - sparse.voltage(node)).abs() <= 1e-12,
            "node {}: dense {} vs sparse {}",
            node.index(),
            dense.voltage(node),
            sparse.voltage(node)
        );
    }
    assert!(
        sparse.solve.symbolic_analyses >= 1,
        "sparse backend must have run a symbolic analysis"
    );
    assert_eq!(
        dense.solve.symbolic_analyses, 0,
        "dense backend must not touch sparse counters"
    );
}

#[test]
fn transient_sparse_matches_dense_on_f1() {
    let (ckt, _, line, sub) = f1_line(true);
    let run = |backend: SolverBackend| {
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.backend = backend;
        tr.initialize_dc().unwrap();
        let mut trace = Vec::new();
        tr.run(200e-6, 0.5e-6, |s| {
            trace.push((s.voltage(line), s.voltage(sub)));
        })
        .unwrap();
        (trace, tr.stats())
    };
    let (dense, dense_stats) = run(SolverBackend::Dense);
    let (sparse, sparse_stats) = run(SolverBackend::Sparse);
    assert_eq!(dense.len(), sparse.len());
    for (i, ((dl, ds), (sl, ss))) in dense.iter().zip(&sparse).enumerate() {
        assert!(
            (dl - sl).abs() <= 1e-12 && (ds - ss).abs() <= 1e-12,
            "step {i}: dense ({dl}, {ds}) vs sparse ({sl}, {ss})"
        );
    }
    assert!(
        sparse_stats.solve.symbolic_analyses >= 1,
        "sparse transient must have built a symbolic factorization"
    );
    assert_eq!(dense_stats.solve.symbolic_analyses, 0);
    // Linear circuit, fixed step: the LTI fast path must hold on both
    // backends — at most 2 factorizations (DC init + first step).
    assert!(
        dense_stats.factorizations <= 2 && sparse_stats.factorizations <= 2,
        "LTI fast path: dense {} / sparse {} factorizations",
        dense_stats.factorizations,
        sparse_stats.factorizations
    );
}

#[test]
fn ac_parity_on_f1() {
    let (ckt, _, line, sub) = f1_line(false);
    let op = ckt.dc_operating_point().unwrap();
    let freqs = [1e2, 1e3, 5e3, 1e4, 1e5, 1e6];
    let dense = ckt
        .ac_sweep_with(&op, &freqs, SolverBackend::Dense)
        .unwrap();
    let sparse = ckt
        .ac_sweep_with(&op, &freqs, SolverBackend::Sparse)
        .unwrap();
    for (d, s) in dense.iter().zip(&sparse) {
        for node in [line, sub] {
            let (vd, vs) = (d.voltage(node), s.voltage(node));
            assert!(
                (vd - vs).abs() <= 1e-12 * (1.0 + vd.abs()),
                "node {}: dense {} vs sparse {}",
                node.index(),
                vd,
                vs
            );
        }
    }
}

#[test]
fn noise_parity_on_f1() {
    let (ckt, _, _, sub) = f1_line(false);
    let op = ckt.dc_operating_point().unwrap();
    let freqs = [1e3, 1e4, 1e5];
    let dense = ckt
        .noise_analysis_with(&op, sub, &freqs, SolverBackend::Dense)
        .unwrap();
    let sparse = ckt
        .noise_analysis_with(&op, sub, &freqs, SolverBackend::Sparse)
        .unwrap();
    for (d, s) in dense.points.iter().zip(&sparse.points) {
        assert!(
            (d.total_psd - s.total_psd).abs() <= 1e-12 * (1.0 + d.total_psd.abs()),
            "total PSD: dense {} vs sparse {}",
            d.total_psd,
            s.total_psd
        );
        for (dc, sc) in d.contributions.iter().zip(&s.contributions) {
            assert_eq!(dc.element, sc.element);
            assert!(
                (dc.output_psd - sc.output_psd).abs() <= 1e-12 * (1.0 + dc.output_psd.abs()),
                "{}: dense {} vs sparse {}",
                dc.element,
                dc.output_psd,
                sc.output_psd
            );
        }
    }
}

#[test]
fn multiphysics_runs_on_sparse_backend() {
    // Mass–spring–damper settling to terminal velocity F/b, solved on
    // the sparse backend: multi-domain MNA reuses the same CSR path.
    let mut ckt = Circuit::new();
    let body = ckt.mech_node("body");
    ckt.mass("m", body, 1.0).unwrap();
    ckt.damper("b", body, Circuit::mech_ground(), 2.0).unwrap();
    ckt.force_source("F", body, 10.0).unwrap();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.backend = SolverBackend::Sparse;
    tr.initialize_with_ic().unwrap();
    for _ in 0..20_000 {
        tr.step(1e-3).unwrap();
    }
    assert!(
        (tr.voltage(body.0) - 5.0).abs() < 1e-3,
        "terminal velocity {}",
        tr.voltage(body.0)
    );
    assert!(
        tr.stats().solve.symbolic_analyses >= 1,
        "sparse backend engaged"
    );
}
