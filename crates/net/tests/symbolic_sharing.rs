//! Symbolic-factor sharing across solver instances: the batched-sweep
//! amortization primitive. One solver pays the sparse symbolic analysis;
//! siblings over value-variants of the same topology adopt it and pay
//! only numeric refactors.

use ams_net::{
    Circuit, ElementId, IntegrationMethod, NodeId, SolverBackend, TransientSolver, Waveform,
};

struct Ladder {
    ckt: Circuit,
    resistors: Vec<ElementId>,
    caps: Vec<ElementId>,
    source: ElementId,
    out: NodeId,
}

/// An RC ladder of `n` identical sections driven by a 1 V source.
fn ladder(n: usize, r: f64, c: f64) -> Ladder {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    let source = ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    let mut resistors = Vec::new();
    let mut caps = Vec::new();
    for i in 0..n {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, r).unwrap());
        caps.push(
            ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, c)
                .unwrap(),
        );
        prev = node;
    }
    Ladder {
        ckt,
        resistors,
        caps,
        source,
        out: prev,
    }
}

fn run(tr: &mut TransientSolver, out: NodeId) -> f64 {
    tr.initialize_dc().unwrap();
    let mut last = 0.0;
    tr.run(1e-4, 1e-6, |s| last = s.voltage(out)).unwrap();
    last
}

#[test]
fn adopted_symbolic_factor_skips_the_symbolic_analysis() {
    let lad = ladder(10, 1e3, 1e-9);

    // Scenario 0: pays the symbolic analysis.
    let mut base = TransientSolver::new(&lad.ckt, IntegrationMethod::Trapezoidal).unwrap();
    base.backend = SolverBackend::Sparse;
    let v0 = run(&mut base, lad.out);
    let s0 = base.stats();
    assert_eq!(s0.solve.symbolic_analyses, 1);
    let hint = base.symbolic_factor().expect("sparse factor available");

    // Scenario 1: same topology, different resistor values, adopted
    // hint — zero symbolic analyses, at least one numeric refactor.
    let mut variant = lad.ckt.clone();
    for (k, r) in lad.resistors.iter().enumerate() {
        variant
            .set_resistance(*r, 1e3 * (1.0 + 0.05 * (k as f64 + 1.0)))
            .unwrap();
    }
    let mut adopted = TransientSolver::new(&variant, IntegrationMethod::Trapezoidal).unwrap();
    adopted.backend = SolverBackend::Sparse;
    adopted.adopt_symbolic_factor(&hint);
    let v_adopted = run(&mut adopted, lad.out);
    let sa = adopted.stats();
    assert_eq!(
        sa.solve.symbolic_analyses, 0,
        "adopted solver ran its own symbolic analysis"
    );
    assert!(sa.solve.numeric_refactors >= 1);

    // Reference: the same variant solved without the hint. Identical
    // pivot sequence ⇒ the trajectories agree to rounding.
    let mut fresh = TransientSolver::new(&variant, IntegrationMethod::Trapezoidal).unwrap();
    fresh.backend = SolverBackend::Sparse;
    let v_fresh = run(&mut fresh, lad.out);
    assert_eq!(fresh.stats().solve.symbolic_analyses, 1);
    assert!(
        (v_adopted - v_fresh).abs() < 1e-12,
        "adopted {v_adopted} vs fresh {v_fresh}"
    );
    assert!((v0 - v_adopted).abs() > 1e-9, "variant changed the answer");
}

#[test]
fn mismatched_hint_is_ignored_gracefully() {
    let small = ladder(4, 1e3, 1e-9);
    let big = ladder(10, 1e3, 1e-9);
    let mut donor = TransientSolver::new(&small.ckt, IntegrationMethod::Trapezoidal).unwrap();
    donor.backend = SolverBackend::Sparse;
    donor.initialize_dc().unwrap();
    donor.run(1e-5, 1e-6, |_| {}).unwrap();
    let hint = donor.symbolic_factor().unwrap();

    let mut recipient = TransientSolver::new(&big.ckt, IntegrationMethod::Trapezoidal).unwrap();
    recipient.backend = SolverBackend::Sparse;
    recipient.adopt_symbolic_factor(&hint);
    recipient.initialize_dc().unwrap();
    recipient.run(1e-5, 1e-6, |_| {}).unwrap();
    // Foreign pattern: the solver falls back to its own analysis.
    assert_eq!(recipient.stats().solve.symbolic_analyses, 1);
}

#[test]
fn circuit_value_mutators_validate() {
    let mut lad = ladder(3, 1e3, 1e-9);
    assert!(lad.ckt.set_resistance(lad.resistors[0], -1.0).is_err());
    assert!(lad.ckt.set_resistance(lad.resistors[1], 2e3).is_ok());
    // Kind mismatch: a capacitor is not a resistor, a resistor holds no
    // waveform.
    assert!(lad.ckt.set_resistance(lad.caps[0], 1.0).is_err());
    assert!(lad
        .ckt
        .set_source_waveform(lad.resistors[0], Waveform::Dc(2.0))
        .is_err());
    assert!(lad.ckt.set_capacitance(lad.caps[1], 2e-9).is_ok());
    assert!(lad.ckt.set_capacitance(lad.caps[1], f64::NAN).is_err());
    assert!(lad
        .ckt
        .set_source_waveform(lad.source, Waveform::Dc(2.0))
        .is_ok());
    // Out-of-range handle (an id minted by a larger sibling circuit).
    let big = ladder(8, 1e3, 1e-9);
    assert!(lad.ckt.set_resistance(big.resistors[7], 1e3).is_err());
    // Inductor mutator round-trip on a dedicated circuit.
    let mut rl = Circuit::new();
    let a = rl.node("a");
    rl.voltage_source("V", a, Circuit::GROUND, 1.0).unwrap();
    let l = rl.inductor("L", a, Circuit::GROUND, 1e-3).unwrap();
    assert!(rl.set_inductance(l, 2e-3).is_ok());
    assert!(rl.set_inductance(l, 0.0).is_err());
}
