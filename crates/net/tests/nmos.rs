//! Integration tests for the level-1 NMOS across all analyses: DC bias,
//! small-signal AC (gain = −gm·(RD ∥ ro)), transient switching, noise.

use ams_net::{Circuit, IntegrationMethod, NetError, TransientSolver, Waveform};

const KP: f64 = 2e-3; // A/V²
const VT: f64 = 1.0;

/// Common-source amplifier: VDD = 10 V, RD = 2 kΩ, gate biased at 2.5 V.
fn common_source(lambda: f64) -> (Circuit, ams_net::NodeId, ams_net::ElementId) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("gate");
    let drain = ckt.node("drain");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, 10.0)
        .unwrap();
    ckt.voltage_source_ac("VG", gate, Circuit::GROUND, 2.5, 1.0)
        .unwrap();
    ckt.resistor("RD", vdd, drain, 2e3).unwrap();
    let m = ckt
        .nmos("M1", drain, gate, Circuit::GROUND, KP, VT, lambda)
        .unwrap();
    (ckt, drain, m)
}

#[test]
fn dc_bias_matches_square_law() {
    let (ckt, drain, m) = common_source(0.0);
    let op = ckt.dc_operating_point().unwrap();
    // vov = 1.5 V; id = kp/2·vov² = 2.25 mA; vd = 10 − 2k·2.25m = 5.5 V.
    let id_expect = KP / 2.0 * 1.5 * 1.5;
    let vd = op.voltage(drain);
    assert!((vd - (10.0 - 2e3 * id_expect)).abs() < 1e-6, "vd = {vd}");
    assert!((op.current(m).unwrap() - id_expect).abs() < 1e-9);
    // Saturation check: vds = 5.5 > vov = 1.5.
    assert!(vd > 1.5);
}

#[test]
fn small_signal_gain_is_minus_gm_rd() {
    let (ckt, drain, _m) = common_source(0.0);
    let op = ckt.dc_operating_point().unwrap();
    let h = ckt.ac_transfer(&op, drain, &[1e3]).unwrap()[0];
    // gm = kp·vov = 3 mS → gain = −gm·RD = −6.
    assert!((h.re + 6.0).abs() < 1e-3, "gain {h}");
    assert!(h.im.abs() < 1e-6);
}

#[test]
fn channel_length_modulation_reduces_gain() {
    let lambda = 0.05;
    let (ckt, drain, _m) = common_source(lambda);
    let op = ckt.dc_operating_point().unwrap();
    let h = ckt.ac_transfer(&op, drain, &[1e3]).unwrap()[0];
    // With finite ro = 1/(λ·id), |gain| = gm·(RD ∥ ro) < gm·RD.
    assert!(h.re < 0.0);
    assert!(h.re.abs() < 6.5, "clm keeps |gain| near gm·(RD∥ro): {h}");
    // Compare against the analytic small-signal value at the solved bias.
    let vd = op.voltage(drain);
    let vov = 2.5 - VT;
    let clm = 1.0 + lambda * vd;
    let id = KP / 2.0 * vov * vov * clm;
    let gm = KP * vov * clm;
    let ro = 1.0 / (KP / 2.0 * vov * vov * lambda);
    let gain_expect = -gm * (2e3 * ro) / (2e3 + ro);
    assert!(
        (h.re - gain_expect).abs() / gain_expect.abs() < 1e-3,
        "gain {} vs analytic {gain_expect} (id = {id})",
        h.re
    );
}

#[test]
fn cutoff_leaves_drain_at_vdd() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("gate");
    let drain = ckt.node("drain");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, 10.0)
        .unwrap();
    ckt.voltage_source("VG", gate, Circuit::GROUND, 0.5)
        .unwrap(); // < VT
    ckt.resistor("RD", vdd, drain, 2e3).unwrap();
    ckt.nmos("M1", drain, gate, Circuit::GROUND, KP, VT, 0.0)
        .unwrap();
    let op = ckt.dc_operating_point().unwrap();
    assert!((op.voltage(drain) - 10.0).abs() < 1e-4);
}

#[test]
fn source_follower_tracks_gate_minus_vgs() {
    // Source follower: drain at VDD, source through RS to ground.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("gate");
    let src = ckt.node("src");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, 10.0)
        .unwrap();
    ckt.voltage_source("VG", gate, Circuit::GROUND, 5.0)
        .unwrap();
    ckt.nmos("M1", vdd, gate, src, KP, VT, 0.0).unwrap();
    ckt.resistor("RS", src, Circuit::GROUND, 1e3).unwrap();
    let op = ckt.dc_operating_point().unwrap();
    let vs = op.voltage(src);
    // Solve kp/2(5−vs−1)² = vs/1k self-consistently: residual must vanish.
    let residual = KP / 2.0 * (4.0 - vs).powi(2) - vs / 1e3;
    assert!(residual.abs() < 1e-9, "vs = {vs}, residual {residual}");
    assert!(vs > 2.0 && vs < 4.0, "follower output in range: {vs}");
}

#[test]
fn transient_inverter_switches() {
    // NMOS inverter driven by a gate pulse.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("gate");
    let drain = ckt.node("drain");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, 5.0)
        .unwrap();
    ckt.voltage_source_wave(
        "VG",
        gate,
        Circuit::GROUND,
        Waveform::Pulse {
            v1: 0.0,
            v2: 5.0,
            delay: 10e-6,
            rise: 1e-6,
            fall: 1e-6,
            width: 20e-6,
            period: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("RD", vdd, drain, 10e3).unwrap();
    ckt.capacitor("CL", drain, Circuit::GROUND, 1e-12).unwrap();
    ckt.nmos("M1", drain, gate, Circuit::GROUND, KP, VT, 0.0)
        .unwrap();

    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_dc().unwrap();
    let mut high_before = 0.0;
    let mut low_during = f64::INFINITY;
    tr.run(40e-6, 0.2e-6, |s| {
        if s.time() < 9e-6 {
            high_before = s.voltage(drain);
        }
        if s.time() > 15e-6 && s.time() < 28e-6 {
            low_during = low_during.min(s.voltage(drain));
        }
    })
    .unwrap();
    assert!((high_before - 5.0).abs() < 1e-3, "off: drain at VDD");
    // On: strong triode pull-down (vov = 4 V ≫): near 0.06 V.
    assert!(low_during < 0.2, "on: drain pulled low ({low_during})");
}

#[test]
fn mos_channel_noise_present() {
    let (ckt, drain, _m) = common_source(0.0);
    let op = ckt.dc_operating_point().unwrap();
    let na = ckt.noise_analysis(&op, drain, &[1e3]).unwrap();
    let mos = na.points[0]
        .contributions
        .iter()
        .find(|c| c.element == "M1")
        .unwrap();
    // 8kT·gm/3 through RD²: analytic check.
    let gm = KP * 1.5;
    let expect = 8.0 / 3.0 * ams_net::BOLTZMANN * ams_net::NOISE_TEMP * gm * 2e3 * 2e3;
    assert!(
        (mos.output_psd - expect).abs() / expect < 1e-6,
        "{} vs {expect}",
        mos.output_psd
    );
}

#[test]
fn invalid_parameters_rejected() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let g = ckt.node("g");
    assert!(matches!(
        ckt.nmos("M", a, g, Circuit::GROUND, -1e-3, 1.0, 0.0),
        Err(NetError::InvalidValue { .. })
    ));
    assert!(matches!(
        ckt.nmos("M", a, g, Circuit::GROUND, 1e-3, 1.0, -0.1),
        Err(NetError::InvalidValue { .. })
    ));
}

#[test]
fn diff_pair_balances() {
    // Differential pair with ideal tail current source: equal bias →
    // equal drain voltages; imbalance steers current.
    let build = |vg1: f64, vg2: f64| {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g1 = ckt.node("g1");
        let g2 = ckt.node("g2");
        let d1 = ckt.node("d1");
        let d2 = ckt.node("d2");
        let tail = ckt.node("tail");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 10.0)
            .unwrap();
        ckt.voltage_source("VG1", g1, Circuit::GROUND, vg1).unwrap();
        ckt.voltage_source("VG2", g2, Circuit::GROUND, vg2).unwrap();
        ckt.resistor("RD1", vdd, d1, 2e3).unwrap();
        ckt.resistor("RD2", vdd, d2, 2e3).unwrap();
        ckt.nmos("M1", d1, g1, tail, KP, VT, 0.0).unwrap();
        ckt.nmos("M2", d2, g2, tail, KP, VT, 0.0).unwrap();
        // Tail current sink: 2 mA from tail to a negative rail via source.
        let vneg = ckt.node("vneg");
        ckt.voltage_source("VSS", vneg, Circuit::GROUND, -10.0)
            .unwrap();
        ckt.current_source("Itail", tail, vneg, 2e-3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        (op.voltage(d1), op.voltage(d2))
    };
    let (d1, d2) = build(2.0, 2.0);
    assert!((d1 - d2).abs() < 1e-6, "balanced: {d1} vs {d2}");
    assert!((d1 - 8.0).abs() < 1e-6, "each side carries 1 mA: {d1}");
    let (d1, d2) = build(2.3, 1.7);
    assert!(d1 < d2 - 1.0, "steering: {d1} vs {d2}");
}
