//! Property-based lane-vs-scalar parity: a [`LaneTransientSolver`]
//! bundle of K scenarios must reproduce K independent scalar
//! [`TransientSolver`] runs to ~1e-9 relative on randomized netlists —
//! random RC ladders (linear path, all integration methods) and the
//! paper's Figure 1 line network with a diode clamp (Newton path) — at
//! every supported lane width. A NaN injected into one lane must stay
//! in that lane.

use ams_net::{
    Circuit, IntegrationMethod, LaneTransientSolver, NodeId, ScenarioProbe, TransientSolver,
    Waveform,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const REL_TOL: f64 = 1e-9;

/// RC ladder: V(1V) → R₀ → n₀ [C₀] → R₁ → n₁ [C₁] → … . Values are
/// per-stage; all topologies of the same length are bundle-compatible.
fn ladder(rs: &[f64], cs: &[f64]) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    ckt.voltage_source("V", drive, Circuit::GROUND, 1.0)
        .unwrap();
    let mut prev = drive;
    let mut nodes = Vec::new();
    for (i, (&r, &c)) in rs.iter().zip(cs).enumerate() {
        let n = ckt.node(format!("n{i}"));
        ckt.resistor(format!("R{i}"), prev, n, r).unwrap();
        ckt.capacitor(format!("C{i}"), n, Circuit::GROUND, c)
            .unwrap();
        nodes.push(n);
        prev = n;
    }
    (ckt, nodes)
}

/// Figure 1 line network driven by a sine of amplitude `ampl`, with a
/// diode clamping the subscriber node: every step Newton-iterates.
fn f1_clamped(ampl: f64, rs: f64) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    let line = ckt.node("line");
    let sub = ckt.node("sub");
    ckt.voltage_source_wave(
        "Vd",
        drive,
        Circuit::GROUND,
        Waveform::Sine {
            offset: 0.0,
            ampl,
            freq: 5e3,
            phase: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("Rp", drive, line, 50.0).unwrap();
    ckt.capacitor("Cl", line, Circuit::GROUND, 20e-9).unwrap();
    ckt.resistor("Rl", line, sub, 130.0).unwrap();
    ckt.resistor("Rs", sub, Circuit::GROUND, rs).unwrap();
    ckt.capacitor("Cs", sub, Circuit::GROUND, 10e-9).unwrap();
    ckt.diode("D", sub, Circuit::GROUND, 1e-14, 1.0).unwrap();
    (ckt, vec![line, sub])
}

/// Runs the bundle and K scalar solvers over the same horizon, probing
/// every node after every step, and checks ≤ `REL_TOL` relative.
fn assert_parity<const K: usize>(
    circuits: &[Circuit],
    nodes: &[NodeId],
    method: IntegrationMethod,
    t_end: f64,
    h: f64,
) -> Result<(), TestCaseError> {
    let mut lane = LaneTransientSolver::<K>::new(circuits, method).unwrap();
    lane.initialize_dc().unwrap();
    let mut lane_trace: Vec<Vec<f64>> = vec![Vec::new(); K];
    lane.run(t_end, h, |s| {
        for (l, t) in lane_trace.iter_mut().enumerate() {
            let view = s.lane_view(l);
            t.extend(nodes.iter().map(|&n| view.voltage(n)));
        }
    })
    .unwrap();

    for (l, ckt) in circuits.iter().enumerate() {
        let mut tr = TransientSolver::new(ckt, method).unwrap();
        tr.initialize_dc().unwrap();
        let mut scalar_trace = Vec::new();
        tr.run(t_end, h, |s| {
            scalar_trace.extend(nodes.iter().map(|&n| s.voltage(n)));
        })
        .unwrap();
        prop_assert_eq!(lane_trace[l].len(), scalar_trace.len());
        for (i, (a, b)) in lane_trace[l].iter().zip(&scalar_trace).enumerate() {
            prop_assert!(
                (a - b).abs() <= REL_TOL * (1.0 + a.abs().max(b.abs())),
                "lane {}, sample {}: lane {} vs scalar {}",
                l,
                i,
                a,
                b
            );
        }
    }
    Ok(())
}

fn per_lane_values<const K: usize>(lo: f64, hi: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((lo..hi).prop_filter("finite", |v: &f64| v.is_finite()), K)
}

/// One parity case: `stages` ladder stages whose R/C values differ per
/// lane (lane l scales stage i by `scale[l]`).
fn ladder_case<const K: usize>(
    base_r: &[f64],
    base_c: &[f64],
    scale: &[f64],
    method: IntegrationMethod,
) -> Result<(), TestCaseError> {
    let circuits: Vec<Circuit> = (0..K)
        .map(|l| {
            let rs: Vec<f64> = base_r.iter().map(|r| r * scale[l]).collect();
            let cs: Vec<f64> = base_c.iter().map(|c| c / scale[l]).collect();
            ladder(&rs, &cs).0
        })
        .collect();
    let nodes = ladder(base_r, base_c).1;
    assert_parity::<K>(&circuits, &nodes, method, 5e-6, 0.05e-6)
}

fn f1_case<const K: usize>(ampls: &[f64], rss: &[f64]) -> Result<(), TestCaseError> {
    let circuits: Vec<Circuit> = (0..K).map(|l| f1_clamped(ampls[l], rss[l]).0).collect();
    let nodes = f1_clamped(1.0, 600.0).1;
    assert_parity::<K>(
        &circuits,
        &nodes,
        IntegrationMethod::Trapezoidal,
        100e-6,
        1e-6,
    )
}

proptest! {
    /// Linear path, trapezoidal, every lane width.
    #[test]
    fn lane_ladders_match_scalar_trapezoidal(
        base_r in proptest::collection::vec(100.0..10e3f64, 2..5),
        scale4 in per_lane_values::<4>(0.2, 5.0),
        scale8 in per_lane_values::<8>(0.2, 5.0),
        scale16 in per_lane_values::<16>(0.2, 5.0),
    ) {
        let base_c: Vec<f64> = base_r.iter().map(|_| 1e-9).collect();
        let m = IntegrationMethod::Trapezoidal;
        ladder_case::<4>(&base_r, &base_c, &scale4, m)?;
        ladder_case::<8>(&base_r, &base_c, &scale8, m)?;
        ladder_case::<16>(&base_r, &base_c, &scale16, m)?;
    }

    /// Linear path, backward Euler (different companion models).
    #[test]
    fn lane_ladders_match_scalar_backward_euler(
        base_r in proptest::collection::vec(100.0..10e3f64, 2..5),
        scale in per_lane_values::<8>(0.2, 5.0),
    ) {
        let base_c: Vec<f64> = base_r.iter().map(|_| 1e-9).collect();
        ladder_case::<8>(&base_r, &base_c, &scale, IntegrationMethod::BackwardEuler)?;
    }

    /// Newton path: the diode clamp makes every step nonlinear; per-lane
    /// convergence masking must not perturb converged lanes.
    #[test]
    fn lane_f1_diode_matches_scalar(
        ampls4 in per_lane_values::<4>(0.5, 5.0),
        rss4 in per_lane_values::<4>(200.0, 2e3),
        ampls8 in per_lane_values::<8>(0.5, 5.0),
        rss8 in per_lane_values::<8>(200.0, 2e3),
    ) {
        f1_case::<4>(&ampls4, &rss4)?;
        f1_case::<8>(&ampls8, &rss8)?;
    }

    /// A NaN driven into one lane mid-run kills exactly that lane: its
    /// probes go NaN, every other lane still matches its scalar run.
    #[test]
    fn nan_input_stays_in_its_lane(
        dead in 0usize..8,
        scale in per_lane_values::<8>(0.2, 5.0),
    ) {
        const K: usize = 8;
        let build = |l: usize| {
            let mut ckt = Circuit::new();
            let drive = ckt.node("drive");
            let out = ckt.node("out");
            let inp = ckt.external_input();
            ckt.voltage_source_wave("V", drive, Circuit::GROUND, Waveform::External(inp))
                .unwrap();
            ckt.resistor("R", drive, out, 1e3 * scale[l]).unwrap();
            ckt.capacitor("C", out, Circuit::GROUND, 1e-9).unwrap();
            (ckt, out, inp)
        };
        let circuits: Vec<Circuit> = (0..K).map(|l| build(l).0).collect();
        let (_, out, inp) = build(0);

        let mut lane = LaneTransientSolver::<K>::new(&circuits, IntegrationMethod::BackwardEuler)
            .unwrap();
        for l in 0..K {
            lane.set_input_lane(inp, l, 1.0);
        }
        lane.initialize_dc().unwrap();
        lane.set_input_lane(inp, dead, f64::NAN);
        let mut finals = [0.0f64; K];
        lane.run(2e-6, 0.02e-6, |s| {
            for (l, f) in finals.iter_mut().enumerate() {
                *f = s.lane_view(l).voltage(out);
            }
        })
        .unwrap();

        prop_assert!(finals[dead].is_nan(), "dead lane must read NaN");
        for (l, ckt) in circuits.iter().enumerate() {
            if l == dead {
                continue;
            }
            let mut tr = TransientSolver::new(ckt, IntegrationMethod::BackwardEuler).unwrap();
            tr.set_input(inp, 1.0);
            tr.initialize_dc().unwrap();
            let mut last = f64::NAN;
            tr.run(2e-6, 0.02e-6, |s| last = s.voltage(out)).unwrap();
            prop_assert!(
                (finals[l] - last).abs() <= REL_TOL * (1.0 + last.abs()),
                "live lane {}: lane {} vs scalar {}",
                l,
                finals[l],
                last
            );
        }
    }
}

/// Regression: the scalar and lane adaptive controllers must agree on
/// min-step semantics. A rejected step larger than the floor earns
/// exactly one retry clamped to `min_step`; only a rejection *at* the
/// floor aborts. Impossible tolerances force every step to reject, so
/// both controllers must attempt [initial_step, min_step] — two
/// rejections, the last at exactly the floor — and then underflow.
#[test]
fn min_step_rejection_retries_once_at_the_floor_in_both_solvers() {
    use ams_net::AdaptiveOptions;
    use ams_scope::{Phase, SpanKind};

    let sine_rc = || {
        let mut ckt = Circuit::new();
        let drive = ckt.node("drive");
        let out = ckt.node("out");
        ckt.voltage_source_wave(
            "V",
            drive,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e6,
                phase: 0.0,
            },
        )
        .unwrap();
        ckt.resistor("R", drive, out, 1e3).unwrap();
        ckt.capacitor("C", out, Circuit::GROUND, 1e-9).unwrap();
        ckt
    };
    let opts = AdaptiveOptions {
        rel_tol: 1e-300,
        abs_tol: 1e-300,
        min_step: 5e-10,
        max_step: f64::INFINITY,
        initial_step: 1e-9,
    };
    let rejects = |events: &[ams_scope::TraceEvent]| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.kind == SpanKind::StepReject && e.phase == Phase::Instant)
            .map(|e| e.arg)
            .collect()
    };

    let ckt = sine_rc();
    let mut scalar = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    scalar.initialize_dc().unwrap();
    scalar.set_tracing(true);
    let scalar_err = scalar.run_adaptive(1e-6, &opts, |_| {});
    assert!(scalar_err.is_err(), "impossible tolerances must underflow");
    let scalar_rejects = rejects(&scalar.take_trace_events());

    let circuits = vec![ckt.clone(), sine_rc(), sine_rc(), sine_rc()];
    let mut lane =
        LaneTransientSolver::<4>::new(&circuits, IntegrationMethod::Trapezoidal).unwrap();
    lane.initialize_dc().unwrap();
    lane.set_tracing(true);
    let lane_err = lane.run_adaptive(1e-6, &opts, |_| {});
    assert!(lane_err.is_err(), "impossible tolerances must underflow");
    let lane_rejects = rejects(&lane.take_trace_events());

    // One retry clamped to the floor, then underflow — in both paths.
    let expected = vec![opts.initial_step.to_bits(), opts.min_step.to_bits()];
    assert_eq!(
        scalar_rejects, expected,
        "scalar must retry exactly once at min_step before aborting"
    );
    assert_eq!(
        lane_rejects, scalar_rejects,
        "lane controller must reject the same step sequence as scalar"
    );
    assert_eq!(scalar.stats().rejected, 2);
    assert_eq!(lane.stats().rejected, 2);
}
