//! The discrete-event scheduler: signals, events, processes and the
//! evaluate/update (delta-cycle) loop.
//!
//! Semantics follow the SystemC core language the paper builds on (§3,
//! O2): "the discrete event (DE) MoC views a system as a set of concurrent
//! processes interacting through signals. Processes are activated when
//! signals whose values are read in the processes experience a value
//! change, a.k.a. events."
//!
//! * **Signals** hold a current value; writes are *pending* until the
//!   update phase at the end of the current delta cycle. A write that
//!   changes the value fires the signal's value-changed event.
//! * **Events** wake statically sensitive processes and one-shot dynamic
//!   waiters. They can be notified for the next delta cycle or at a future
//!   time.
//! * **Processes** are method processes (run-to-completion callbacks) with
//!   static sensitivity and one-shot timeouts (`next_trigger_in`), which
//!   is sufficient for RTL-style models, clocks, software-ish controllers
//!   and — crucially — the AMS synchronization layer that re-activates
//!   TDF clusters at their period.

use crate::{KernelError, SimTime};
use ams_scope::{SpanKind, TraceEvent, Tracer};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;

/// A value that can live on a [`Signal`].
pub trait SignalValue: Clone + PartialEq + fmt::Debug + 'static {}
impl<T: Clone + PartialEq + fmt::Debug + 'static> SignalValue for T {}

/// Typed handle to a signal owned by a [`Kernel`].
///
/// Handles are `Copy` and cheap; they are only valid for the kernel that
/// created them.
pub struct Signal<T: SignalValue> {
    index: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SignalValue> Clone for Signal<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: SignalValue> Copy for Signal<T> {}

impl<T: SignalValue> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal#{}", self.index)
    }
}

impl<T: SignalValue> Signal<T> {
    /// The raw slot index (for tracing frontends).
    pub fn index(self) -> usize {
        self.index
    }
}

/// Handle to a kernel event (like `sc_event`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event(usize);

impl Event {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize);

/// Statistics the kernel keeps while running (used by experiment E1 to
/// quantify scheduling overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total delta cycles executed.
    pub delta_cycles: u64,
    /// Total process activations.
    pub activations: u64,
    /// Total timed-event queue pops.
    pub timed_events: u64,
}

type Observer<T> = Box<dyn FnMut(SimTime, &T)>;

struct TypedSignal<T: SignalValue> {
    name: String,
    value: T,
    pending: Option<T>,
    event: Event,
    observers: Vec<Observer<T>>,
}

trait SignalSlot {
    /// Applies a pending write; returns `true` if the value changed.
    fn apply_update(&mut self, now: SimTime) -> bool;
    fn event(&self) -> Event;
    fn name(&self) -> &str;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Captures the current value for a [`KernelCheckpoint`].
    fn snapshot_value(&self) -> Box<dyn ValueSnapshot>;
}

/// A frozen signal value that can be validated against and re-applied
/// to the slot it was captured from (same index, same value type).
trait ValueSnapshot {
    /// `true` when `slot` holds the same value type this snapshot does.
    fn matches(&self, slot: &dyn SignalSlot) -> bool;
    /// Writes the frozen value back, discarding any pending write.
    fn apply(&self, slot: &mut dyn SignalSlot);
    fn clone_box(&self) -> Box<dyn ValueSnapshot>;
}

impl Clone for Box<dyn ValueSnapshot> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

struct TypedSnapshot<T: SignalValue>(T);

impl<T: SignalValue> ValueSnapshot for TypedSnapshot<T> {
    fn matches(&self, slot: &dyn SignalSlot) -> bool {
        slot.as_any().downcast_ref::<TypedSignal<T>>().is_some()
    }

    fn apply(&self, slot: &mut dyn SignalSlot) {
        let slot = slot
            .as_any_mut()
            .downcast_mut::<TypedSignal<T>>()
            .expect("snapshot type validated before apply");
        slot.value = self.0.clone();
        slot.pending = None;
    }

    fn clone_box(&self) -> Box<dyn ValueSnapshot> {
        Box::new(TypedSnapshot(self.0.clone()))
    }
}

impl<T: SignalValue> SignalSlot for TypedSignal<T> {
    fn apply_update(&mut self, now: SimTime) -> bool {
        if let Some(next) = self.pending.take() {
            if next != self.value {
                self.value = next;
                for obs in &mut self.observers {
                    obs(now, &self.value);
                }
                return true;
            }
        }
        false
    }

    fn event(&self) -> Event {
        self.event
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot_value(&self) -> Box<dyn ValueSnapshot> {
        Box::new(TypedSnapshot(self.value.clone()))
    }
}

struct EventSlot {
    #[allow(dead_code)]
    name: String,
    static_sensitive: Vec<ProcessId>,
    dynamic_waiters: Vec<ProcessId>,
}

type ProcessBody = Box<dyn FnMut(&mut ProcContext<'_>)>;

struct ProcessSlot {
    name: String,
    body: Option<ProcessBody>,
    runnable: bool,
    dont_initialize: bool,
    /// Generation counter for one-shot timeouts: a queued wake-up only
    /// fires if its generation still matches.
    timeout_gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimedAction {
    Notify(Event),
    Wake(ProcessId, u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimedEntry {
    time: SimTime,
    seq: u64,
    action: TimedAction,
}

impl Ord for TimedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for TimedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event simulation kernel.
///
/// # Example
///
/// ```
/// use ams_kernel::{Kernel, SimTime};
///
/// # fn main() -> Result<(), ams_kernel::KernelError> {
/// let mut kernel = Kernel::new();
/// let sig = kernel.signal("count", 0u32);
/// let pid = kernel.add_process("incrementer", move |ctx| {
///     let v = ctx.read(sig);
///     if v < 3 {
///         ctx.write(sig, v + 1);
///     }
/// });
/// kernel.make_sensitive(pid, kernel.signal_event(sig));
/// kernel.run_until(SimTime::from_ns(10))?;
/// assert_eq!(kernel.peek(sig), 3);
/// # Ok(())
/// # }
/// ```
pub struct Kernel {
    time: SimTime,
    started: bool,
    signals: Vec<Box<dyn SignalSlot>>,
    events: Vec<EventSlot>,
    processes: Vec<ProcessSlot>,
    runnable: VecDeque<ProcessId>,
    /// Signal indices with pending writes (deduplicated).
    update_list: Vec<usize>,
    update_marked: Vec<bool>,
    delta_notified: Vec<Event>,
    timed: BinaryHeap<Reverse<TimedEntry>>,
    seq: u64,
    stats: KernelStats,
    max_deltas_per_instant: u64,
    /// Periods of the clocks created on this kernel, for cross-MoC
    /// timing lint (converter ports vs. clock edges).
    clock_periods: Vec<(String, SimTime)>,
    tracer: Tracer,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// Creates an empty kernel at time zero.
    pub fn new() -> Self {
        Kernel {
            time: SimTime::ZERO,
            started: false,
            signals: Vec::new(),
            events: Vec::new(),
            processes: Vec::new(),
            runnable: VecDeque::new(),
            update_list: Vec::new(),
            update_marked: Vec::new(),
            delta_notified: Vec::new(),
            timed: BinaryHeap::new(),
            seq: 0,
            stats: KernelStats::default(),
            max_deltas_per_instant: 100_000,
            clock_periods: Vec::new(),
            tracer: Tracer::off(),
        }
    }

    /// Enables or disables span tracing on this kernel. Disabled (the
    /// default) costs one branch per delta cycle.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Drains the trace events recorded so far (delta-cycle instants;
    /// `t` is the simulated time in fs, `arg` the process activations
    /// in that cycle).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// Records a clock's name and period (called by [`crate::Clock`]).
    pub(crate) fn register_clock(&mut self, name: String, period: SimTime) {
        self.clock_periods.push((name, period));
    }

    /// Names and periods of every clock created on this kernel, in
    /// creation order. Static analyses use this to check converter-port
    /// timing against the digital time base.
    pub fn clock_periods(&self) -> &[(String, SimTime)] {
        &self.clock_periods
    }

    /// Sets the delta-cycle limit per time instant (default 100 000).
    /// Exceeding it aborts the run with [`KernelError::DeltaOverflow`].
    pub fn set_delta_limit(&mut self, limit: u64) {
        self.max_deltas_per_instant = limit.max(1);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Scheduling statistics accumulated so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The timestamp of the earliest pending timed notification, if any.
    ///
    /// This is the kernel's synchronization-point API: a parallel
    /// execution engine may run decoupled dataflow clusters ahead of the
    /// kernel up to (but not past) this time without missing a
    /// discrete-event interaction. Delta-cycle (immediate) activity is
    /// not visible here; it belongs to the current instant.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.timed.peek().map(|Reverse(e)| e.time)
    }

    // ----- construction ---------------------------------------------------

    /// Creates a signal with an initial value and returns its handle.
    pub fn signal<T: SignalValue>(&mut self, name: impl Into<String>, initial: T) -> Signal<T> {
        let name = name.into();
        let event = self.event(format!("{name}.value_changed"));
        let index = self.signals.len();
        self.signals.push(Box::new(TypedSignal {
            name,
            value: initial,
            pending: None,
            event,
            observers: Vec::new(),
        }));
        self.update_marked.push(false);
        Signal {
            index,
            _marker: PhantomData,
        }
    }

    /// Creates a named event.
    pub fn event(&mut self, name: impl Into<String>) -> Event {
        let id = Event(self.events.len());
        self.events.push(EventSlot {
            name: name.into(),
            static_sensitive: Vec::new(),
            dynamic_waiters: Vec::new(),
        });
        id
    }

    /// Registers a method process. It runs once during initialization
    /// (unless [`Kernel::dont_initialize`] is called) and then whenever
    /// one of its sensitivities fires.
    pub fn add_process(
        &mut self,
        name: impl Into<String>,
        body: impl FnMut(&mut ProcContext<'_>) + 'static,
    ) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(ProcessSlot {
            name: name.into(),
            body: Some(Box::new(body)),
            runnable: false,
            dont_initialize: false,
            timeout_gen: 0,
        });
        id
    }

    /// Adds `event` to the static sensitivity list of `process`.
    pub fn make_sensitive(&mut self, process: ProcessId, event: Event) {
        let slot = &mut self.events[event.0];
        if !slot.static_sensitive.contains(&process) {
            slot.static_sensitive.push(process);
        }
    }

    /// Suppresses the initialization run of a process (like SystemC's
    /// `dont_initialize()`).
    pub fn dont_initialize(&mut self, process: ProcessId) {
        self.processes[process.0].dont_initialize = true;
    }

    /// The value-changed event of a signal, for use in sensitivity lists.
    pub fn signal_event<T: SignalValue>(&self, sig: Signal<T>) -> Event {
        self.signals[sig.index].event()
    }

    /// The registered name of a signal.
    pub fn signal_name<T: SignalValue>(&self, sig: Signal<T>) -> &str {
        self.signals[sig.index].name()
    }

    /// Registers an observer invoked (during the update phase) whenever
    /// the signal's value changes. Used by tracing frontends.
    pub fn observe<T: SignalValue>(
        &mut self,
        sig: Signal<T>,
        observer: impl FnMut(SimTime, &T) + 'static,
    ) {
        let slot = self.signals[sig.index]
            .as_any_mut()
            .downcast_mut::<TypedSignal<T>>()
            .expect("signal handle type matches its slot by construction");
        slot.observers.push(Box::new(observer));
    }

    // ----- signal access (outside processes) -------------------------------

    /// Reads the current value of a signal from outside a process.
    pub fn peek<T: SignalValue>(&self, sig: Signal<T>) -> T {
        self.typed(sig).value.clone()
    }

    /// Writes a signal from outside a process (testbench style). The write
    /// follows normal delta semantics: it takes effect at the next update
    /// phase of the following [`Kernel::run_until`] call.
    pub fn poke<T: SignalValue>(&mut self, sig: Signal<T>, value: T) {
        self.typed_mut(sig).pending = Some(value);
        self.mark_for_update(sig.index);
    }

    fn typed<T: SignalValue>(&self, sig: Signal<T>) -> &TypedSignal<T> {
        self.signals[sig.index]
            .as_any()
            .downcast_ref::<TypedSignal<T>>()
            .expect("signal handle type matches its slot by construction")
    }

    fn typed_mut<T: SignalValue>(&mut self, sig: Signal<T>) -> &mut TypedSignal<T> {
        self.signals[sig.index]
            .as_any_mut()
            .downcast_mut::<TypedSignal<T>>()
            .expect("signal handle type matches its slot by construction")
    }

    fn mark_for_update(&mut self, index: usize) {
        if !self.update_marked[index] {
            self.update_marked[index] = true;
            self.update_list.push(index);
        }
    }

    fn make_runnable(&mut self, pid: ProcessId) {
        let slot = &mut self.processes[pid.0];
        if !slot.runnable && slot.body.is_some() {
            slot.runnable = true;
            self.runnable.push_back(pid);
        }
    }

    fn notify_now(&mut self, ev: Event) {
        // Wake static and dynamic waiters into the runnable queue.
        let statics: Vec<ProcessId> = self.events[ev.0].static_sensitive.clone();
        let dynamics: Vec<ProcessId> = std::mem::take(&mut self.events[ev.0].dynamic_waiters);
        for pid in statics.into_iter().chain(dynamics) {
            self.make_runnable(pid);
        }
    }

    /// Notifies an event for the next delta cycle (from outside a process).
    pub fn notify_delta(&mut self, ev: Event) {
        self.delta_notified.push(ev);
    }

    /// Notifies an event `delay` after the current time (from outside a
    /// process). A zero delay is equivalent to a delta notification.
    pub fn notify_in(&mut self, ev: Event, delay: SimTime) {
        if delay.is_zero() {
            self.notify_delta(ev);
        } else {
            let entry = TimedEntry {
                time: self.time + delay,
                seq: self.seq,
                action: TimedAction::Notify(ev),
            };
            self.seq += 1;
            self.timed.push(Reverse(entry));
        }
    }

    // ----- the evaluate/update loop ----------------------------------------

    /// Runs one delta cycle: evaluate all runnable processes, then apply
    /// signal updates and delta notifications. Returns `true` if any
    /// activity occurred.
    fn delta_cycle(&mut self) -> bool {
        let had_runnable = !self.runnable.is_empty();
        if had_runnable {
            self.stats.delta_cycles += 1;
            if self.tracer.is_enabled() {
                self.tracer.instant(
                    SpanKind::DeltaCycle,
                    self.time.as_fs(),
                    self.runnable.len() as u64,
                );
            }
        }
        // Evaluate phase.
        while let Some(pid) = self.runnable.pop_front() {
            self.processes[pid.0].runnable = false;
            let mut body = self.processes[pid.0]
                .body
                .take()
                .expect("runnable process has a body");
            self.stats.activations += 1;
            {
                let mut ctx = ProcContext { kernel: self, pid };
                body(&mut ctx);
            }
            // A process may have been re-queued while running (immediate
            // notification); body must be restored regardless.
            self.processes[pid.0].body = Some(body);
        }
        // Update phase.
        let mut fired: Vec<Event> = Vec::new();
        let pending: Vec<usize> = self.update_list.drain(..).collect();
        for idx in pending {
            self.update_marked[idx] = false;
            if self.signals[idx].apply_update(self.time) {
                fired.push(self.signals[idx].event());
            }
        }
        fired.append(&mut self.delta_notified);
        let had_updates = !fired.is_empty();
        for ev in fired {
            self.notify_now(ev);
        }
        had_runnable || had_updates
    }

    /// Exhausts all delta cycles at the current instant.
    fn settle(&mut self) -> Result<(), KernelError> {
        let mut deltas = 0u64;
        while !self.runnable.is_empty()
            || !self.update_list.is_empty()
            || !self.delta_notified.is_empty()
        {
            self.delta_cycle();
            deltas += 1;
            if deltas > self.max_deltas_per_instant {
                return Err(KernelError::DeltaOverflow {
                    time: self.time,
                    limit: self.max_deltas_per_instant,
                });
            }
        }
        Ok(())
    }

    fn initialize(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.processes.len() {
            if !self.processes[i].dont_initialize {
                self.make_runnable(ProcessId(i));
            }
        }
    }

    /// Runs the simulation until `until` (inclusive). Timed activity
    /// scheduled later stays queued for subsequent calls. On return the
    /// kernel time is `until` (or later if already past it).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DeltaOverflow`] on zero-delay oscillations.
    pub fn run_until(&mut self, until: SimTime) -> Result<(), KernelError> {
        self.initialize();
        loop {
            self.settle()?;
            // Advance to the next timed entry, if within the horizon.
            let next_time = match self.timed.peek() {
                Some(Reverse(entry)) if entry.time <= until => entry.time,
                _ => break,
            };
            self.time = next_time;
            while let Some(Reverse(entry)) = self.timed.peek() {
                if entry.time != next_time {
                    break;
                }
                let Reverse(entry) = self.timed.pop().expect("peeked entry exists");
                self.stats.timed_events += 1;
                match entry.action {
                    TimedAction::Notify(ev) => self.notify_now(ev),
                    TimedAction::Wake(pid, gen) => {
                        if self.processes[pid.0].timeout_gen == gen {
                            self.make_runnable(pid);
                        }
                    }
                }
            }
        }
        if self.time < until {
            self.time = until;
        }
        Ok(())
    }

    /// Runs for a duration from the current time.
    ///
    /// # Errors
    ///
    /// Same as [`Kernel::run_until`].
    pub fn run_for(&mut self, duration: SimTime) -> Result<(), KernelError> {
        let until = self.time.saturating_add(duration);
        self.run_until(until)
    }

    /// Runs until no timed activity remains (or `horizon` is reached).
    ///
    /// # Errors
    ///
    /// Same as [`Kernel::run_until`].
    pub fn run_to_quiescence(&mut self, horizon: SimTime) -> Result<SimTime, KernelError> {
        self.run_until(horizon)?;
        Ok(self.time)
    }

    /// Name of a process (diagnostics).
    pub fn process_name(&self, pid: ProcessId) -> &str {
        &self.processes[pid.0].name
    }

    // ----- checkpoint / restore --------------------------------------------

    /// Freezes the kernel's dynamic state — simulation time, the timed
    /// event queue (which is where clock edges and `next_trigger_in`
    /// wake-ups live), per-process timeout generations, every signal's
    /// current value and the scheduling statistics — into a
    /// [`KernelCheckpoint`] that [`Kernel::restore_checkpoint`] can
    /// later re-apply.
    ///
    /// State owned by process closures (captured `Rc`s and the like) is
    /// *not* part of the kernel and is not captured; layered runtimes
    /// (TDF clusters, SDF executors, transient solvers) checkpoint that
    /// state through their own snapshot types.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotQuiescent`] if delta-cycle activity is still
    /// pending — checkpoints are only well-defined between
    /// [`Kernel::run_until`] calls, when the instant has settled.
    pub fn checkpoint(&self) -> Result<KernelCheckpoint, KernelError> {
        if !self.runnable.is_empty()
            || !self.update_list.is_empty()
            || !self.delta_notified.is_empty()
        {
            return Err(KernelError::NotQuiescent { time: self.time });
        }
        Ok(KernelCheckpoint {
            time: self.time,
            seq: self.seq,
            started: self.started,
            stats: self.stats,
            timed: self.timed.iter().map(|Reverse(e)| *e).collect(),
            timeout_gens: self.processes.iter().map(|p| p.timeout_gen).collect(),
            values: self.signals.iter().map(|s| s.snapshot_value()).collect(),
        })
    }

    /// Rewinds this kernel to a state previously captured with
    /// [`Kernel::checkpoint`]. The kernel must have the same structure
    /// (signals, events and processes created in the same order with the
    /// same types) — typically it *is* the same kernel, or a freshly
    /// elaborated copy of the same model.
    ///
    /// Validation is all-or-nothing: on error the kernel is unchanged.
    ///
    /// # Errors
    ///
    /// * [`KernelError::UnknownHandle`] when the signal or process count
    ///   differs from the checkpointed kernel's;
    /// * [`KernelError::TypeMismatch`] when a signal slot holds a
    ///   different value type than the snapshot captured.
    pub fn restore_checkpoint(&mut self, cp: &KernelCheckpoint) -> Result<(), KernelError> {
        if cp.values.len() != self.signals.len() {
            return Err(KernelError::UnknownHandle {
                kind: "signal",
                index: cp.values.len(),
            });
        }
        if cp.timeout_gens.len() != self.processes.len() {
            return Err(KernelError::UnknownHandle {
                kind: "process",
                index: cp.timeout_gens.len(),
            });
        }
        for (snap, slot) in cp.values.iter().zip(&self.signals) {
            if !snap.matches(slot.as_ref()) {
                return Err(KernelError::TypeMismatch {
                    signal: slot.name().to_string(),
                });
            }
        }
        for (snap, slot) in cp.values.iter().zip(&mut self.signals) {
            snap.apply(slot.as_mut());
        }
        self.time = cp.time;
        self.seq = cp.seq;
        self.started = cp.started;
        self.stats = cp.stats;
        self.timed = cp.timed.iter().map(|e| Reverse(*e)).collect();
        for (slot, &g) in self.processes.iter_mut().zip(&cp.timeout_gens) {
            slot.timeout_gen = g;
            slot.runnable = false;
        }
        self.runnable.clear();
        self.update_list.clear();
        for m in &mut self.update_marked {
            *m = false;
        }
        self.delta_notified.clear();
        Ok(())
    }
}

/// A frozen [`Kernel`] state: simulation time, the timed event queue
/// (clock edges, armed timeouts), per-process timeout generations,
/// every signal's current value and the scheduling statistics.
///
/// Produced by [`Kernel::checkpoint`], re-applied by
/// [`Kernel::restore_checkpoint`]. Cloning is cheap relative to a
/// simulation run, so the copy-on-write forking idiom is "checkpoint
/// once, clone per fork".
#[derive(Clone)]
pub struct KernelCheckpoint {
    time: SimTime,
    seq: u64,
    started: bool,
    stats: KernelStats,
    timed: Vec<TimedEntry>,
    timeout_gens: Vec<u64>,
    values: Vec<Box<dyn ValueSnapshot>>,
}

impl KernelCheckpoint {
    /// Simulation time of the captured state.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Number of entries frozen from the timed event queue.
    pub fn pending_timed(&self) -> usize {
        self.timed.len()
    }
}

impl fmt::Debug for KernelCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelCheckpoint")
            .field("time", &self.time)
            .field("timed", &self.timed.len())
            .field("signals", &self.values.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("time", &self.time)
            .field("signals", &self.signals.len())
            .field("events", &self.events.len())
            .field("processes", &self.processes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Execution context passed to a process while it runs.
///
/// Provides signal access with delta semantics, event notification and
/// one-shot timeouts.
pub struct ProcContext<'k> {
    kernel: &'k mut Kernel,
    pid: ProcessId,
}

impl ProcContext<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.time
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Reads the current value of a signal.
    pub fn read<T: SignalValue>(&self, sig: Signal<T>) -> T {
        self.kernel.typed(sig).value.clone()
    }

    /// Writes a signal; the new value becomes visible in the next delta
    /// cycle (evaluate/update semantics).
    pub fn write<T: SignalValue>(&mut self, sig: Signal<T>, value: T) {
        self.kernel.typed_mut(sig).pending = Some(value);
        self.kernel.mark_for_update(sig.index);
    }

    /// Notifies an event for the next delta cycle.
    pub fn notify(&mut self, ev: Event) {
        self.kernel.delta_notified.push(ev);
    }

    /// Notifies an event `delay` in the future (zero = next delta).
    pub fn notify_in(&mut self, ev: Event, delay: SimTime) {
        self.kernel.notify_in(ev, delay);
    }

    /// Arms a one-shot wake-up for this process `delay` from now,
    /// superseding any previously armed wake-up.
    ///
    /// This is the mechanism the AMS synchronization layer uses to
    /// schedule TDF cluster activations on the DE timeline.
    pub fn next_trigger_in(&mut self, delay: SimTime) {
        let slot = &mut self.kernel.processes[self.pid.0];
        slot.timeout_gen += 1;
        let gen = slot.timeout_gen;
        let entry = TimedEntry {
            time: self.kernel.time.saturating_add(delay),
            seq: self.kernel.seq,
            action: TimedAction::Wake(self.pid, gen),
        };
        self.kernel.seq += 1;
        self.kernel.timed.push(Reverse(entry));
    }

    /// Adds an event to this process's static sensitivity (rarely needed
    /// at run time; prefer [`Kernel::make_sensitive`] during elaboration).
    pub fn make_sensitive(&mut self, ev: Event) {
        self.kernel.make_sensitive(self.pid, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn write_is_not_visible_until_next_delta() {
        let mut k = Kernel::new();
        let s = k.signal("s", 0i32);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let p = k.add_process("writer", move |ctx| {
            ctx.write(s, 42);
            // Read-back in the same evaluate phase sees the old value.
            seen2.borrow_mut().push(ctx.read(s));
        });
        let _ = p;
        k.run_until(SimTime::ZERO).unwrap();
        assert_eq!(*seen.borrow(), vec![0]);
        assert_eq!(k.peek(s), 42);
    }

    #[test]
    fn sensitivity_triggers_on_change_only() {
        let mut k = Kernel::new();
        let s = k.signal("s", 0i32);
        let count = Rc::new(RefCell::new(0));
        let c2 = count.clone();
        let p = k.add_process("watcher", move |_ctx| {
            *c2.borrow_mut() += 1;
        });
        k.make_sensitive(p, k.signal_event(s));
        k.dont_initialize(p);

        k.poke(s, 0); // same value: no event
        k.run_until(SimTime::from_ns(1)).unwrap();
        assert_eq!(*count.borrow(), 0);

        k.poke(s, 7); // change: one activation
        k.run_until(SimTime::from_ns(2)).unwrap();
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn tracing_records_delta_cycle_instants() {
        let mut k = Kernel::new();
        let s = k.signal("s", 0i32);
        let p = k.add_process("echo", move |ctx| {
            let v = ctx.read(s);
            if v < 3 {
                ctx.write(s, v + 1);
            }
        });
        k.make_sensitive(p, k.signal_event(s));
        k.set_tracing(true);
        k.run_until(SimTime::from_ns(1)).unwrap();
        let events = k.take_trace_events();
        assert_eq!(events.len() as u64, k.stats().delta_cycles);
        assert!(events
            .iter()
            .all(|e| e.kind == SpanKind::DeltaCycle && e.arg >= 1));
        // Draining leaves the buffer empty; disabled kernels record nothing.
        assert!(k.take_trace_events().is_empty());
        k.set_tracing(false);
        k.poke(s, 0);
        k.run_until(SimTime::from_ns(2)).unwrap();
        assert!(k.take_trace_events().is_empty());
    }

    #[test]
    fn initialization_runs_processes_once() {
        let mut k = Kernel::new();
        let count = Rc::new(RefCell::new(0));
        let c2 = count.clone();
        k.add_process("init", move |_| {
            *c2.borrow_mut() += 1;
        });
        k.run_until(SimTime::from_ns(5)).unwrap();
        k.run_until(SimTime::from_ns(10)).unwrap();
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn dont_initialize_suppresses_first_run() {
        let mut k = Kernel::new();
        let count = Rc::new(RefCell::new(0));
        let c2 = count.clone();
        let p = k.add_process("lazy", move |_| {
            *c2.borrow_mut() += 1;
        });
        k.dont_initialize(p);
        k.run_until(SimTime::from_ns(5)).unwrap();
        assert_eq!(*count.borrow(), 0);
    }

    #[test]
    fn timed_event_notification() {
        let mut k = Kernel::new();
        let ev = k.event("tick");
        let fired_at = Rc::new(RefCell::new(Vec::new()));
        let f2 = fired_at.clone();
        let p = k.add_process("listener", move |ctx| {
            f2.borrow_mut().push(ctx.now());
        });
        k.make_sensitive(p, ev);
        k.dont_initialize(p);
        k.notify_in(ev, SimTime::from_ns(3));
        k.run_until(SimTime::from_ns(10)).unwrap();
        assert_eq!(*fired_at.borrow(), vec![SimTime::from_ns(3)]);
        assert_eq!(k.now(), SimTime::from_ns(10));
    }

    #[test]
    fn next_trigger_makes_periodic_process() {
        let mut k = Kernel::new();
        let times = Rc::new(RefCell::new(Vec::new()));
        let t2 = times.clone();
        k.add_process("periodic", move |ctx| {
            t2.borrow_mut().push(ctx.now());
            ctx.next_trigger_in(SimTime::from_ns(10));
        });
        k.run_until(SimTime::from_ns(35)).unwrap();
        assert_eq!(
            *times.borrow(),
            vec![
                SimTime::ZERO,
                SimTime::from_ns(10),
                SimTime::from_ns(20),
                SimTime::from_ns(30)
            ]
        );
    }

    #[test]
    fn superseded_timeout_does_not_fire() {
        let mut k = Kernel::new();
        let times = Rc::new(RefCell::new(Vec::new()));
        let t2 = times.clone();
        k.add_process("rearming", move |ctx| {
            t2.borrow_mut().push(ctx.now());
            if ctx.now().is_zero() {
                ctx.next_trigger_in(SimTime::from_ns(5));
                // Supersede: only the 8 ns wake-up must fire.
                ctx.next_trigger_in(SimTime::from_ns(8));
            }
        });
        k.run_until(SimTime::from_ns(20)).unwrap();
        assert_eq!(*times.borrow(), vec![SimTime::ZERO, SimTime::from_ns(8)]);
    }

    #[test]
    fn delta_chain_propagates_through_processes() {
        // a -> b -> c pipeline of combinational processes.
        let mut k = Kernel::new();
        let a = k.signal("a", 0i32);
        let b = k.signal("b", 0i32);
        let c = k.signal("c", 0i32);
        let p1 = k.add_process("a_to_b", move |ctx| {
            let v = ctx.read(a);
            ctx.write(b, v + 1);
        });
        k.make_sensitive(p1, k.signal_event(a));
        let p2 = k.add_process("b_to_c", move |ctx| {
            let v = ctx.read(b);
            ctx.write(c, v * 2);
        });
        k.make_sensitive(p2, k.signal_event(b));
        k.run_until(SimTime::ZERO).unwrap();
        k.poke(a, 10);
        k.run_until(SimTime::from_ns(1)).unwrap();
        assert_eq!(k.peek(c), 22);
    }

    #[test]
    fn zero_delay_oscillation_is_detected() {
        let mut k = Kernel::new();
        k.set_delta_limit(100);
        let s = k.signal("osc", false);
        let p = k.add_process("toggler", move |ctx| {
            let v = ctx.read(s);
            ctx.write(s, !v);
        });
        k.make_sensitive(p, k.signal_event(s));
        let err = k.run_until(SimTime::from_ns(1)).unwrap_err();
        assert!(matches!(err, KernelError::DeltaOverflow { .. }));
    }

    #[test]
    fn observers_fire_on_change() {
        let mut k = Kernel::new();
        let s = k.signal("s", 0i32);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        k.observe(s, move |t, v| l2.borrow_mut().push((t, *v)));
        k.poke(s, 5);
        k.run_until(SimTime::from_ns(1)).unwrap();
        k.poke(s, 5); // no change, no callback
        k.run_until(SimTime::from_ns(2)).unwrap();
        assert_eq!(*log.borrow(), vec![(SimTime::ZERO, 5)]);
    }

    #[test]
    fn stats_count_activity() {
        let mut k = Kernel::new();
        let times = Rc::new(RefCell::new(0));
        let t2 = times.clone();
        k.add_process("p", move |ctx| {
            *t2.borrow_mut() += 1;
            if ctx.now() < SimTime::from_ns(50) {
                ctx.next_trigger_in(SimTime::from_ns(10));
            }
        });
        k.run_until(SimTime::from_ns(100)).unwrap();
        let stats = k.stats();
        assert_eq!(stats.activations, 6); // t = 0, 10, 20, 30, 40, 50
        assert!(stats.delta_cycles >= 6);
        assert_eq!(*times.borrow(), 6);
    }

    #[test]
    fn two_kernels_are_independent() {
        let mut k1 = Kernel::new();
        let mut k2 = Kernel::new();
        let s1 = k1.signal("x", 1i32);
        let s2 = k2.signal("x", 2i32);
        k1.poke(s1, 10);
        k1.run_until(SimTime::from_ns(1)).unwrap();
        assert_eq!(k1.peek(s1), 10);
        assert_eq!(k2.peek(s2), 2);
    }

    #[test]
    fn checkpoint_restore_resumes_identical_timeline() {
        // A periodic process whose whole state lives in a signal: the
        // continuation after restore must reproduce the original run.
        fn build() -> (Kernel, Signal<u32>) {
            let mut k = Kernel::new();
            let s = k.signal("count", 0u32);
            k.add_process("tick", move |ctx| {
                let v = ctx.read(s);
                ctx.write(s, v + 1);
                ctx.next_trigger_in(SimTime::from_ns(10));
            });
            (k, s)
        }
        let (mut k, s) = build();
        k.run_until(SimTime::from_ns(25)).unwrap();
        let cp = k.checkpoint().unwrap();
        assert_eq!(cp.time(), SimTime::from_ns(25));
        assert_eq!(cp.pending_timed(), 1);
        k.run_until(SimTime::from_ns(60)).unwrap();
        let final_count = k.peek(s);
        let final_stats = k.stats();

        // Rewind the same kernel via a clone of the checkpoint.
        k.restore_checkpoint(&cp.clone()).unwrap();
        assert_eq!(k.now(), SimTime::from_ns(25));
        assert_eq!(k.peek(s), 3); // activations at t = 0, 10, 20
        k.run_until(SimTime::from_ns(60)).unwrap();
        assert_eq!(k.peek(s), final_count);
        assert_eq!(k.stats(), final_stats);

        // And restore into a freshly elaborated copy of the same model.
        let (mut k2, s2) = build();
        k2.run_until(SimTime::from_ns(25)).unwrap();
        k2.restore_checkpoint(&cp).unwrap();
        k2.run_until(SimTime::from_ns(60)).unwrap();
        assert_eq!(k2.peek(s2), final_count);
    }

    #[test]
    fn checkpoint_requires_quiescence() {
        let mut k = Kernel::new();
        let s = k.signal("s", 0i32);
        k.run_until(SimTime::ZERO).unwrap();
        k.poke(s, 1); // pending update: the instant has not settled
        assert!(matches!(
            k.checkpoint(),
            Err(KernelError::NotQuiescent { .. })
        ));
        k.run_until(SimTime::from_ns(1)).unwrap();
        assert!(k.checkpoint().is_ok());
    }

    #[test]
    fn restore_validates_structure_and_types() {
        let mut a = Kernel::new();
        a.signal("x", 0u32);
        a.run_until(SimTime::ZERO).unwrap();
        let cp = a.checkpoint().unwrap();

        let mut wrong_count = Kernel::new();
        assert!(matches!(
            wrong_count.restore_checkpoint(&cp),
            Err(KernelError::UnknownHandle { kind: "signal", .. })
        ));

        let mut wrong_type = Kernel::new();
        wrong_type.signal("x", 0.0f64);
        assert!(matches!(
            wrong_type.restore_checkpoint(&cp),
            Err(KernelError::TypeMismatch { .. })
        ));
        // Failed restores leave the kernel untouched.
        assert_eq!(wrong_type.now(), SimTime::ZERO);
    }

    #[test]
    fn string_signals_work() {
        let mut k = Kernel::new();
        let s = k.signal("mode", String::from("idle"));
        k.poke(s, String::from("run"));
        k.run_until(SimTime::from_ns(1)).unwrap();
        assert_eq!(k.peek(s), "run");
    }
}
