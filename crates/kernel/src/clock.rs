//! A periodic boolean clock built on the kernel primitives.
//!
//! Digital RTL-style models in the examples (controllers, decimators,
//! digital filters) are clocked; this helper creates the toggling process
//! so models only need the signal handle.

use crate::{Event, Kernel, Signal, SimTime};

/// A free-running clock: a `bool` signal toggling with a fixed period.
///
/// # Example
///
/// ```
/// use ams_kernel::{Clock, Kernel, SimTime};
///
/// # fn main() -> Result<(), ams_kernel::KernelError> {
/// let mut kernel = Kernel::new();
/// let clk = Clock::new(&mut kernel, "clk", SimTime::from_ns(10));
/// kernel.run_until(SimTime::from_ns(26))?;
/// // Edges at 5, 10, 15, 20, 25 ns (first rising edge at half period).
/// assert!(kernel.peek(clk.signal()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    signal: Signal<bool>,
    period: SimTime,
}

impl Clock {
    /// Creates a clock with the given full period and 50 % duty cycle.
    /// The signal starts low and makes its first transition (to high)
    /// after half a period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or odd in femtoseconds (the half period
    /// must be representable exactly).
    pub fn new(kernel: &mut Kernel, name: impl Into<String>, period: SimTime) -> Self {
        assert!(!period.is_zero(), "clock period must be non-zero");
        assert_eq!(
            period.as_fs() % 2,
            0,
            "clock period must be an even number of femtoseconds"
        );
        let name = name.into();
        kernel.register_clock(name.clone(), period);
        let signal = kernel.signal(name.clone(), false);
        let half = period / 2;
        let pid = kernel.add_process(format!("{name}.driver"), move |ctx| {
            if ctx.now().is_zero() {
                // Initialization run: just arm the first edge.
                ctx.next_trigger_in(half);
                return;
            }
            let v = ctx.read(signal);
            ctx.write(signal, !v);
            ctx.next_trigger_in(half);
        });
        let _ = pid;
        Clock { signal, period }
    }

    /// The clock's boolean signal.
    pub fn signal(self) -> Signal<bool> {
        self.signal
    }

    /// The full clock period.
    pub fn period(self) -> SimTime {
        self.period
    }

    /// The value-changed event (fires on both edges). For rising-edge-only
    /// behaviour, check the signal level inside the process.
    pub fn edge_event(self, kernel: &Kernel) -> Event {
        kernel.signal_event(self.signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelError;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_toggles_with_half_period() -> Result<(), KernelError> {
        let mut k = Kernel::new();
        let clk = Clock::new(&mut k, "clk", SimTime::from_ns(10));
        let edges = Rc::new(RefCell::new(Vec::new()));
        let e2 = edges.clone();
        k.observe(clk.signal(), move |t, v| e2.borrow_mut().push((t, *v)));
        k.run_until(SimTime::from_ns(30))?;
        assert_eq!(
            *edges.borrow(),
            vec![
                (SimTime::from_ns(5), true),
                (SimTime::from_ns(10), false),
                (SimTime::from_ns(15), true),
                (SimTime::from_ns(20), false),
                (SimTime::from_ns(25), true),
                (SimTime::from_ns(30), false),
            ]
        );
        Ok(())
    }

    #[test]
    fn rising_edge_counter() -> Result<(), KernelError> {
        let mut k = Kernel::new();
        let clk = Clock::new(&mut k, "clk", SimTime::from_ns(4));
        let count = Rc::new(RefCell::new(0u32));
        let c2 = count.clone();
        let sig = clk.signal();
        let p = k.add_process("counter", move |ctx| {
            if ctx.read(sig) {
                *c2.borrow_mut() += 1;
            }
        });
        k.make_sensitive(p, clk.edge_event(&k));
        k.dont_initialize(p);
        k.run_until(SimTime::from_ns(20))?;
        // Rising edges at 2, 6, 10, 14, 18 ns.
        assert_eq!(*count.borrow(), 5);
        Ok(())
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let mut k = Kernel::new();
        let _ = Clock::new(&mut k, "bad", SimTime::ZERO);
    }
}
