use crate::SimTime;
use std::fmt;

/// Errors reported by the discrete-event kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// The delta-cycle limit was exceeded at one time point — the model
    /// contains a zero-delay oscillation (e.g. two processes toggling a
    /// signal back and forth without time advancing).
    DeltaOverflow {
        /// The simulation time at which the oscillation occurred.
        time: SimTime,
        /// The configured delta-cycle limit.
        limit: u64,
    },
    /// A handle referred to an object that does not exist in this kernel
    /// (e.g. a `Signal` from a different kernel instance).
    UnknownHandle {
        /// What kind of handle was invalid.
        kind: &'static str,
        /// The raw index of the invalid handle.
        index: usize,
    },
    /// A typed signal handle was used with the wrong value type.
    TypeMismatch {
        /// Name of the signal involved.
        signal: String,
    },
    /// An event or signal write was scheduled in the past.
    SchedulingInPast {
        /// Current simulation time.
        now: SimTime,
        /// The (invalid) requested time.
        requested: SimTime,
    },
    /// A checkpoint was requested while delta-cycle activity was still
    /// pending. Checkpoints are only well-defined at quiescent points
    /// (between [`crate::Kernel::run_until`] calls), where the runnable
    /// queue, update list and delta notifications are all empty.
    NotQuiescent {
        /// The simulation time at which the checkpoint was requested.
        time: SimTime,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::DeltaOverflow { time, limit } => write!(
                f,
                "delta-cycle limit of {limit} exceeded at t = {time} (zero-delay oscillation)"
            ),
            KernelError::UnknownHandle { kind, index } => {
                write!(f, "unknown {kind} handle with index {index}")
            }
            KernelError::TypeMismatch { signal } => {
                write!(f, "signal '{signal}' accessed with the wrong value type")
            }
            KernelError::SchedulingInPast { now, requested } => {
                write!(f, "cannot schedule at {requested}, current time is {now}")
            }
            KernelError::NotQuiescent { time } => write!(
                f,
                "checkpoint requested at t = {time} with delta-cycle activity still pending"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KernelError::DeltaOverflow {
            time: SimTime::from_ns(5),
            limit: 1000,
        };
        assert!(e.to_string().contains("delta-cycle limit"));
        assert!(e.to_string().contains("5 ns"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<KernelError>();
    }
}
