//! A discrete-event (DE) simulation kernel with SystemC semantics.
//!
//! The paper mandates that SystemC-AMS "must be an extension of the
//! SystemC language", whose simulation semantics "is defined by a
//! scheduler and an execution model" (§3, O2). This crate is the Rust
//! substrate standing in for the SystemC 2.0 kernel: it reproduces the
//! parts of the DE execution model the AMS layer builds on —
//!
//! * exact integer simulation time ([`SimTime`], femtosecond resolution);
//! * signals with evaluate/update (delta-cycle) semantics ([`Signal`]);
//! * events with delta and timed notification ([`Event`]);
//! * run-to-completion method processes with static sensitivity and
//!   one-shot timeouts ([`Kernel::add_process`],
//!   [`ProcContext::next_trigger_in`]);
//! * a [`Clock`] helper for synchronous digital models.
//!
//! The AMS synchronization layer (crate `ams-core`) registers each timed
//! dataflow cluster as a process on this kernel and uses converter ports
//! to exchange values with DE signals — exactly the layering the paper
//! prescribes.
//!
//! # Example
//!
//! ```
//! use ams_kernel::{Kernel, SimTime};
//!
//! # fn main() -> Result<(), ams_kernel::KernelError> {
//! let mut kernel = Kernel::new();
//! let out = kernel.signal("out", 0u64);
//! kernel.add_process("ticker", move |ctx| {
//!     let v = ctx.read(out);
//!     ctx.write(out, v + 1);
//!     ctx.next_trigger_in(SimTime::from_ns(10));
//! });
//! kernel.run_until(SimTime::from_ns(45))?;
//! assert_eq!(kernel.peek(out), 5); // t = 0, 10, 20, 30, 40
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod error;
mod scheduler;
mod time;

pub use clock::Clock;
pub use error::KernelError;
pub use scheduler::{
    Event, Kernel, KernelCheckpoint, KernelStats, ProcContext, ProcessId, Signal, SignalValue,
};
pub use time::SimTime;
