use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Simulation time as an exact count of femtoseconds.
///
/// SystemC represents time as an unsigned multiple of a *minimum
/// resolvable time* (the paper, §3: "Time can be handled … as an integer
/// multiple of a base time (a.k.a. the minimum resolvable time)"). We fix
/// that base time at 1 fs, which keeps every schedule computation exact —
/// cluster periods, clock edges and converter-port sample times never
/// accumulate floating-point drift. The representable range at 1 fs is
/// about 5.1 hours of simulated time, comfortably beyond any AMS scenario.
///
/// `SimTime` doubles as both an instant and a duration, like `sc_time`.
///
/// # Example
///
/// ```
/// use ams_kernel::SimTime;
///
/// let t = SimTime::from_us(1) + SimTime::from_ns(500);
/// assert_eq!(t.as_fs(), 1_500_000_000);
/// assert_eq!(t.to_seconds(), 1.5e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (~5.1 simulated hours).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from femtoseconds.
    pub const fn from_fs(fs: u64) -> Self {
        SimTime(fs)
    }

    /// Femtoseconds per unit, checked: overflow beyond the ~5.1 h range
    /// panics (in every build profile) instead of silently wrapping.
    const fn scaled(count: u64, fs_per_unit: u64) -> Self {
        match count.checked_mul(fs_per_unit) {
            Some(fs) => SimTime(fs),
            None => panic!("time overflows SimTime (max ~5.1 h at 1 fs resolution)"),
        }
    }

    /// Creates a time from picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the time overflows the representable range (~5.1 h).
    pub const fn from_ps(ps: u64) -> Self {
        SimTime::scaled(ps, 1_000)
    }

    /// Creates a time from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the time overflows the representable range (~5.1 h).
    pub const fn from_ns(ns: u64) -> Self {
        SimTime::scaled(ns, 1_000_000)
    }

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the time overflows the representable range (~5.1 h).
    pub const fn from_us(us: u64) -> Self {
        SimTime::scaled(us, 1_000_000_000)
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the time overflows the representable range (~5.1 h).
    pub const fn from_ms(ms: u64) -> Self {
        SimTime::scaled(ms, 1_000_000_000_000)
    }

    /// Creates a time from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if the time overflows the representable range (~5.1 h).
    pub const fn from_secs(s: u64) -> Self {
        SimTime::scaled(s, 1_000_000_000_000_000)
    }

    /// Creates a time from a floating-point second count, rounding to the
    /// nearest femtosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_seconds(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "time must be a non-negative finite number of seconds"
        );
        let fs = s * 1e15;
        assert!(fs <= u64::MAX as f64, "time {s} s overflows SimTime");
        SimTime(fs.round() as u64)
    }

    /// The raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Converts to floating-point seconds (for solver interfaces).
    pub fn to_seconds(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }

    /// Saturating addition (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Returns `true` for time zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer multiplication by a count (e.g. `period * n`).
    pub const fn times(self, n: u64) -> SimTime {
        SimTime(self.0 * n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        let (value, unit): (f64, &str) = if fs == 0 {
            (0.0, "s")
        } else if fs.is_multiple_of(1_000_000_000_000_000) {
            ((fs / 1_000_000_000_000_000) as f64, "s")
        } else if fs.is_multiple_of(1_000_000_000_000) {
            ((fs / 1_000_000_000_000) as f64, "ms")
        } else if fs.is_multiple_of(1_000_000_000) {
            ((fs / 1_000_000_000) as f64, "us")
        } else if fs.is_multiple_of(1_000_000) {
            ((fs / 1_000_000) as f64, "ns")
        } else if fs.is_multiple_of(1_000) {
            ((fs / 1_000) as f64, "ps")
        } else {
            (fs as f64, "fs")
        };
        write!(f, "{value} {unit}")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on overflow in debug builds (standard integer semantics).
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if `rhs > self` (durations are unsigned).
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = u64;
    /// How many whole `rhs` periods fit into `self`.
    fn div(self, rhs: SimTime) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimTime> for SimTime {
    type Output = SimTime;
    fn rem(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 % rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_are_consistent() {
        assert_eq!(SimTime::from_ps(1), SimTime::from_fs(1_000));
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn seconds_roundtrip() {
        let t = SimTime::from_seconds(1.25e-6);
        assert_eq!(t, SimTime::from_ns(1_250));
        assert!((t.to_seconds() - 1.25e-6).abs() < 1e-21);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_seconds(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(13));
        assert_eq!(a - b, SimTime::from_ns(7));
        assert_eq!(a * 2, SimTime::from_ns(20));
        assert_eq!(a / 2, SimTime::from_ns(5));
        assert_eq!(a / b, 3);
        assert_eq!(a % b, SimTime::from_ns(1));
    }

    #[test]
    fn checked_ops() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_fs(1)), None);
        assert_eq!(SimTime::ZERO.checked_sub(SimTime::from_fs(1)), None);
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_secs(5)),
            SimTime::MAX
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ns(1) < SimTime::from_us(1));
        assert_eq!(SimTime::from_ns(1500).to_string(), "1500 ns");
        assert_eq!(SimTime::from_us(2).to_string(), "2 us");
        assert_eq!(SimTime::ZERO.to_string(), "0 s");
        assert_eq!(SimTime::from_fs(7).to_string(), "7 fs");
    }

    #[test]
    fn unit_constructors_accept_the_full_range() {
        // Largest exactly-representable value per unit: must not panic.
        assert_eq!(
            SimTime::from_ps(u64::MAX / 1_000).as_fs(),
            u64::MAX / 1_000 * 1_000
        );
        assert_eq!(
            SimTime::from_secs(18_446).as_fs(),
            18_446_000_000_000_000_000
        );
    }

    // Overflow must panic in *every* build profile (these run under
    // `cargo test --release` in CI); before the checked_mul fix the
    // release build silently wrapped, e.g. from_secs(20_000) wrapped
    // past the ~5.1 h range into a small bogus time.
    #[test]
    #[should_panic(expected = "overflows SimTime")]
    fn from_secs_overflow_panics() {
        let _ = SimTime::from_secs(20_000);
    }

    #[test]
    #[should_panic(expected = "overflows SimTime")]
    fn from_ms_overflow_panics() {
        let _ = SimTime::from_ms(20_000_000);
    }

    #[test]
    #[should_panic(expected = "overflows SimTime")]
    fn from_us_overflow_panics() {
        let _ = SimTime::from_us(u64::MAX / 1_000_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "overflows SimTime")]
    fn from_ns_overflow_panics() {
        let _ = SimTime::from_ns(u64::MAX / 1_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "overflows SimTime")]
    fn from_ps_overflow_panics() {
        let _ = SimTime::from_ps(u64::MAX / 1_000 + 1);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }
}
