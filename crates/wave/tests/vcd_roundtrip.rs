//! Round-trip check of the VCD writer: record kernel signals, serialize,
//! then re-parse the document with a small independent VCD reader and
//! verify the header, the variable declarations and the value-change
//! stream reproduce what the simulation did.

use ams_kernel::{Kernel, SimTime};
use ams_wave::VcdRecorder;

/// A declared VCD variable: `(kind, width, id, name)`.
#[derive(Debug, PartialEq)]
struct Var {
    kind: String,
    width: u32,
    id: String,
    name: String,
}

/// A parsed value change: `(time_fs, id, value_text)`.
#[derive(Debug, PartialEq)]
struct ChangeRec {
    time_fs: u64,
    id: String,
    value: String,
}

/// Minimal VCD reader for the subset the recorder emits. Returns the
/// timescale line, the declared variables and the flat change stream.
fn parse_vcd(text: &str) -> (String, Vec<Var>, Vec<ChangeRec>) {
    let (header, body) = text
        .split_once("$enddefinitions $end")
        .expect("declaration section terminator");

    let timescale = header
        .lines()
        .find(|l| l.starts_with("$timescale"))
        .expect("timescale declaration")
        .to_string();

    let mut vars = Vec::new();
    for line in header.lines() {
        let line = line.trim();
        if !line.starts_with("$var") {
            continue;
        }
        // "$var real 64 ! volts $end"
        let tokens: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(tokens.len(), 6, "var declaration shape: {line}");
        assert_eq!(tokens[5], "$end");
        vars.push(Var {
            kind: tokens[1].to_string(),
            width: tokens[2].parse().expect("var width"),
            id: tokens[3].to_string(),
            name: tokens[4].to_string(),
        });
    }

    let mut changes = Vec::new();
    let mut now: Option<u64> = None;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(ts) = line.strip_prefix('#') {
            now = Some(ts.parse().expect("timestamp"));
        } else if let Some(rest) = line.strip_prefix('r') {
            // "r<float> <id>"
            let (value, id) = rest.split_once(' ').expect("real change shape");
            changes.push(ChangeRec {
                time_fs: now.expect("change before first timestamp"),
                id: id.to_string(),
                value: format!("r{value}"),
            });
        } else {
            // "<0|1><id>"
            let mut chars = line.chars();
            let bit = chars.next().expect("bit value");
            assert!(bit == '0' || bit == '1', "scalar change shape: {line}");
            changes.push(ChangeRec {
                time_fs: now.expect("change before first timestamp"),
                id: chars.as_str().to_string(),
                value: bit.to_string(),
            });
        }
    }
    (timescale, vars, changes)
}

#[test]
fn vcd_document_round_trips_through_a_parser() {
    let mut kernel = Kernel::new();
    let vout = kernel.signal("vout", 0.0f64);
    let ready = kernel.signal("ready", false);
    let count = kernel.signal("count", 0i32);

    let rec = VcdRecorder::new();
    rec.record_real(&mut kernel, vout);
    rec.record_bool(&mut kernel, ready);
    rec.record_int(&mut kernel, count);

    // Drive all three signals at strictly increasing instants.
    let steps: [(u64, f64); 4] = [(0, 0.5), (2, 1.5), (5, -2.25), (9, 4.0)];
    for &(t_ns, val) in &steps {
        kernel.run_until(SimTime::from_ns(t_ns)).unwrap();
        kernel.poke(vout, val);
        kernel.poke(ready, val > 0.0);
        kernel.poke(count, (val * 4.0) as i32);
    }
    kernel.run_until(SimTime::from_ns(12)).unwrap();

    let mut out = Vec::new();
    rec.write(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();

    // ---- header ------------------------------------------------------
    assert!(text.starts_with("$date"), "document opens with $date");
    let (timescale, vars, changes) = parse_vcd(&text);
    assert_eq!(timescale, "$timescale 1 fs $end");

    // ---- variable declarations --------------------------------------
    assert_eq!(vars.len(), 3);
    assert_eq!(vars[0].name, "vout");
    assert_eq!(vars[0].kind, "real");
    assert_eq!(vars[0].width, 64);
    assert_eq!(vars[1].name, "ready");
    assert_eq!(vars[1].kind, "wire");
    assert_eq!(vars[1].width, 1);
    assert_eq!(vars[2].name, "count");
    assert_eq!(vars[2].kind, "real");
    // Identifiers are unique and printable-ASCII.
    let mut ids: Vec<&str> = vars.iter().map(|v| v.id.as_str()).collect();
    assert!(ids
        .iter()
        .all(|id| id.chars().all(|c| ('!'..='~').contains(&c))));
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3, "identifiers collide");

    // ---- change stream ----------------------------------------------
    // Timestamps are monotone non-decreasing, every change references a
    // declared identifier, and the first section is at #0.
    assert!(!changes.is_empty());
    assert_eq!(changes[0].time_fs, 0);
    let mut prev = 0u64;
    for c in &changes {
        assert!(c.time_fs >= prev, "timestamps regressed at {c:?}");
        prev = c.time_fs;
        assert!(
            vars.iter().any(|v| v.id == c.id),
            "change references undeclared id {c:?}"
        );
    }

    // The real signal's reconstructed waveform matches the stimulus
    // exactly, both instants (ns -> fs) and values.
    let vout_id = &vars[0].id;
    let series: Vec<(u64, f64)> = changes
        .iter()
        .filter(|c| &c.id == vout_id)
        .map(|c| {
            let v: f64 = c.value.strip_prefix('r').unwrap().parse().unwrap();
            (c.time_fs, v)
        })
        .collect();
    let expected: Vec<(u64, f64)> = steps.iter().map(|&(t, v)| (t * 1_000_000, v)).collect();
    assert_eq!(series, expected);

    // The boolean signal only ever carries scalar 0/1 text.
    let ready_id = &vars[1].id;
    assert!(changes
        .iter()
        .filter(|c| &c.id == ready_id)
        .all(|c| c.value == "0" || c.value == "1"));
}
