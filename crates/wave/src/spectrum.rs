//! Spectral waveform analysis: amplitude spectra, SNR, SINAD, THD and
//! ENOB estimation.
//!
//! These are the measurement routines behind experiment E7 (pipelined ADC
//! accuracy vs. the ideal-quantizer reference) and the SNR figures the
//! ADSL example reports. The estimators follow standard converter-test
//! practice (IEEE 1057-style): windowed FFT, signal power gathered over
//! the fundamental's leakage bins, harmonics located by frequency
//! folding.

use crate::WaveError;
use ams_math::fft::{amplitude_spectrum, Window};

/// How many bins on each side of a spectral line are attributed to it
/// (window leakage).
const LEAKAGE_BINS: usize = 3;

/// A one-sided amplitude spectrum with its frequency grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    freqs_hz: Vec<f64>,
    amplitude: Vec<f64>,
    sample_rate_hz: f64,
}

impl Spectrum {
    /// Computes the spectrum of a uniformly sampled signal.
    ///
    /// # Errors
    ///
    /// * [`WaveError::Invalid`] for a non-positive sample rate or a
    ///   length that is not a power of two (trim with
    ///   [`largest_pow2_len`]).
    pub fn new(samples: &[f64], sample_rate_hz: f64, window: Window) -> Result<Self, WaveError> {
        if sample_rate_hz <= 0.0 || !sample_rate_hz.is_finite() {
            return Err(WaveError::invalid("sample rate must be positive"));
        }
        let amplitude =
            amplitude_spectrum(samples, window).map_err(|e| WaveError::invalid(e.to_string()))?;
        let n = samples.len();
        let freqs_hz = (0..amplitude.len())
            .map(|k| k as f64 * sample_rate_hz / n as f64)
            .collect();
        Ok(Spectrum {
            freqs_hz,
            amplitude,
            sample_rate_hz,
        })
    }

    /// The frequency grid (Hz), DC through Nyquist.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Window-corrected amplitudes per bin.
    pub fn amplitude(&self) -> &[f64] {
        &self.amplitude
    }

    /// The bin index nearest to `freq_hz`.
    pub fn bin_of(&self, freq_hz: f64) -> usize {
        let n = (self.freqs_hz.len() - 1) * 2;
        ((freq_hz / self.sample_rate_hz * n as f64).round() as usize).min(self.freqs_hz.len() - 1)
    }

    /// The bin index with the largest amplitude, excluding DC leakage.
    pub fn peak_bin(&self) -> usize {
        self.amplitude
            .iter()
            .enumerate()
            .skip(LEAKAGE_BINS + 1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Power in the leakage window around a bin.
    fn line_power(&self, bin: usize) -> f64 {
        let lo = bin.saturating_sub(LEAKAGE_BINS);
        let hi = (bin + LEAKAGE_BINS).min(self.amplitude.len() - 1);
        self.amplitude[lo..=hi].iter().map(|a| a * a / 2.0).sum()
    }
}

/// Converter/test metrics extracted from a sine-excited record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineMetrics {
    /// Detected fundamental frequency, Hz.
    pub fundamental_hz: f64,
    /// Signal-to-noise ratio excluding harmonics, dB.
    pub snr_db: f64,
    /// Signal-to-noise-and-distortion ratio, dB.
    pub sinad_db: f64,
    /// Total harmonic distortion (first 5 harmonics), dB relative to the
    /// fundamental (negative for small distortion).
    pub thd_db: f64,
    /// Effective number of bits derived from SINAD.
    pub enob: f64,
}

/// Analyzes a sine-excited record (the standard ADC test method).
///
/// The fundamental is auto-detected as the largest non-DC line. Noise is
/// everything outside the DC, fundamental and harmonic leakage windows.
///
/// # Errors
///
/// * [`WaveError::Invalid`] for bad sample rates / lengths or if the
///   record contains no detectable fundamental.
///
/// # Example
///
/// ```
/// use ams_wave::analyze_sine;
/// use ams_math::fft::Window;
///
/// # fn main() -> Result<(), ams_wave::WaveError> {
/// let n = 4096;
/// let fs = 1.0e6;
/// // Clean sine: SNR limited only by floating-point noise (very high).
/// let signal: Vec<f64> = (0..n)
///     .map(|i| (2.0 * std::f64::consts::PI * 101.0 * i as f64 / n as f64).sin())
///     .collect();
/// let m = analyze_sine(&signal, fs, Window::Blackman)?;
/// assert!(m.snr_db > 100.0);
/// # Ok(())
/// # }
/// ```
pub fn analyze_sine(
    samples: &[f64],
    sample_rate_hz: f64,
    window: Window,
) -> Result<SineMetrics, WaveError> {
    let spec = Spectrum::new(samples, sample_rate_hz, window)?;
    let n_bins = spec.amplitude.len();
    let fund_bin = spec.peak_bin();
    if spec.amplitude[fund_bin] <= 0.0 {
        return Err(WaveError::invalid("no fundamental line detected"));
    }
    let fundamental_hz = spec.freqs_hz[fund_bin];
    let signal_power = spec.line_power(fund_bin);

    // Harmonic bins (2f..6f), folded around Nyquist.
    let full_n = (n_bins - 1) * 2;
    let mut harmonic_bins = Vec::new();
    for h in 2..=6usize {
        let mut idx = (fund_bin * h) % full_n;
        if idx >= n_bins {
            idx = full_n - idx; // fold
        }
        harmonic_bins.push(idx);
    }
    let harmonic_power: f64 = harmonic_bins.iter().map(|&b| spec.line_power(b)).sum();

    // Noise: total minus DC, fundamental and harmonic windows.
    let mut excluded = vec![false; n_bins];
    excluded[..=LEAKAGE_BINS.min(n_bins - 1)].fill(true); // DC leakage
    let mut mark = |bin: usize| {
        let lo = bin.saturating_sub(LEAKAGE_BINS);
        let hi = (bin + LEAKAGE_BINS).min(n_bins - 1);
        excluded[lo..=hi].fill(true);
    };
    mark(fund_bin);
    for &b in &harmonic_bins {
        mark(b);
    }
    let noise_power: f64 = spec
        .amplitude
        .iter()
        .enumerate()
        .filter(|(k, _)| !excluded[*k])
        .map(|(_, a)| a * a / 2.0)
        .sum();

    // Avoid log(0) on synthetic noise-free records.
    let tiny = signal_power * 1e-30 + f64::MIN_POSITIVE;
    let snr_db = 10.0 * (signal_power / (noise_power + tiny)).log10();
    let sinad_db = 10.0 * (signal_power / (noise_power + harmonic_power + tiny)).log10();
    let thd_db = 10.0 * ((harmonic_power + tiny) / signal_power).log10();
    let enob = (sinad_db - 1.76) / 6.02;

    Ok(SineMetrics {
        fundamental_hz,
        snr_db,
        sinad_db,
        thd_db,
        enob,
    })
}

/// Returns the largest power-of-two prefix length of `n` (for trimming
/// records before FFT analysis).
pub fn largest_pow2_len(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sine(n: usize, cycles: f64, ampl: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ampl * (2.0 * PI * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn spectrum_grid_and_peak() {
        let n = 1024;
        let fs = 1024.0;
        let s = sine(n, 100.0, 1.0);
        let spec = Spectrum::new(&s, fs, Window::Hann).unwrap();
        assert_eq!(spec.freqs_hz().len(), n / 2 + 1);
        assert_eq!(spec.peak_bin(), 100);
        assert_eq!(spec.bin_of(100.0), 100);
        assert!((spec.amplitude()[100] - 1.0).abs() < 0.01);
    }

    #[test]
    fn quantized_sine_enob_matches_bits() {
        // Quantize an 8-bit sine and check ENOB ≈ 8.
        let n = 8192;
        let bits = 8;
        let lsb = 2.0 / (1 << bits) as f64;
        // Slightly under full scale, non-integer-ish bin for realism but
        // still coherent (odd bin count).
        let s: Vec<f64> = sine(n, 479.0, 0.99)
            .iter()
            .map(|v| (v / lsb).round() * lsb)
            .collect();
        let m = analyze_sine(&s, 1.0, Window::Blackman).unwrap();
        assert!(
            (m.enob - bits as f64).abs() < 0.5,
            "enob {} for {} bits",
            m.enob,
            bits
        );
    }

    #[test]
    fn distorted_sine_reports_thd() {
        let n = 4096;
        let fund = sine(n, 101.0, 1.0);
        // Add −40 dB second harmonic.
        let s: Vec<f64> = (0..n)
            .map(|i| fund[i] + 0.01 * (2.0 * PI * 202.0 * i as f64 / n as f64).sin())
            .collect();
        let m = analyze_sine(&s, 1.0, Window::Blackman).unwrap();
        assert!((m.thd_db + 40.0).abs() < 1.0, "thd {}", m.thd_db);
        // SINAD dominated by distortion: ≈ 40 dB; SNR much higher.
        assert!((m.sinad_db - 40.0).abs() < 1.0, "sinad {}", m.sinad_db);
        assert!(m.snr_db > 80.0, "snr {}", m.snr_db);
    }

    #[test]
    fn noisy_sine_snr() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 16384;
        let mut rng = StdRng::seed_from_u64(1);
        let sigma = 0.01;
        let s: Vec<f64> = sine(n, 1001.0, 1.0)
            .iter()
            .map(|v| {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
                v + sigma * g
            })
            .collect();
        // Expected SNR = 10·log10((1/2)/σ²) ≈ 37 dB.
        let m = analyze_sine(&s, 1.0, Window::Blackman).unwrap();
        let expect = 10.0 * (0.5 / (sigma * sigma)).log10();
        assert!(
            (m.snr_db - expect).abs() < 1.5,
            "snr {} vs {expect}",
            m.snr_db
        );
    }

    #[test]
    fn fundamental_detection() {
        let s = sine(2048, 333.0, 0.7);
        let m = analyze_sine(&s, 2048.0, Window::Hann).unwrap();
        assert!((m.fundamental_hz - 333.0).abs() < 1.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let s = sine(1000, 10.0, 1.0); // not a power of two
        assert!(Spectrum::new(&s, 1.0, Window::Hann).is_err());
        let s2 = sine(1024, 10.0, 1.0);
        assert!(Spectrum::new(&s2, -1.0, Window::Hann).is_err());
    }

    #[test]
    fn pow2_trim() {
        assert_eq!(largest_pow2_len(0), 0);
        assert_eq!(largest_pow2_len(1), 1);
        assert_eq!(largest_pow2_len(1023), 512);
        assert_eq!(largest_pow2_len(1024), 1024);
        assert_eq!(largest_pow2_len(1025), 1024);
    }
}
