//! Waveform tracing and analysis for the SystemC-AMS reproduction.
//!
//! * [`VcdRecorder`] — records DE kernel signals and serializes standard
//!   VCD for waveform viewers;
//! * [`write_csv`] — exports sampled waveforms (e.g.
//!   `TdfProbe` data from `ams-core`) as CSV;
//! * [`Spectrum`] / [`analyze_sine`] — windowed-FFT amplitude spectra and
//!   converter-test metrics (SNR, SINAD, THD, ENOB), the measurement side
//!   of the ADC experiments.
//!
//! # Example
//!
//! ```
//! use ams_wave::{analyze_sine, largest_pow2_len};
//! use ams_math::fft::Window;
//!
//! # fn main() -> Result<(), ams_wave::WaveError> {
//! let fs = 1.0e6;
//! let samples: Vec<f64> = (0..4096)
//!     .map(|i| (2.0 * std::f64::consts::PI * 257.0 * i as f64 / 4096.0).sin())
//!     .collect();
//! let metrics = analyze_sine(&samples, fs, Window::Blackman)?;
//! assert!(metrics.snr_db > 100.0); // clean sine
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv;
mod error;
mod spectrum;
mod vcd;

pub use csv::{write_csv, WaveColumn};
pub use error::WaveError;
pub use spectrum::{analyze_sine, largest_pow2_len, SineMetrics, Spectrum};
pub use vcd::VcdRecorder;
