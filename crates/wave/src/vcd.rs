//! Value-change-dump (VCD) recording of DE kernel signals.
//!
//! A [`VcdRecorder`] subscribes to kernel signals via observers, buffers
//! value changes in memory, and serializes a standard VCD file that any
//! waveform viewer (GTKWave etc.) can open.

use crate::WaveError;
use ams_kernel::{Kernel, Signal, SignalValue, SimTime};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write;
use std::rc::Rc;

#[derive(Debug, Clone)]
struct Change {
    time: SimTime,
    var: usize,
    /// VCD value text: `0`/`1` for scalars, `r<float>` for reals.
    text: String,
}

#[derive(Debug, Default)]
struct VcdState {
    vars: Vec<(String, VarKind)>,
    changes: Vec<Change>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Real,
    Bit,
}

/// Records DE signal changes for VCD export.
///
/// # Example
///
/// ```
/// use ams_kernel::{Kernel, SimTime};
/// use ams_wave::VcdRecorder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut kernel = Kernel::new();
/// let sig = kernel.signal("data", 0.0f64);
/// let recorder = VcdRecorder::new();
/// recorder.record_real(&mut kernel, sig);
/// kernel.poke(sig, 1.5);
/// kernel.run_until(SimTime::from_ns(10))?;
/// let mut out = Vec::new();
/// recorder.write(&mut out)?;
/// let text = String::from_utf8(out)?;
/// assert!(text.contains("$var real"));
/// assert!(text.contains("r1.5"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct VcdRecorder {
    state: Rc<RefCell<VcdState>>,
}

impl VcdRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        VcdRecorder::default()
    }

    fn add_var(&self, name: &str, kind: VarKind) -> usize {
        let mut st = self.state.borrow_mut();
        st.vars.push((name.to_string(), kind));
        st.vars.len() - 1
    }

    /// Starts recording a real-valued signal.
    pub fn record_real(&self, kernel: &mut Kernel, sig: Signal<f64>) {
        let name = kernel.signal_name(sig).to_string();
        let var = self.add_var(&name, VarKind::Real);
        let state = self.state.clone();
        kernel.observe(sig, move |t, v| {
            state.borrow_mut().changes.push(Change {
                time: t,
                var,
                text: format!("r{v}"),
            });
        });
    }

    /// Starts recording a boolean signal.
    pub fn record_bool(&self, kernel: &mut Kernel, sig: Signal<bool>) {
        let name = kernel.signal_name(sig).to_string();
        let var = self.add_var(&name, VarKind::Bit);
        let state = self.state.clone();
        kernel.observe(sig, move |t, v| {
            state.borrow_mut().changes.push(Change {
                time: t,
                var,
                text: if *v { "1".into() } else { "0".into() },
            });
        });
    }

    /// Starts recording an integer signal (stored as a VCD real for
    /// simplicity of the identifier-width handling).
    pub fn record_int<T: SignalValue + Into<i64> + Copy>(
        &self,
        kernel: &mut Kernel,
        sig: Signal<T>,
    ) {
        let name = kernel.signal_name(sig).to_string();
        let var = self.add_var(&name, VarKind::Real);
        let state = self.state.clone();
        kernel.observe(sig, move |t, v| {
            let value: i64 = (*v).into();
            state.borrow_mut().changes.push(Change {
                time: t,
                var,
                text: format!("r{value}"),
            });
        });
    }

    /// Number of changes recorded so far.
    pub fn change_count(&self) -> usize {
        self.state.borrow().changes.len()
    }

    /// Serializes the recording as a VCD document.
    ///
    /// # Errors
    ///
    /// Returns [`WaveError::Io`] on write failures and
    /// [`WaveError::NothingRecorded`] if no variable was registered.
    pub fn write<W: Write>(&self, mut w: W) -> Result<(), WaveError> {
        let st = self.state.borrow();
        if st.vars.is_empty() {
            return Err(WaveError::NothingRecorded);
        }
        let mut out = String::new();
        out.push_str("$date\n  systemc-ams reproduction\n$end\n");
        out.push_str("$timescale 1 fs $end\n");
        out.push_str("$scope module top $end\n");
        for (idx, (name, kind)) in st.vars.iter().enumerate() {
            let id = var_id(idx);
            let clean: String = name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            match kind {
                VarKind::Real => {
                    let _ = writeln!(out, "$var real 64 {id} {clean} $end");
                }
                VarKind::Bit => {
                    let _ = writeln!(out, "$var wire 1 {id} {clean} $end");
                }
            }
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        let mut changes: Vec<&Change> = st.changes.iter().collect();
        changes.sort_by_key(|c| c.time);
        let mut current: Option<SimTime> = None;
        for c in changes {
            if current != Some(c.time) {
                let _ = writeln!(out, "#{}", c.time.as_fs());
                current = Some(c.time);
            }
            let id = var_id(c.var);
            if c.text.starts_with('r') {
                let _ = writeln!(out, "{} {id}", c.text);
            } else {
                let _ = writeln!(out, "{}{id}", c.text);
            }
        }
        w.write_all(out.as_bytes()).map_err(WaveError::Io)?;
        Ok(())
    }
}

/// Generates a short printable VCD identifier for a variable index.
fn var_id(mut idx: usize) -> String {
    // Identifiers over the printable range '!'..='~'.
    let mut s = String::new();
    loop {
        s.push((b'!' + (idx % 94) as u8) as char);
        idx /= 94;
        if idx == 0 {
            break;
        }
        idx -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serializes() {
        let mut k = Kernel::new();
        let v = k.signal("volts", 0.0f64);
        let b = k.signal("flag", false);
        let rec = VcdRecorder::new();
        rec.record_real(&mut k, v);
        rec.record_bool(&mut k, b);

        k.poke(v, 3.3);
        k.poke(b, true);
        k.run_until(SimTime::from_ns(1)).unwrap();
        k.poke(v, 1.1);
        k.run_until(SimTime::from_ns(5)).unwrap();

        assert_eq!(rec.change_count(), 3);
        let mut out = Vec::new();
        rec.write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$timescale 1 fs $end"));
        assert!(text.contains("$var real 64 ! volts $end"));
        assert!(text.contains("$var wire 1 \" flag $end"));
        assert!(text.contains("r3.3 !"));
        assert!(text.contains("1\""));
        assert!(text.contains("r1.1 !"));
        // Timestamps in femtoseconds.
        assert!(text.contains("#0"));
        assert!(text.contains("#1000000"));
    }

    #[test]
    fn empty_recorder_errors() {
        let rec = VcdRecorder::new();
        let mut out = Vec::new();
        assert!(matches!(
            rec.write(&mut out),
            Err(WaveError::NothingRecorded)
        ));
    }

    #[test]
    fn var_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(var_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }

    #[test]
    fn int_signals_recorded_as_reals() {
        let mut k = Kernel::new();
        let c = k.signal("count", 0i32);
        let rec = VcdRecorder::new();
        rec.record_int(&mut k, c);
        k.poke(c, 42);
        k.run_until(SimTime::from_ns(1)).unwrap();
        let mut out = Vec::new();
        rec.write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("r42"));
    }
}
