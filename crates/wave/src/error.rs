use std::fmt;

/// Errors from waveform recording, export and analysis.
#[derive(Debug)]
#[non_exhaustive]
pub enum WaveError {
    /// Nothing was recorded / no columns were supplied.
    NothingRecorded,
    /// Parallel waveform columns had different lengths.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Expected sample count.
        expected: usize,
        /// Actual sample count.
        found: usize,
    },
    /// An argument was out of its valid domain.
    Invalid {
        /// Description of the violated precondition.
        reason: String,
    },
    /// An I/O error occurred during export.
    Io(std::io::Error),
}

impl WaveError {
    /// Builds a [`WaveError::Invalid`] from a reason string.
    pub fn invalid(reason: impl Into<String>) -> Self {
        WaveError::Invalid {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveError::NothingRecorded => write!(f, "nothing was recorded"),
            WaveError::LengthMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "column '{column}' has {found} samples, expected {expected}"
            ),
            WaveError::Invalid { reason } => write!(f, "invalid argument: {reason}"),
            WaveError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WaveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WaveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            WaveError::NothingRecorded.to_string(),
            "nothing was recorded"
        );
        assert!(WaveError::invalid("x").to_string().contains("x"));
    }
}
