//! CSV export of sampled waveforms (for plotting outside the simulator).

use crate::WaveError;
use std::io::Write;

/// A named waveform column: `(name, samples)` where each sample is
/// `(time_seconds, value)`.
pub type WaveColumn<'a> = (&'a str, &'a [(f64, f64)]);

/// Writes one or more waveforms that share a time base into CSV.
///
/// The time base is taken from the first column; other columns are
/// emitted positionally and must have the same length.
///
/// # Errors
///
/// * [`WaveError::NothingRecorded`] for an empty column list.
/// * [`WaveError::LengthMismatch`] if column lengths differ.
/// * [`WaveError::Io`] on write failure.
///
/// # Example
///
/// ```
/// use ams_wave::write_csv;
///
/// # fn main() -> Result<(), ams_wave::WaveError> {
/// let vin = [(0.0, 0.0), (1e-6, 1.0)];
/// let vout = [(0.0, 0.0), (1e-6, 0.5)];
/// let mut out = Vec::new();
/// write_csv(&mut out, &[("vin", &vin), ("vout", &vout)])?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("time,vin,vout\n"));
/// # Ok(())
/// # }
/// ```
pub fn write_csv<W: Write>(mut w: W, columns: &[WaveColumn<'_>]) -> Result<(), WaveError> {
    let first = columns.first().ok_or(WaveError::NothingRecorded)?;
    let n = first.1.len();
    for (name, col) in columns {
        if col.len() != n {
            return Err(WaveError::LengthMismatch {
                column: (*name).to_string(),
                expected: n,
                found: col.len(),
            });
        }
    }
    let mut line = String::from("time");
    for (name, _) in columns {
        line.push(',');
        line.push_str(name);
    }
    line.push('\n');
    w.write_all(line.as_bytes()).map_err(WaveError::Io)?;

    for row in 0..n {
        let mut line = format!("{:.12e}", first.1[row].0);
        for (_, col) in columns {
            line.push(',');
            line.push_str(&format!("{:.12e}", col[row].1));
        }
        line.push('\n');
        w.write_all(line.as_bytes()).map_err(WaveError::Io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let a = [(0.0, 1.0), (1.0, 2.0)];
        let b = [(0.0, 10.0), (1.0, 20.0)];
        let mut out = Vec::new();
        write_csv(&mut out, &[("a", &a), ("b", &b)]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time,a,b");
        assert!(lines[1].starts_with("0.0"));
        assert!(lines[1].contains("1.0"));
    }

    #[test]
    fn empty_columns_rejected() {
        let mut out = Vec::new();
        assert!(matches!(
            write_csv(&mut out, &[]),
            Err(WaveError::NothingRecorded)
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let a = [(0.0, 1.0)];
        let b = [(0.0, 1.0), (1.0, 2.0)];
        let mut out = Vec::new();
        assert!(matches!(
            write_csv(&mut out, &[("a", &a), ("b", &b)]),
            Err(WaveError::LengthMismatch { .. })
        ));
    }
}
