//! End-to-end tests of the pre-elaboration lint gate: structurally
//! broken models are rejected *before* any scheduling or solver work,
//! with the stable diagnostic codes from the `ams-lint` registry.

use ams_core::{AmsSimulator, CoreError, TdfGraph, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};
use ams_kernel::SimTime;
use ams_lint::{codes, LintPolicy};
use ams_net::Circuit;

/// A module declaring arbitrary port rates — the raw material for
/// rate-consistency tests.
struct Rates {
    inputs: Vec<(TdfIn, u64, u64)>,
    outputs: Vec<(TdfOut, u64)>,
    ts: Option<SimTime>,
}

impl TdfModule for Rates {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        for &(p, rate, delay) in &self.inputs {
            cfg.input_with(p, rate, delay);
        }
        for &(p, rate) in &self.outputs {
            cfg.output_with(p, rate);
        }
        if let Some(ts) = self.ts {
            cfg.set_timestep(ts);
        }
    }

    fn processing(&mut self, _io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        Ok(())
    }
}

/// A feedback pair with contradictory balance equations: `a` produces 2
/// tokens per firing that `b` consumes one at a time (q_b = 2·q_a), but
/// `b` feeds `a` one-for-one (q_b = q_a). The delay on the return edge
/// rules out a delay-free-cycle report, so TDF001 is the sole error.
fn rate_inconsistent_graph() -> TdfGraph {
    let mut g = TdfGraph::new("bad_rates");
    let fwd = g.signal("fwd");
    let back = g.signal("back");
    g.add_module(
        "a",
        Rates {
            inputs: vec![(back.reader(), 1, 1)],
            outputs: vec![(fwd.writer(), 2)],
            ts: Some(SimTime::from_us(1)),
        },
    );
    g.add_module(
        "b",
        Rates {
            inputs: vec![(fwd.reader(), 1, 0)],
            outputs: vec![(back.writer(), 1)],
            ts: None,
        },
    );
    g
}

#[test]
fn rate_inconsistent_graph_rejected_pre_elaboration() {
    let mut sim = AmsSimulator::new();
    let err = sim
        .add_cluster(rate_inconsistent_graph())
        .expect_err("inconsistent rates must not elaborate");
    assert_eq!(err.code(), Some(codes::TDF001), "{err}");
    match err {
        CoreError::Lint(report) => {
            assert!(report.has_code(codes::TDF001), "{}", report.render());
            assert!(report.error_count() >= 1);
        }
        other => panic!("expected CoreError::Lint, got {other}"),
    }
    // The rejected report is retained for inspection.
    assert_eq!(sim.lint_reports().len(), 1);
}

#[test]
fn delay_free_cycle_rejected_pre_elaboration() {
    // Same feedback pair, balanced rates, but no delay anywhere: the
    // cycle can never fire and is caught statically as TDF002.
    let mut g = TdfGraph::new("deadlock");
    let fwd = g.signal("fwd");
    let back = g.signal("back");
    g.add_module(
        "a",
        Rates {
            inputs: vec![(back.reader(), 1, 0)],
            outputs: vec![(fwd.writer(), 1)],
            ts: Some(SimTime::from_us(1)),
        },
    );
    g.add_module(
        "b",
        Rates {
            inputs: vec![(fwd.reader(), 1, 0)],
            outputs: vec![(back.writer(), 1)],
            ts: None,
        },
    );
    let mut sim = AmsSimulator::new();
    let err = sim.add_cluster(g).expect_err("delay-free cycle");
    assert_eq!(err.code(), Some(codes::TDF002), "{err}");
}

fn floating_node_circuit() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let c = ckt.node("c");
    let d = ckt.node("d");
    ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    ckt.resistor("R2", c, d, 1e3).unwrap();
    ckt
}

#[test]
fn floating_node_netlist_rejected_pre_elaboration() {
    use ams_core::NetlistCtSolver;
    use ams_net::IntegrationMethod;

    let ckt = floating_node_circuit();
    let Err(err) = NetlistCtSolver::new(&ckt, IntegrationMethod::BackwardEuler, vec![], vec![])
    else {
        panic!("floating node must be rejected");
    };
    assert_eq!(err.code(), Some(codes::MNA001), "{err}");
    match err {
        CoreError::Lint(report) => {
            assert!(report.has_code(codes::MNA001), "{}", report.render());
        }
        other => panic!("expected CoreError::Lint, got {other}"),
    }

    // The policy escape hatch skips the gate (construction may still
    // fail later, but never with a lint error).
    let relaxed = NetlistCtSolver::new_with_policy(
        &ckt,
        IntegrationMethod::BackwardEuler,
        vec![],
        vec![],
        &LintPolicy::allow_all(),
    );
    if let Err(e) = relaxed {
        assert!(!matches!(e, CoreError::Lint(_)), "gate not skipped: {e}");
    }
}

#[test]
fn allow_all_policy_defers_to_runtime_diagnostics() {
    // With the lint gate disabled the same inconsistent graph still
    // fails — in elaboration, with the *same* stable code (parity
    // between the static pass and the runtime scheduler).
    let mut sim = AmsSimulator::new();
    sim.set_lint_policy(LintPolicy::allow_all());
    let err = sim
        .add_cluster(rate_inconsistent_graph())
        .expect_err("still inconsistent at runtime");
    assert!(!matches!(err, CoreError::Lint(_)), "gate ran: {err}");
    assert_eq!(err.code(), Some(codes::TDF001), "{err}");
}
