use ams_kernel::SimTime;
use std::fmt;

/// Errors from TDF elaboration, execution and analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// No module in the cluster declared a timestep, so the cluster
    /// period cannot be derived.
    NoTimestep,
    /// Two timestep declarations disagree after rate propagation.
    InconsistentTimestep {
        /// Module that declared the conflicting timestep.
        module: String,
        /// The cluster period implied by this module.
        implied_period: SimTime,
        /// The cluster period implied by earlier declarations.
        established_period: SimTime,
    },
    /// The cluster period is not divisible by a module's repetition
    /// count, so that module has no exact femtosecond-aligned timestep.
    InexactTimestep {
        /// The module with no exact timestep.
        module: String,
        /// The cluster period.
        period: SimTime,
        /// The module's firings per period.
        repetitions: u64,
    },
    /// A TDF signal has more than one writer.
    MultipleWriters {
        /// Name of the signal.
        signal: String,
    },
    /// A TDF signal is read but never written.
    NoWriter {
        /// Name of the signal.
        signal: String,
    },
    /// Rate/consistency/deadlock errors from the dataflow analysis.
    Sdf(ams_sdf::SdfError),
    /// The DE kernel reported an error during co-simulation.
    Kernel(ams_kernel::KernelError),
    /// An embedded continuous-time solver failed.
    Solver {
        /// Which solver/module failed.
        module: String,
        /// Underlying message.
        message: String,
    },
    /// A module accessed a port it never declared in `setup`.
    UndeclaredPort {
        /// The module at fault.
        module: String,
        /// The signal it touched.
        signal: String,
    },
    /// Invalid argument (zero rate, empty frequency list, …).
    Invalid {
        /// Description of the violated precondition.
        reason: String,
    },
    /// Pre-elaboration static analysis rejected the model: at least one
    /// diagnostic reached deny level under the active
    /// [`ams_lint::LintPolicy`]. The full report (including allowed and
    /// warned findings) is attached.
    Lint(ams_lint::LintReport),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoTimestep => {
                write!(f, "no module declared a timestep; cluster period unknown")
            }
            CoreError::InconsistentTimestep {
                module,
                implied_period,
                established_period,
            } => write!(
                f,
                "module '{module}' implies cluster period {implied_period} but {established_period} was already established"
            ),
            CoreError::InexactTimestep {
                module,
                period,
                repetitions,
            } => write!(
                f,
                "cluster period {period} is not divisible by {repetitions} firings of module '{module}'"
            ),
            CoreError::MultipleWriters { signal } => {
                write!(f, "tdf signal '{signal}' has more than one writer")
            }
            CoreError::NoWriter { signal } => {
                write!(f, "tdf signal '{signal}' is read but never written")
            }
            CoreError::Sdf(e) => write!(f, "dataflow error: {e}"),
            CoreError::Kernel(e) => write!(f, "kernel error: {e}"),
            CoreError::Solver { module, message } => {
                write!(f, "solver failure in module '{module}': {message}")
            }
            CoreError::UndeclaredPort { module, signal } => {
                write!(f, "module '{module}' accessed undeclared port on signal '{signal}'")
            }
            CoreError::Invalid { reason } => write!(f, "invalid argument: {reason}"),
            CoreError::Lint(report) => {
                write!(
                    f,
                    "static analysis rejected '{}' ({} error(s), {} warning(s)):\n{}",
                    report.context,
                    report.error_count(),
                    report.warning_count(),
                    report.render()
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sdf(e) => Some(e),
            CoreError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ams_sdf::SdfError> for CoreError {
    fn from(e: ams_sdf::SdfError) -> Self {
        CoreError::Sdf(e)
    }
}

impl From<ams_kernel::KernelError> for CoreError {
    fn from(e: ams_kernel::KernelError) -> Self {
        CoreError::Kernel(e)
    }
}

impl CoreError {
    /// Builds an [`CoreError::Invalid`] from a reason string.
    pub fn invalid(reason: impl Into<String>) -> Self {
        CoreError::Invalid {
            reason: reason.into(),
        }
    }

    /// Builds a [`CoreError::Solver`] failure record.
    pub fn solver(module: impl Into<String>, message: impl fmt::Display) -> Self {
        CoreError::Solver {
            module: module.into(),
            message: message.to_string(),
        }
    }

    /// The stable diagnostic code of this error from the `ams-lint`
    /// registry, when the failure corresponds to a static-analysis
    /// finding (`TDF005` = no timestep, `TDF006` = inconsistent
    /// timesteps, …). `None` for failures with no static counterpart
    /// (kernel errors, solver divergence, runtime solver faults). For
    /// [`CoreError::Lint`] the code of the first error-severity
    /// diagnostic (or, failing that, the first diagnostic) is returned.
    pub fn code(&self) -> Option<&'static str> {
        match self {
            CoreError::NoTimestep => Some("TDF005"),
            CoreError::InconsistentTimestep { .. } => Some("TDF006"),
            CoreError::InexactTimestep { .. } => Some("TDF012"),
            CoreError::MultipleWriters { .. } => Some("TDF004"),
            CoreError::NoWriter { .. } => Some("TDF003"),
            CoreError::Sdf(e) => Some(e.code()),
            CoreError::Lint(report) => report
                .diagnostics
                .iter()
                .find(|d| d.severity == ams_lint::Severity::Error)
                .or_else(|| report.diagnostics.first())
                .map(|d| d.code),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::NoWriter { signal: "x".into() };
        assert!(e.to_string().contains("'x'"));
        let e: CoreError = ams_sdf::SdfError::ZeroRate { edge: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
