//! Pluggable continuous-time solvers (design objective O8).
//!
//! "SystemC-AMS … will provide an open architecture in which existing,
//! mature, simulators or solvers may be plugged in and coupled with
//! discrete-time MoCs" (paper §3). [`CtSolver`] is that coupling
//! interface: an object-safe trait any solver can implement. The bundled
//! implementations are
//!
//! * [`LtiCtSolver`] — the linear state-space solver from `ams-lti`
//!   (phase 1: fixed-timestep linear dynamic MoC);
//! * [`NetlistCtSolver`] — the conservative-law MNA solver from
//!   `ams-net`, including its nonlinear Newton and switch support
//!   (phases 2–3);
//!
//! and [`CtModule`] embeds any `Box<dyn CtSolver>` in a TDF cluster as a
//! rate-1 module ("embedded linear DAE's" in the paper's Figure 1).

use crate::module::{AcIo, TdfInit, TdfIo, TdfModule, TdfSetup};
use crate::port::{TdfIn, TdfOut};
use crate::CoreError;
use ams_kernel::SimTime;
use ams_lti::{Discretization, LtiSolver, StateSpace};
use ams_math::{Complex64, DMat};
use ams_net::{Circuit, InputId, IntegrationMethod, NodeId, TransientSolver};

/// An object-safe continuous-time solver that can be scheduled inside a
/// TDF cluster.
///
/// The synchronization contract: [`CtSolver::initialize`] establishes the
/// quiescent state for the DC input values, then
/// [`CtSolver::advance_to`] is called with strictly increasing times —
/// once per TDF sample — holding `inputs` constant over the interval.
///
/// Solvers are `Send` so the embedding [`CtModule`] (and thus its
/// cluster) can run on a worker thread of the parallel execution engine.
pub trait CtSolver: Send {
    /// Number of input channels.
    fn num_inputs(&self) -> usize;

    /// Number of output channels.
    fn num_outputs(&self) -> usize;

    /// Establishes a consistent initial (quiescent) state for constant
    /// `dc_inputs` (the paper's mixed-signal initialization requirement).
    ///
    /// # Errors
    ///
    /// Solver-specific failures (e.g. a DC solve that does not converge).
    fn initialize(&mut self, dc_inputs: &[f64]) -> Result<(), CoreError>;

    /// Advances the internal state from the previous time to `t`
    /// (seconds), with `inputs` held constant, and writes the outputs at
    /// `t` into `outputs`.
    ///
    /// # Errors
    ///
    /// Solver-specific failures (Newton divergence, singularities, …).
    fn advance_to(&mut self, t: f64, inputs: &[f64], outputs: &mut [f64]) -> Result<(), CoreError>;

    /// The small-signal transfer matrix `H(jω)` (outputs × inputs), if
    /// the solver supports frequency-domain analysis. Default: `None`
    /// (the embedding module stamps zeros).
    fn ac_transfer(&self, _omega: f64) -> Option<DMat<Complex64>> {
        None
    }

    /// Counters `(newton_iterations, factorizations)`, if the solver
    /// keeps them. Default: `None` (nothing to report).
    fn newton_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Linear-solver counters (sparse symbolic analyses, numeric
    /// refactorizations, pattern sizes, reused factorizations), if the
    /// solver keeps them. Default: `None`.
    fn solve_stats(&self) -> Option<ams_math::SolveStats> {
        None
    }

    /// Enables or disables span tracing inside the solver (MNA
    /// assemble/factor/solve, Newton iterations, adaptive-step
    /// accept/reject). Default: no-op for solvers without tracing.
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Drains trace events recorded since the last call. Default: none.
    fn take_trace_events(&mut self) -> Vec<ams_scope::TraceEvent> {
        Vec::new()
    }
}

/// [`CtSolver`] over a linear time-invariant state-space model.
///
/// Uses fixed-step discretization re-derived whenever the TDF timestep
/// changes, so each TDF sample costs one matrix–vector product.
#[derive(Debug, Clone)]
pub struct LtiCtSolver {
    ss: StateSpace,
    method: Discretization,
    solver: Option<LtiSolver>,
    last_t: f64,
}

impl LtiCtSolver {
    /// Wraps a state-space model.
    pub fn new(ss: StateSpace, method: Discretization) -> Self {
        LtiCtSolver {
            ss,
            method,
            solver: None,
            last_t: 0.0,
        }
    }

    /// Wraps a SISO transfer function.
    ///
    /// # Errors
    ///
    /// Returns an error for improper transfer functions.
    pub fn from_transfer_function(
        tf: &ams_lti::TransferFunction,
        method: Discretization,
    ) -> Result<Self, CoreError> {
        let ss = tf
            .to_state_space()
            .map_err(|e| CoreError::solver("lti", e))?;
        Ok(LtiCtSolver::new(ss, method))
    }
}

impl CtSolver for LtiCtSolver {
    fn num_inputs(&self) -> usize {
        self.ss.inputs()
    }

    fn num_outputs(&self) -> usize {
        self.ss.outputs()
    }

    fn initialize(&mut self, dc_inputs: &[f64]) -> Result<(), CoreError> {
        // The step size is unknown until the first advance; discretize
        // lazily but compute the DC state now.
        self.solver = None;
        self.last_t = 0.0;
        // Store DC state by building a provisional solver at a nominal
        // step; the state carries over via set_state on first advance.
        let mut s = LtiSolver::new(self.ss.clone(), 1.0, self.method)
            .map_err(|e| CoreError::solver("lti", e))?;
        if s.initialize_dc(dc_inputs).is_err() {
            // Systems with poles at the origin have no unique DC point;
            // start from zero state instead.
        }
        self.solver = Some(s);
        Ok(())
    }

    fn advance_to(&mut self, t: f64, inputs: &[f64], outputs: &mut [f64]) -> Result<(), CoreError> {
        let h = t - self.last_t;
        if h <= 0.0 {
            return Err(CoreError::invalid(format!(
                "lti solver asked to advance backwards ({} → {t})",
                self.last_t
            )));
        }
        let solver = self
            .solver
            .as_mut()
            .ok_or_else(|| CoreError::solver("lti", "advance_to before initialize"))?;
        if (solver.step_size() - h).abs() > 1e-18 {
            solver
                .set_step_size(h)
                .map_err(|e| CoreError::solver("lti", e))?;
        }
        let y = solver.step(inputs);
        outputs.copy_from_slice(y);
        self.last_t = t;
        Ok(())
    }

    fn ac_transfer(&self, omega: f64) -> Option<DMat<Complex64>> {
        self.ss.freq_response(omega).ok()
    }
}

/// [`CtSolver`] over a conservative-law netlist: TDF inputs drive
/// designated external source slots, TDF outputs read node voltages.
pub struct NetlistCtSolver {
    solver: TransientSolver,
    inputs: Vec<InputId>,
    outputs: Vec<NodeId>,
    circuit: Circuit,
    op_outputs: Vec<NodeId>,
    last_t: f64,
}

impl NetlistCtSolver {
    /// Wraps a circuit. `inputs` are the external-input slots driven by
    /// the TDF input samples (in order); `outputs` the nodes whose
    /// voltages become TDF outputs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Lint`] when the netlist's structural lint
    /// (floating nodes, voltage-source loops, current-source cutsets,
    /// structural singularity — see the `MNA###` code registry) finds an
    /// error-severity diagnostic, and otherwise propagates
    /// transient-solver construction failures. Use
    /// [`NetlistCtSolver::new_with_policy`] to relax the gate.
    pub fn new(
        circuit: &Circuit,
        method: IntegrationMethod,
        inputs: Vec<InputId>,
        outputs: Vec<NodeId>,
    ) -> Result<Self, CoreError> {
        Self::new_with_policy(
            circuit,
            method,
            inputs,
            outputs,
            &ams_lint::LintPolicy::default(),
        )
    }

    /// [`NetlistCtSolver::new`] with an explicit static-analysis policy
    /// (e.g. [`ams_lint::LintPolicy::allow_all`] to accept a netlist the
    /// structural lint rejects).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Lint`] for diagnostics the policy denies;
    /// otherwise propagates transient-solver construction failures.
    pub fn new_with_policy(
        circuit: &Circuit,
        method: IntegrationMethod,
        inputs: Vec<InputId>,
        outputs: Vec<NodeId>,
        policy: &ams_lint::LintPolicy,
    ) -> Result<Self, CoreError> {
        let report = ams_lint::lint_circuit("netlist", circuit);
        if !policy.denied(&report).is_empty() {
            return Err(CoreError::Lint(report));
        }
        let solver =
            TransientSolver::new(circuit, method).map_err(|e| CoreError::solver("netlist", e))?;
        Ok(NetlistCtSolver {
            solver,
            inputs,
            op_outputs: outputs.clone(),
            outputs,
            circuit: circuit.clone(),
            last_t: 0.0,
        })
    }

    /// Access to the underlying transient solver (e.g. to flip switches
    /// from a TDF module).
    pub fn transient_mut(&mut self) -> &mut TransientSolver {
        &mut self.solver
    }
}

impl CtSolver for NetlistCtSolver {
    fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    fn initialize(&mut self, dc_inputs: &[f64]) -> Result<(), CoreError> {
        for (slot, &v) in self.inputs.iter().zip(dc_inputs) {
            self.solver.set_input(*slot, v);
        }
        self.solver
            .initialize_dc()
            .map_err(|e| CoreError::solver("netlist", e))?;
        self.last_t = 0.0;
        Ok(())
    }

    fn advance_to(&mut self, t: f64, inputs: &[f64], outputs: &mut [f64]) -> Result<(), CoreError> {
        let h = t - self.last_t;
        if h <= 0.0 {
            return Err(CoreError::invalid(format!(
                "netlist solver asked to advance backwards ({} → {t})",
                self.last_t
            )));
        }
        for (slot, &v) in self.inputs.iter().zip(inputs) {
            self.solver.set_input(*slot, v);
        }
        self.solver
            .step(h)
            .map_err(|e| CoreError::solver("netlist", e))?;
        for (o, node) in outputs.iter_mut().zip(&self.outputs) {
            *o = self.solver.voltage(*node);
        }
        self.last_t = t;
        Ok(())
    }

    fn newton_stats(&self) -> Option<(u64, u64)> {
        let st = self.solver.stats();
        Some((st.newton_iterations, st.factorizations))
    }

    fn solve_stats(&self) -> Option<ams_math::SolveStats> {
        Some(self.solver.stats().solve)
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.solver.set_tracing(enabled);
    }

    fn take_trace_events(&mut self) -> Vec<ams_scope::TraceEvent> {
        self.solver.take_trace_events()
    }

    fn ac_transfer(&self, omega: f64) -> Option<DMat<Complex64>> {
        // Per-input AC transfer: activate each external-input source in
        // turn with unit AC magnitude and read the output nodes. The
        // circuit is linearized at its DC operating point with all
        // external inputs at zero.
        let op = self.circuit.dc_operating_point().ok()?;
        let f = omega / (2.0 * std::f64::consts::PI);
        let mut m = DMat::zeros(self.op_outputs.len(), self.inputs.len());
        for (j, &input) in self.inputs.iter().enumerate() {
            let mut ckt = self.circuit.clone();
            ckt.clear_ac_magnitudes();
            if ckt.set_external_ac_magnitude(input, 1.0) == 0 {
                continue; // slot drives nothing: column stays zero
            }
            let sols = ckt.ac_sweep(&op, &[f]).ok()?;
            let sol = sols.first()?;
            for (i, node) in self.op_outputs.iter().enumerate() {
                m[(i, j)] = sol.voltage(*node);
            }
        }
        Some(m)
    }
}

impl std::fmt::Debug for NetlistCtSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistCtSolver")
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

/// Embeds any [`CtSolver`] as a rate-1 TDF module: one solver step per
/// TDF sample, inputs sampled from TDF signals, outputs written back.
pub struct CtModule {
    name: String,
    solver: Box<dyn CtSolver>,
    inputs: Vec<TdfIn>,
    outputs: Vec<TdfOut>,
    timestep: Option<SimTime>,
    in_buf: Vec<f64>,
    out_buf: Vec<f64>,
    initialized: bool,
}

impl CtModule {
    /// Creates the embedding. `timestep` may be `None` if another module
    /// in the cluster declares one.
    ///
    /// # Panics
    ///
    /// Panics if the port counts do not match the solver's channel
    /// counts.
    pub fn new(
        name: impl Into<String>,
        solver: Box<dyn CtSolver>,
        inputs: Vec<TdfIn>,
        outputs: Vec<TdfOut>,
        timestep: Option<SimTime>,
    ) -> Self {
        assert_eq!(
            inputs.len(),
            solver.num_inputs(),
            "input port count must match solver inputs"
        );
        assert_eq!(
            outputs.len(),
            solver.num_outputs(),
            "output port count must match solver outputs"
        );
        let n_in = inputs.len();
        let n_out = outputs.len();
        CtModule {
            name: name.into(),
            solver,
            inputs,
            outputs,
            timestep,
            in_buf: vec![0.0; n_in],
            out_buf: vec![0.0; n_out],
            initialized: false,
        }
    }
}

impl TdfModule for CtModule {
    fn solver_stats(&self) -> Option<(u64, u64)> {
        self.solver.newton_stats()
    }

    fn solve_stats(&self) -> Option<ams_math::SolveStats> {
        self.solver.solve_stats()
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.solver.set_tracing(enabled);
    }

    fn take_trace_events(&mut self) -> Vec<ams_scope::TraceEvent> {
        self.solver.take_trace_events()
    }

    fn setup(&mut self, cfg: &mut TdfSetup) {
        for &p in &self.inputs {
            cfg.input(p);
        }
        for &p in &self.outputs {
            cfg.output(p);
        }
        if let Some(ts) = self.timestep {
            cfg.set_timestep(ts);
        }
    }

    fn initialize(&mut self, _init: &mut TdfInit<'_>) -> Result<(), CoreError> {
        let zeros = vec![0.0; self.inputs.len()];
        self.solver
            .initialize(&zeros)
            .map_err(|e| CoreError::solver(&self.name, e))?;
        self.initialized = true;
        Ok(())
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        for (slot, &p) in self.inputs.iter().enumerate() {
            self.in_buf[slot] = io.read1(p);
        }
        // Advance to the END of this sample interval so the output at
        // sample k reflects the input held over [t_k, t_k + h).
        let t_next = io.time() + io.timestep();
        self.solver
            .advance_to(t_next, &self.in_buf, &mut self.out_buf)
            .map_err(|e| CoreError::solver(&self.name, e))?;
        for (slot, &p) in self.outputs.iter().enumerate() {
            io.write1(p, self.out_buf[slot]);
        }
        Ok(())
    }

    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        if let Some(h) = self.solver.ac_transfer(ac.omega()) {
            for (i, &out) in self.outputs.iter().enumerate() {
                for (j, &inp) in self.inputs.iter().enumerate() {
                    ac.set_gain(inp, out, h[(i, j)]);
                }
            }
        }
    }

    fn reset(&mut self) {
        if self.initialized {
            let zeros = vec![0.0; self.inputs.len()];
            // Initialization succeeded during elaboration; re-running it
            // with the same inputs re-establishes the quiescent state.
            self.solver
                .initialize(&zeros)
                .expect("solver re-initialization after a successful initialize");
        }
    }
}

impl std::fmt::Debug for CtModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtModule")
            .field("name", &self.name)
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::TdfGraph;
    use crate::module::{TdfIo, TdfModule, TdfSetup};
    use ams_lti::TransferFunction;

    struct Step {
        out: TdfOut,
        level: f64,
        ts: SimTime,
    }
    impl TdfModule for Step {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.output(self.out);
            cfg.set_timestep(self.ts);
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            io.write1(self.out, self.level);
            Ok(())
        }
        fn ac_processing(&mut self, ac: &mut crate::module::AcIo<'_>) {
            ac.set_source(self.out, Complex64::ONE);
        }
    }

    #[test]
    fn lti_solver_in_cluster_tracks_rc_response() {
        let tf = TransferFunction::low_pass1(1000.0).unwrap(); // τ = 1 ms
        let solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Zoh).unwrap();

        let mut g = TdfGraph::new("rc");
        let u = g.signal("u");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "step",
            Step {
                out: u.writer(),
                level: 1.0,
                ts: SimTime::from_us(10),
            },
        );
        g.add_module(
            "rc",
            CtModule::new(
                "rc",
                Box::new(solver),
                vec![u.reader()],
                vec![y.writer()],
                None,
            ),
        );
        let mut c = g.elaborate().unwrap();
        // 1 τ = 1 ms = 100 iterations of 10 µs.
        c.run_standalone(100).unwrap();
        let last = *probe.values().last().unwrap();
        let expected = 1.0 - (-1.0f64).exp();
        assert!((last - expected).abs() < 1e-3, "{last} vs {expected}");
    }

    #[test]
    fn lti_ac_transfer_through_cluster() {
        let w0 = 2.0 * std::f64::consts::PI * 100.0;
        let tf = TransferFunction::low_pass1(w0).unwrap();
        let solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Bilinear).unwrap();
        let mut g = TdfGraph::new("acrc");
        let u = g.signal("u");
        let y = g.signal("y");
        g.add_module(
            "src",
            Step {
                out: u.writer(),
                level: 0.0,
                ts: SimTime::from_us(10),
            },
        );
        g.add_module(
            "rc",
            CtModule::new(
                "rc",
                Box::new(solver),
                vec![u.reader()],
                vec![y.writer()],
                None,
            ),
        );
        let mut c = g.elaborate().unwrap();
        let ac = c.ac_analysis(&[100.0]).unwrap();
        let h = ac.response(y)[0];
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn netlist_solver_in_cluster() {
        // RC netlist driven by a TDF step through an external input.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        let inp = ckt.external_input();
        ckt.voltage_source_wave("V1", a, Circuit::GROUND, ams_net::Waveform::External(inp))
            .unwrap();
        ckt.resistor("R1", a, out, 1e3).unwrap();
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-6).unwrap(); // τ = 1 ms
        let solver =
            NetlistCtSolver::new(&ckt, IntegrationMethod::Trapezoidal, vec![inp], vec![out])
                .unwrap();

        let mut g = TdfGraph::new("net");
        let u = g.signal("u");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "step",
            Step {
                out: u.writer(),
                level: 2.0,
                ts: SimTime::from_us(10),
            },
        );
        g.add_module(
            "ckt",
            CtModule::new(
                "ckt",
                Box::new(solver),
                vec![u.reader()],
                vec![y.writer()],
                None,
            ),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(500).unwrap(); // 5 ms = 5 τ
        let last = *probe.values().last().unwrap();
        assert!((last - 2.0).abs() < 0.02, "settled to {last}");
    }

    /// A hand-written "external" solver proving the O8 plug-in interface:
    /// a simple integrator implemented without any of the bundled crates.
    struct ExternalIntegrator {
        state: f64,
        last_t: f64,
    }
    impl CtSolver for ExternalIntegrator {
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn initialize(&mut self, _dc: &[f64]) -> Result<(), CoreError> {
            self.state = 0.0;
            self.last_t = 0.0;
            Ok(())
        }
        fn advance_to(
            &mut self,
            t: f64,
            inputs: &[f64],
            outputs: &mut [f64],
        ) -> Result<(), CoreError> {
            self.state += inputs[0] * (t - self.last_t);
            self.last_t = t;
            outputs[0] = self.state;
            Ok(())
        }
    }

    #[test]
    fn external_solver_plugs_in() {
        let mut g = TdfGraph::new("ext");
        let u = g.signal("u");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "one",
            Step {
                out: u.writer(),
                level: 1.0,
                ts: SimTime::from_ms(1),
            },
        );
        g.add_module(
            "int",
            CtModule::new(
                "int",
                Box::new(ExternalIntegrator {
                    state: 0.0,
                    last_t: 0.0,
                }),
                vec![u.reader()],
                vec![y.writer()],
                None,
            ),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(1000).unwrap(); // ∫1 dt over 1 s
        let last = *probe.values().last().unwrap();
        assert!((last - 1.0).abs() < 1e-9, "integral = {last}");
    }

    #[test]
    #[should_panic(expected = "port count")]
    fn mismatched_ports_panic() {
        let tf = TransferFunction::gain(1.0);
        let solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Zoh).unwrap();
        let _ = CtModule::new("bad", Box::new(solver), vec![], vec![], None);
    }
}
