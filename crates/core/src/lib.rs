//! SystemC-AMS core: the timed dataflow (TDF) model of computation and
//! the DE↔CT synchronization layer.
//!
//! This crate is the Rust realization of the primary contribution of
//! *"SystemC-AMS Requirements, Design Objectives and Rationale"*
//! (DATE 2003): analog/mixed-signal extensions layered on a SystemC-style
//! discrete-event kernel. It provides
//!
//! * [`TdfModule`] — the module lifecycle (`setup` → `initialize` →
//!   `processing` → optional `ac_processing`), the paper's "continuous
//!   behaviour encapsulated in static dataflow modules";
//! * [`TdfGraph`] / [`Cluster`] — signal-flow graphs, elaborated with
//!   exact balance-equation scheduling, timestep propagation and
//!   consistency checks (via `ams-sdf`);
//! * [`AmsSimulator`] — the synchronization layer: clusters run as DE
//!   processes at their period, converter ports ([`TdfGraph::from_de`],
//!   [`TdfGraph::to_de`]) exchange values with kernel signals;
//! * [`CtSolver`] — the open solver-coupling architecture (O8), with
//!   bundled [`LtiCtSolver`] (linear state-space) and [`NetlistCtSolver`]
//!   (conservative-law MNA) plug-ins and the [`CtModule`] embedding;
//! * [`Cluster::ac_analysis`] — small-signal frequency-domain analysis
//!   derived from the same module graph, including feedback loops.
//!
//! # Example
//!
//! A continuous RC filter embedded in a TDF cluster, driven from and
//! observed by the discrete-event world:
//!
//! ```
//! use ams_core::{AmsSimulator, CtModule, LtiCtSolver, TdfGraph};
//! use ams_kernel::SimTime;
//! use ams_lti::{Discretization, TransferFunction};
//!
//! # fn main() -> Result<(), ams_core::CoreError> {
//! let mut sim = AmsSimulator::new();
//! let de_in = sim.kernel_mut().signal("stimulus", 1.0f64);
//! let de_out = sim.kernel_mut().signal("filtered", 0.0f64);
//!
//! let mut g = TdfGraph::new("rc");
//! let u = g.from_de("u", de_in);
//! let y = g.signal("y");
//! let tf = TransferFunction::low_pass1(1000.0).map_err(|e| ams_core::CoreError::solver("tf", e))?;
//! let solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Zoh)?;
//! g.add_module(
//!     "rc",
//!     CtModule::new("rc", Box::new(solver), vec![u.reader()], vec![y.writer()],
//!                   Some(SimTime::from_us(10))),
//! );
//! g.to_de("y_conv", y, de_out);
//! sim.add_cluster(g)?;
//! sim.run_until(SimTime::from_ms(5))? ; // 5 τ
//! assert!((sim.kernel().peek(de_out) - 1.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod error;
mod module;
mod port;
pub mod shared;
mod sim;
mod solver;

pub use cluster::{
    Cluster, ClusterCheckpoint, ClusterStats, DeReadBinding, DeWriteBinding, ModuleId, TdfAcResult,
    TdfGraph, TdfProbe,
};
pub use error::CoreError;
pub use module::{AcIo, TdfInit, TdfIo, TdfModule, TdfSetup};
pub use port::{TdfIn, TdfOut, TdfSignal};
pub use shared::{SampleQueue, SampleSink, SampleSource, SharedSample};
pub use sim::{AmsSimulator, ClusterHandle};
pub use solver::{CtModule, CtSolver, LtiCtSolver, NetlistCtSolver};
