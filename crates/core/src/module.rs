//! The TDF module trait and its per-phase context objects.
//!
//! Mirrors the SystemC-AMS module lifecycle this paper seeded:
//! `setup` (attribute declaration) → `initialize` (delay samples, DC
//! state) → repeated `processing` (one firing) → optional
//! `ac_processing` (small-signal frequency-domain contribution derived
//! from the same module, §3 O3: "this should not require additional
//! language element").

use crate::port::{PortDecl, TdfIn, TdfOut, TdfSignal};
use ams_kernel::SimTime;
use ams_math::Complex64;
use std::collections::HashMap;

/// A timed-dataflow module: the paper's "continuous behaviour encapsulated
/// in static dataflow modules" (phase 1).
///
/// Implementors declare ports and (optionally) a timestep in
/// [`setup`](TdfModule::setup), then compute samples in
/// [`processing`](TdfModule::processing) each firing.
///
/// Modules are `Send`: an elaborated [`Cluster`](crate::Cluster) can be
/// handed to a worker thread of the parallel execution engine. Shared
/// observation state must therefore use `Arc<Mutex<…>>` (or the
/// primitives in [`crate::shared`]) rather than `Rc<RefCell<…>>`.
pub trait TdfModule: Send {
    /// Declares port rates/delays and (optionally) the module timestep.
    fn setup(&mut self, cfg: &mut TdfSetup);

    /// One-time initialization after scheduling: set initial delay-sample
    /// values, compute the DC state (the paper's consistent quiescent
    /// state). Default: nothing.
    ///
    /// # Errors
    ///
    /// Implementations may fail (e.g. a DC operating point does not
    /// converge); the error aborts elaboration.
    fn initialize(&mut self, _init: &mut TdfInit<'_>) -> Result<(), crate::CoreError> {
        Ok(())
    }

    /// One firing: read `rate` samples per input, write `rate` samples
    /// per output.
    ///
    /// # Errors
    ///
    /// Implementations may fail (e.g. an embedded Newton solve diverges);
    /// the error aborts the simulation run with context.
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), crate::CoreError>;

    /// Stamps this module's small-signal frequency-domain relation
    /// (`out = Σ gain·in + source`). Default: every output is 0 in AC.
    fn ac_processing(&mut self, _ac: &mut AcIo<'_>) {}

    /// Restores internal state to what it was right after
    /// [`initialize`](TdfModule::initialize), so the cluster can be
    /// re-run from `t = 0` (see [`Cluster::reset`](crate::Cluster::reset)).
    /// Default: nothing — correct for stateless modules; stateful ones
    /// should override.
    fn reset(&mut self) {}

    /// Appends the module's internal numeric state to `out`, for
    /// [`Cluster::save`](crate::Cluster::save) checkpoints. Paired with
    /// [`restore_state`](TdfModule::restore_state): restoring the saved
    /// values must put the module back in the captured state, so a
    /// continued run is indistinguishable from an uninterrupted one.
    /// Default: nothing — correct for stateless modules (including every
    /// pure converter); stateful ones should override both hooks, just
    /// as they override [`reset`](TdfModule::reset).
    fn save_state(&self, out: &mut Vec<f64>) {
        let _ = out;
    }

    /// Rewinds internal state to values previously captured by
    /// [`save_state`](TdfModule::save_state) on an identically
    /// constructed module. Default: nothing.
    fn restore_state(&mut self, state: &[f64]) {
        let _ = state;
    }

    /// Counters `(newton_iterations, factorizations)` of an embedded
    /// numeric solver, if this module wraps one. The default (`None`)
    /// marks a module with no solver; [`crate::CtModule`] forwards its
    /// plug-in solver's counters so clusters can aggregate them.
    fn solver_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Linear-solver counters of an embedded numeric solver (sparse
    /// symbolic analyses, numeric refactorizations, pattern sizes,
    /// reused factorizations), if this module wraps one. Default:
    /// `None`.
    fn solve_stats(&self) -> Option<ams_math::SolveStats> {
        None
    }

    /// Enables or disables span tracing on an embedded numeric solver.
    /// The default is a no-op — correct for modules without one;
    /// [`crate::CtModule`] forwards to its plug-in solver.
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Drains trace events recorded by an embedded solver since the
    /// last call. Default: none.
    fn take_trace_events(&mut self) -> Vec<ams_scope::TraceEvent> {
        Vec::new()
    }
}

/// Port/timestep declaration context passed to [`TdfModule::setup`].
#[derive(Debug, Default)]
pub struct TdfSetup {
    pub(crate) inputs: Vec<PortDecl>,
    pub(crate) outputs: Vec<PortDecl>,
    pub(crate) timestep: Option<SimTime>,
}

impl TdfSetup {
    /// Declares an input port with rate 1 and no delay.
    pub fn input(&mut self, port: TdfIn) {
        self.input_with(port, 1, 0);
    }

    /// Declares an input port with an explicit rate and delay (delay
    /// samples break feedback loops; their values are set in
    /// [`TdfModule::initialize`]).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn input_with(&mut self, port: TdfIn, rate: u64, delay: u64) {
        assert!(rate > 0, "port rate must be at least 1");
        self.inputs.push(PortDecl {
            signal: port.signal,
            rate,
            delay,
        });
    }

    /// Declares an output port with rate 1.
    pub fn output(&mut self, port: TdfOut) {
        self.output_with(port, 1);
    }

    /// Declares an output port with an explicit rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn output_with(&mut self, port: TdfOut, rate: u64) {
        assert!(rate > 0, "port rate must be at least 1");
        self.outputs.push(PortDecl {
            signal: port.signal,
            rate,
            delay: 0,
        });
    }

    /// Declares this module's firing period (timestep). At least one
    /// module per cluster must declare one; all declarations must agree
    /// after rate propagation.
    pub fn set_timestep(&mut self, step: SimTime) {
        self.timestep = Some(step);
    }
}

/// Initialization context: set values of input-port delay samples.
#[derive(Debug)]
pub struct TdfInit<'a> {
    pub(crate) module_timestep: SimTime,
    /// (signal, delay slot) → initial value, collected for the runtime.
    pub(crate) initial_values: &'a mut HashMap<(TdfSignal, u64), f64>,
    pub(crate) declared_inputs: &'a [PortDecl],
    pub(crate) module_name: &'a str,
}

impl TdfInit<'_> {
    /// This module's resolved firing period.
    pub fn timestep(&self) -> SimTime {
        self.module_timestep
    }

    /// Sets the value of the `slot`-th delay sample of an input port
    /// (defaults to 0.0).
    ///
    /// # Panics
    ///
    /// Panics if the port was not declared with at least `slot + 1`
    /// delay samples.
    pub fn set_initial(&mut self, port: TdfIn, slot: u64, value: f64) {
        let decl = self
            .declared_inputs
            .iter()
            .find(|d| d.signal == port.signal)
            .unwrap_or_else(|| {
                panic!(
                    "module '{}' set_initial on undeclared input {}",
                    self.module_name, port.signal
                )
            });
        assert!(
            slot < decl.delay,
            "module '{}': initial slot {slot} exceeds declared delay {}",
            self.module_name,
            decl.delay
        );
        self.initial_values.insert((port.signal, slot), value);
    }
}

/// Sample storage for one TDF signal: a window of the absolute sample
/// stream produced by its writer.
#[derive(Debug, Clone, Default)]
pub(crate) struct SignalBuf {
    /// Samples, with `data[0]` holding absolute stream index `base`.
    pub data: Vec<f64>,
    /// Absolute stream index of `data[0]`.
    pub base: i64,
}

impl SignalBuf {
    pub fn get(&self, idx: i64) -> Option<f64> {
        if idx < self.base {
            return None;
        }
        self.data.get((idx - self.base) as usize).copied()
    }

    pub fn set(&mut self, idx: i64, v: f64) {
        debug_assert!(idx >= self.base, "writing below the trimmed window");
        let pos = (idx - self.base) as usize;
        if pos >= self.data.len() {
            self.data.resize(pos + 1, 0.0);
        }
        self.data[pos] = v;
    }

    /// Drops samples with stream index below `keep_from`.
    pub fn trim(&mut self, keep_from: i64) {
        if keep_from <= self.base {
            return;
        }
        let drop = ((keep_from - self.base) as usize).min(self.data.len());
        self.data.drain(..drop);
        self.base = keep_from;
    }
}

/// Runtime state of one input port.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InPortRt {
    pub rate: u64,
    pub delay: u64,
    /// Tokens consumed so far (absolute).
    pub counter: i64,
}

/// Runtime state of one output port.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutPortRt {
    pub rate: u64,
    /// Samples produced so far (absolute stream index of the next write).
    pub counter: i64,
}

/// Per-firing sample I/O passed to [`TdfModule::processing`].
///
/// Reads and writes are indexed within the firing's rate window:
/// `read(port, k)` returns the `k`-th of `rate` samples consumed this
/// firing.
pub struct TdfIo<'a> {
    pub(crate) module_name: &'a str,
    /// Absolute time of this firing's first sample, in seconds.
    pub(crate) t0: f64,
    /// The same instant as an exact kernel time (drift-free).
    pub(crate) t0_exact: SimTime,
    /// Module firing period in seconds.
    pub(crate) timestep: f64,
    pub(crate) in_ports: &'a HashMap<TdfSignal, InPortRt>,
    pub(crate) out_ports: &'a HashMap<TdfSignal, OutPortRt>,
    pub(crate) bufs: &'a mut [SignalBuf],
    pub(crate) initial: &'a HashMap<(TdfSignal, u64), f64>,
}

impl TdfIo<'_> {
    /// Time of this firing's first sample, in seconds.
    pub fn time(&self) -> f64 {
        self.t0
    }

    /// The same instant as an exact (femtosecond) kernel time.
    pub fn time_exact(&self) -> SimTime {
        self.t0_exact
    }

    /// This module's firing period, in seconds.
    pub fn timestep(&self) -> f64 {
        self.timestep
    }

    /// Reads the `k`-th input sample of this firing from `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port was not declared or `k` exceeds its rate.
    pub fn read(&mut self, port: TdfIn, k: u64) -> f64 {
        let ip = self.in_ports.get(&port.signal).unwrap_or_else(|| {
            panic!(
                "module '{}' read undeclared input {}",
                self.module_name, port.signal
            )
        });
        assert!(
            k < ip.rate,
            "module '{}': read index {k} exceeds rate {}",
            self.module_name,
            ip.rate
        );
        let idx = ip.counter + k as i64 - ip.delay as i64;
        if idx < 0 {
            // Delay slot: slot 0 is consumed first.
            let slot = (ip.delay as i64 + idx) as u64;
            self.initial
                .get(&(port.signal, slot))
                .copied()
                .unwrap_or(0.0)
        } else {
            self.bufs[port.signal.0].get(idx).unwrap_or_else(|| {
                panic!(
                    "module '{}': sample {idx} of {} unavailable (scheduler invariant violated)",
                    self.module_name, port.signal
                )
            })
        }
    }

    /// Reads the single sample of a rate-1 input port.
    pub fn read1(&mut self, port: TdfIn) -> f64 {
        self.read(port, 0)
    }

    /// Writes the `k`-th output sample of this firing to `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port was not declared or `k` exceeds its rate.
    pub fn write(&mut self, port: TdfOut, k: u64, value: f64) {
        let op = self.out_ports.get(&port.signal).unwrap_or_else(|| {
            panic!(
                "module '{}' wrote undeclared output {}",
                self.module_name, port.signal
            )
        });
        assert!(
            k < op.rate,
            "module '{}': write index {k} exceeds rate {}",
            self.module_name,
            op.rate
        );
        let idx = op.counter + k as i64;
        self.bufs[port.signal.0].set(idx, value);
    }

    /// Writes the single sample of a rate-1 output port.
    pub fn write1(&mut self, port: TdfOut, value: f64) {
        self.write(port, 0, value);
    }
}

impl std::fmt::Debug for TdfIo<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdfIo")
            .field("module", &self.module_name)
            .field("t0", &self.t0)
            .field("timestep", &self.timestep)
            .finish()
    }
}

/// AC (small-signal frequency-domain) stamping context.
///
/// Each TDF signal is one complex unknown; a module contributes the
/// linear relation `X(out) = Σ gain·X(in) + source` for each of its
/// outputs. Unstamped outputs default to 0.
#[derive(Debug)]
pub struct AcIo<'a> {
    pub(crate) omega: f64,
    pub(crate) module_name: &'a str,
    pub(crate) declared_inputs: &'a [TdfSignal],
    pub(crate) declared_outputs: &'a [TdfSignal],
    /// (out signal, in signal, gain) triplets.
    pub(crate) gains: Vec<(TdfSignal, TdfSignal, Complex64)>,
    /// (out signal, source) pairs.
    pub(crate) sources: Vec<(TdfSignal, Complex64)>,
}

impl AcIo<'_> {
    /// The analysis angular frequency ω in rad/s.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The analysis frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.omega / (2.0 * std::f64::consts::PI)
    }

    /// Stamps `X(out) += gain · X(in)`.
    ///
    /// # Panics
    ///
    /// Panics if the ports were not declared by this module.
    pub fn set_gain(&mut self, input: TdfIn, output: TdfOut, gain: Complex64) {
        assert!(
            self.declared_inputs.contains(&input.signal),
            "module '{}' ac-stamped undeclared input {}",
            self.module_name,
            input.signal
        );
        assert!(
            self.declared_outputs.contains(&output.signal),
            "module '{}' ac-stamped undeclared output {}",
            self.module_name,
            output.signal
        );
        self.gains.push((output.signal, input.signal, gain));
    }

    /// Stamps an independent AC source on an output (the stimulus
    /// designation).
    ///
    /// # Panics
    ///
    /// Panics if the port was not declared by this module.
    pub fn set_source(&mut self, output: TdfOut, value: Complex64) {
        assert!(
            self.declared_outputs.contains(&output.signal),
            "module '{}' ac-stamped undeclared output {}",
            self.module_name,
            output.signal
        );
        self.sources.push((output.signal, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_collects_declarations() {
        let s0 = TdfSignal(0);
        let s1 = TdfSignal(1);
        let mut cfg = TdfSetup::default();
        cfg.input_with(s0.reader(), 2, 1);
        cfg.output(s1.writer());
        cfg.set_timestep(SimTime::from_us(5));
        assert_eq!(cfg.inputs.len(), 1);
        assert_eq!(cfg.inputs[0].rate, 2);
        assert_eq!(cfg.inputs[0].delay, 1);
        assert_eq!(cfg.outputs[0].rate, 1);
        assert_eq!(cfg.timestep, Some(SimTime::from_us(5)));
    }

    #[test]
    #[should_panic(expected = "rate must be at least 1")]
    fn zero_rate_panics() {
        let mut cfg = TdfSetup::default();
        cfg.input_with(TdfSignal(0).reader(), 0, 0);
    }

    #[test]
    fn signal_buf_window() {
        let mut b = SignalBuf::default();
        b.set(0, 1.0);
        b.set(3, 4.0);
        assert_eq!(b.get(0), Some(1.0));
        assert_eq!(b.get(1), Some(0.0)); // gap filled with zeros
        assert_eq!(b.get(3), Some(4.0));
        assert_eq!(b.get(4), None);
        b.trim(2);
        assert_eq!(b.get(1), None);
        assert_eq!(b.get(3), Some(4.0));
        b.set(5, 6.0);
        assert_eq!(b.get(5), Some(6.0));
    }

    #[test]
    fn io_reads_delay_slots_then_stream() {
        let sig = TdfSignal(0);
        let mut bufs = vec![SignalBuf::default()];
        bufs[0].set(0, 10.0);
        let mut in_ports = HashMap::new();
        in_ports.insert(
            sig,
            InPortRt {
                rate: 2,
                delay: 1,
                counter: 0,
            },
        );
        let out_ports = HashMap::new();
        let mut initial = HashMap::new();
        initial.insert((sig, 0u64), 42.0);
        let mut io = TdfIo {
            module_name: "m",
            t0: 0.0,
            t0_exact: SimTime::ZERO,
            timestep: 1e-6,
            in_ports: &in_ports,
            out_ports: &out_ports,
            bufs: &mut bufs,
            initial: &initial,
        };
        // k=0 → stream index −1 → delay slot 0 = 42; k=1 → stream 0 = 10.
        assert_eq!(io.read(sig.reader(), 0), 42.0);
        assert_eq!(io.read(sig.reader(), 1), 10.0);
    }

    #[test]
    #[should_panic(expected = "undeclared input")]
    fn undeclared_read_panics() {
        let in_ports = HashMap::new();
        let out_ports = HashMap::new();
        let initial = HashMap::new();
        let mut bufs: Vec<SignalBuf> = vec![];
        let mut io = TdfIo {
            module_name: "m",
            t0: 0.0,
            t0_exact: SimTime::ZERO,
            timestep: 1.0,
            in_ports: &in_ports,
            out_ports: &out_ports,
            bufs: &mut bufs,
            initial: &initial,
        };
        let _ = io.read1(TdfSignal(0).reader());
    }

    #[test]
    fn ac_io_records_stamps() {
        let s_in = TdfSignal(0);
        let s_out = TdfSignal(1);
        let ins = vec![s_in];
        let outs = vec![s_out];
        let mut ac = AcIo {
            omega: 2.0 * std::f64::consts::PI * 50.0,
            module_name: "g",
            declared_inputs: &ins,
            declared_outputs: &outs,
            gains: Vec::new(),
            sources: Vec::new(),
        };
        assert!((ac.freq_hz() - 50.0).abs() < 1e-9);
        ac.set_gain(s_in.reader(), s_out.writer(), Complex64::from_real(2.0));
        ac.set_source(s_out.writer(), Complex64::ONE);
        assert_eq!(ac.gains.len(), 1);
        assert_eq!(ac.sources.len(), 1);
    }

    #[test]
    #[should_panic(expected = "undeclared input")]
    fn ac_undeclared_port_panics() {
        let outs = vec![TdfSignal(1)];
        let mut ac = AcIo {
            omega: 1.0,
            module_name: "g",
            declared_inputs: &[],
            declared_outputs: &outs,
            gains: Vec::new(),
            sources: Vec::new(),
        };
        ac.set_gain(TdfSignal(5).reader(), TdfSignal(1).writer(), Complex64::ONE);
    }
}
