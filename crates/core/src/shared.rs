//! Thread-safe converter-port primitives.
//!
//! The original converter ports ([`crate::TdfGraph::from_de`] /
//! [`crate::TdfGraph::to_de`]) coupled clusters to the DE kernel through
//! `Rc<Cell<…>>` plumbing, which pinned every cluster to one thread. The
//! parallel execution engine (`ams-exec`) runs clusters on worker
//! threads, so the boundary types here are `Send + Sync`:
//!
//! * [`SharedSample`] — an atomic, lock-free `f64` cell (the DE→TDF
//!   latch: the synchronization layer stores the kernel signal's value,
//!   the cluster samples it at activation);
//! * [`SampleQueue`] — a mutex-guarded queue of `(time, value)` samples
//!   (the TDF→DE direction: the cluster enqueues each sample with its
//!   exact time, a kernel process replays them);
//! * [`SampleSource`] / [`SampleSink`] — object-safe pull/push
//!   interfaces so external transports (e.g. the lock-free SPSC rings in
//!   `ams-exec`) can feed or drain a cluster without going through the
//!   kernel at all.

use ams_kernel::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A lock-free shared `f64` cell (bit-cast through `AtomicU64`).
///
/// Clones share storage. Reads and writes are single atomic operations —
/// a reader never observes a torn value.
#[derive(Debug, Clone, Default)]
pub struct SharedSample {
    bits: Arc<AtomicU64>,
}

impl SharedSample {
    /// Creates a cell holding `value`.
    pub fn new(value: f64) -> Self {
        SharedSample {
            bits: Arc::new(AtomicU64::new(value.to_bits())),
        }
    }

    /// Reads the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Release);
    }
}

/// A shared queue of timestamped samples crossing the TDF→DE boundary.
pub type SampleQueue = Arc<Mutex<VecDeque<(SimTime, f64)>>>;

/// Creates an empty [`SampleQueue`].
pub fn sample_queue() -> SampleQueue {
    Arc::new(Mutex::new(VecDeque::new()))
}

/// A pull-style sample input: one value per call, consumed by a
/// converter module at every firing.
///
/// Implemented by [`SharedSample`] (latest-value latch) and by the SPSC
/// ring consumers in `ams-exec` (FIFO semantics).
pub trait SampleSource: Send {
    /// Produces the next input sample.
    fn pull(&mut self) -> f64;
}

impl SampleSource for SharedSample {
    fn pull(&mut self) -> f64 {
        self.get()
    }
}

/// A push-style sample output: receives every sample of a signal with
/// its exact time, in order.
///
/// Implemented by the SPSC ring producers in `ams-exec`; a
/// [`SampleQueue`] wrapper is provided for kernel-side replay.
pub trait SampleSink: Send {
    /// Consumes one output sample.
    fn push(&mut self, t: SimTime, value: f64);
}

impl SampleSink for SampleQueue {
    fn push(&mut self, t: SimTime, value: f64) {
        self.lock()
            .expect("sample queue poisoned")
            .push_back((t, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_sample_roundtrip() {
        let cell = SharedSample::new(1.5);
        assert_eq!(cell.get(), 1.5);
        cell.set(-2.25);
        assert_eq!(cell.get(), -2.25);
        let clone = cell.clone();
        clone.set(7.0);
        assert_eq!(cell.get(), 7.0);
    }

    #[test]
    fn shared_sample_is_exact_across_threads() {
        let cell = SharedSample::new(0.0);
        let writer = cell.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..10_000 {
                writer.set(i as f64);
            }
        });
        // Any observed value must be one that was actually written.
        for _ in 0..10_000 {
            let v = cell.get();
            assert_eq!(v, v.trunc());
            assert!((0.0..10_000.0).contains(&v));
        }
        handle.join().unwrap();
    }

    #[test]
    fn sample_queue_sink_preserves_order() {
        let mut q = sample_queue();
        q.push(SimTime::from_us(1), 1.0);
        q.push(SimTime::from_us(2), 2.0);
        let drained: Vec<_> = q.lock().unwrap().drain(..).collect();
        assert_eq!(
            drained,
            vec![(SimTime::from_us(1), 1.0), (SimTime::from_us(2), 2.0)]
        );
    }
}
