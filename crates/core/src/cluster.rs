//! TDF cluster construction, elaboration and execution.
//!
//! A [`TdfGraph`] is the user-facing builder; [`TdfGraph::elaborate`]
//! performs the analysis the paper prescribes for the SDF↔CT coupling —
//! balance-equation scheduling (via `ams-sdf`), timestep propagation and
//! consistency checking, buffer sizing — and produces a [`Cluster`], a
//! self-contained executable that runs one schedule iteration per cluster
//! period. The synchronization layer in [`crate::sim`] drives clusters
//! from the DE kernel; [`Cluster::ac_analysis`] derives the small-signal
//! frequency-domain model from the very same module graph.

use crate::module::{AcIo, InPortRt, OutPortRt, SignalBuf, TdfInit, TdfIo, TdfModule, TdfSetup};
use crate::port::{TdfIn, TdfSignal};
use crate::shared::{sample_queue, SampleQueue, SampleSink, SampleSource, SharedSample};
use crate::CoreError;
use ams_kernel::{Signal, SimTime};
use ams_math::{Complex64, DMat, DVec, Lu};
use ams_monitor::MonitorBank;
use ams_scope::{SpanKind, TraceEvent, Tracer};
use ams_sdf::{schedule as sdf_schedule, SdfGraph};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identifier of a module within one graph/cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(pub(crate) usize);

/// A recorded waveform handle: clones share the same storage, so the
/// probe stays readable after the graph is consumed by elaboration —
/// including from another thread while a worker runs the cluster.
#[derive(Debug, Clone, Default)]
pub struct TdfProbe {
    data: Arc<Mutex<Vec<(f64, f64)>>>,
}

impl TdfProbe {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(f64, f64)>> {
        self.data.lock().expect("probe storage poisoned")
    }

    /// All recorded `(time_seconds, value)` samples so far.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        self.lock().clone()
    }

    /// Just the sample values.
    pub fn values(&self) -> Vec<f64> {
        self.lock().iter().map(|&(_, v)| v).collect()
    }

    /// Just the sample times, in seconds.
    pub fn times(&self) -> Vec<f64> {
        self.lock().iter().map(|&(t, _)| t).collect()
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Returns `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// Input converter: pulls one sample per firing from a [`SampleSource`]
/// (the DE latch, or an external transport such as an SPSC ring).
struct SourceInModule {
    out: crate::port::TdfOut,
    source: Box<dyn SampleSource>,
}

impl TdfModule for SourceInModule {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = self.source.pull();
        io.write1(self.out, v);
        Ok(())
    }
}

/// Output converter: pushes each sample with its exact time into a
/// [`SampleSink`] (a kernel-replayed queue, or an external transport).
struct SinkOutModule {
    inp: TdfIn,
    sink: Box<dyn SampleSink>,
}

impl TdfModule for SinkOutModule {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = io.read1(self.inp);
        self.sink.push(io.time_exact(), v);
        Ok(())
    }
}

/// A DE→TDF converter binding: the kernel signal and the shared cell its
/// value is sampled into at each cluster activation.
pub type DeReadBinding = (Signal<f64>, SharedSample);
/// A TDF→DE converter binding: the kernel signal and the timestamped
/// sample queue feeding it.
pub type DeWriteBinding = (Signal<f64>, SampleQueue);

/// A timed-dataflow graph under construction.
///
/// # Example
///
/// ```
/// use ams_core::{TdfGraph, TdfModule, TdfSetup, TdfIo, CoreError};
/// use ams_kernel::SimTime;
///
/// struct One { out: ams_core::TdfOut }
/// impl TdfModule for One {
///     fn setup(&mut self, cfg: &mut TdfSetup) {
///         cfg.output(self.out);
///         cfg.set_timestep(SimTime::from_us(1));
///     }
///     fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
///         io.write1(self.out, 1.0);
///         Ok(())
///     }
/// }
///
/// # fn main() -> Result<(), CoreError> {
/// let mut g = TdfGraph::new("demo");
/// let s = g.signal("ones");
/// let probe = g.probe(s);
/// g.add_module("one", One { out: s.writer() });
/// let mut cluster = g.elaborate()?;
/// cluster.run_iteration(SimTime::ZERO)?;
/// assert_eq!(probe.values(), vec![1.0]);
/// # Ok(())
/// # }
/// ```
pub struct TdfGraph {
    name: String,
    signal_names: Vec<String>,
    modules: Vec<(String, Box<dyn TdfModule>)>,
    de_reads: Vec<DeReadBinding>,
    de_writes: Vec<DeWriteBinding>,
    probes: Vec<(TdfSignal, TdfProbe)>,
}

impl TdfGraph {
    /// Creates an empty graph with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        TdfGraph {
            name: name.into(),
            signal_names: Vec::new(),
            modules: Vec::new(),
            de_reads: Vec::new(),
            de_writes: Vec::new(),
            probes: Vec::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a named TDF signal.
    pub fn signal(&mut self, name: impl Into<String>) -> TdfSignal {
        let id = TdfSignal(self.signal_names.len());
        self.signal_names.push(name.into());
        id
    }

    /// Adds a module to the graph.
    pub fn add_module(
        &mut self,
        name: impl Into<String>,
        module: impl TdfModule + 'static,
    ) -> ModuleId {
        let id = ModuleId(self.modules.len());
        self.modules.push((name.into(), Box::new(module)));
        id
    }

    /// Adds a DE→TDF converter: the returned signal carries the value of
    /// the kernel signal, sampled at each cluster activation (the
    /// standard TDF converter-port semantics).
    pub fn from_de(&mut self, name: impl Into<String>, de: Signal<f64>) -> TdfSignal {
        let cell = SharedSample::new(0.0);
        self.de_reads.push((de, cell.clone()));
        self.from_source(name, cell)
    }

    /// Adds a TDF→DE converter: each sample of `input` is written to the
    /// kernel signal at its exact sample time.
    pub fn to_de(&mut self, name: impl Into<String>, input: TdfSignal, de: Signal<f64>) {
        let queue = sample_queue();
        self.de_writes.push((de, queue.clone()));
        self.to_sink(name, input, queue);
    }

    /// Adds an input converter fed by an arbitrary [`SampleSource`]: the
    /// returned signal carries one pulled sample per firing. This is how
    /// external transports (e.g. the `ams-exec` SPSC rings crossing a
    /// partition boundary) inject samples without a kernel signal.
    pub fn from_source(
        &mut self,
        name: impl Into<String>,
        source: impl SampleSource + 'static,
    ) -> TdfSignal {
        let name = name.into();
        let sig = self.signal(format!("{name}.tdf"));
        self.add_module(
            name,
            SourceInModule {
                out: sig.writer(),
                source: Box::new(source),
            },
        );
        sig
    }

    /// Adds an output converter draining `input` into an arbitrary
    /// [`SampleSink`], one timestamped sample per firing — the outbound
    /// counterpart of [`TdfGraph::from_source`].
    pub fn to_sink(
        &mut self,
        name: impl Into<String>,
        input: TdfSignal,
        sink: impl SampleSink + 'static,
    ) {
        self.add_module(
            name,
            SinkOutModule {
                inp: input.reader(),
                sink: Box::new(sink),
            },
        );
    }

    /// Registers a probe recording every sample of `signal`.
    pub fn probe(&mut self, signal: TdfSignal) -> TdfProbe {
        let probe = TdfProbe::default();
        self.probes.push((signal, probe.clone()));
        probe
    }

    /// Number of DE converter bindings (reads plus writes) declared so
    /// far — the cross-MoC surface the converter-timing lint checks.
    pub fn de_binding_count(&self) -> usize {
        self.de_reads.len() + self.de_writes.len()
    }

    /// Runs the pre-elaboration static analyses over this graph and
    /// returns the diagnostics — rate consistency, delay-free cycles,
    /// writer uniqueness, dangling signals, timestep coherence (see the
    /// `ams-lint` code registry). The graph is not consumed; `setup` is
    /// invoked on each module to collect port declarations, exactly as
    /// [`TdfGraph::elaborate`] will do again later (`setup` is required
    /// to be a pure declaration pass).
    ///
    /// [`crate::AmsSimulator::add_cluster`] calls this automatically
    /// under its [`ams_lint::LintPolicy`]; calling it directly is useful
    /// for `--lint-only` tooling.
    pub fn lint(&mut self) -> ams_lint::LintReport {
        ams_lint::lint_tdf(&self.lint_model())
    }

    /// Builds the neutral IR the static analyses run on.
    pub(crate) fn lint_model(&mut self) -> ams_lint::TdfModel {
        let mut m = ams_lint::TdfModel::new(self.name.clone());
        let sigs: Vec<usize> = self
            .signal_names
            .iter()
            .map(|name| m.add_signal(name.clone()))
            .collect();
        for (midx, (name, module)) in self.modules.iter_mut().enumerate() {
            let mid = m.add_module(name.clone());
            debug_assert_eq!(mid, midx);
            let mut cfg = TdfSetup::default();
            module.setup(&mut cfg);
            for inp in &cfg.inputs {
                m.read(mid, sigs[inp.signal.0], inp.rate, inp.delay);
            }
            for out in &cfg.outputs {
                m.write(mid, sigs[out.signal.0], out.rate);
            }
            if let Some(ts) = cfg.timestep {
                m.set_timestep_fs(mid, ts.as_fs());
            }
        }
        for &(sig, _) in &self.probes {
            m.mark_probed(sigs[sig.0]);
        }
        m
    }

    /// Elaborates the graph: runs `setup`, checks writer uniqueness,
    /// solves the balance equations, builds the static schedule,
    /// propagates timesteps, and runs `initialize`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::MultipleWriters`] / [`CoreError::NoWriter`] on
    ///   malformed connectivity.
    /// * [`CoreError::Sdf`] for inconsistent rates or deadlock.
    /// * [`CoreError::NoTimestep`] / [`CoreError::InconsistentTimestep`] /
    ///   [`CoreError::InexactTimestep`] for timestep problems.
    pub fn elaborate(mut self) -> Result<Cluster, CoreError> {
        let n_sigs = self.signal_names.len();
        let n_mods = self.modules.len();

        // Phase 1: collect declarations.
        let mut setups = Vec::with_capacity(n_mods);
        for (_, module) in &mut self.modules {
            let mut cfg = TdfSetup::default();
            module.setup(&mut cfg);
            setups.push(cfg);
        }

        // Writer map.
        let mut writer: Vec<Option<(usize, u64)>> = vec![None; n_sigs];
        for (midx, cfg) in setups.iter().enumerate() {
            for out in &cfg.outputs {
                if writer[out.signal.0].is_some() {
                    return Err(CoreError::MultipleWriters {
                        signal: self.signal_names[out.signal.0].clone(),
                    });
                }
                writer[out.signal.0] = Some((midx, out.rate));
            }
        }
        // Reader validation.
        for cfg in &setups {
            for inp in &cfg.inputs {
                if writer[inp.signal.0].is_none() {
                    return Err(CoreError::NoWriter {
                        signal: self.signal_names[inp.signal.0].clone(),
                    });
                }
            }
        }
        for &(sig, _) in &self.probes {
            if writer[sig.0].is_none() {
                return Err(CoreError::NoWriter {
                    signal: self.signal_names[sig.0].clone(),
                });
            }
        }

        // Phase 2: dataflow analysis.
        let mut sdf = SdfGraph::new();
        let actors: Vec<_> = self
            .modules
            .iter()
            .map(|(name, _)| sdf.add_actor(name.clone()))
            .collect();
        for (midx, cfg) in setups.iter().enumerate() {
            for inp in &cfg.inputs {
                let (w_idx, w_rate) = writer[inp.signal.0].expect("validated above");
                sdf.connect(actors[w_idx], w_rate, actors[midx], inp.rate, inp.delay)?;
            }
        }
        let sched = sdf_schedule(&sdf)?;
        let q = sched.repetition_vector().to_vec();

        // Phase 3: timestep propagation.
        let mut period: Option<(SimTime, usize)> = None;
        for (midx, cfg) in setups.iter().enumerate() {
            if let Some(ts) = cfg.timestep {
                if ts.is_zero() {
                    return Err(CoreError::invalid(format!(
                        "module '{}' declared a zero timestep",
                        self.modules[midx].0
                    )));
                }
                let implied = ts * q[midx];
                match period {
                    None => period = Some((implied, midx)),
                    Some((t, _)) if t == implied => {}
                    Some((t, _)) => {
                        return Err(CoreError::InconsistentTimestep {
                            module: self.modules[midx].0.clone(),
                            implied_period: implied,
                            established_period: t,
                        })
                    }
                }
            }
        }
        let (period, _) = period.ok_or(CoreError::NoTimestep)?;
        let mut timesteps = Vec::with_capacity(n_mods);
        for (midx, &reps) in q.iter().enumerate() {
            if period.as_fs() % reps != 0 {
                return Err(CoreError::InexactTimestep {
                    module: self.modules[midx].0.clone(),
                    period,
                    repetitions: reps,
                });
            }
            timesteps.push(period / reps);
        }

        // Signal sample periods (seconds) for probe timestamps.
        let mut sig_period_secs = vec![0.0f64; n_sigs];
        for (s, w) in writer.iter().enumerate() {
            if let Some((w_idx, w_rate)) = w {
                sig_period_secs[s] = timesteps[*w_idx].to_seconds() / *w_rate as f64;
            }
        }

        // Phase 4: initialization.
        let mut initial = HashMap::new();
        for (midx, (name, module)) in self.modules.iter_mut().enumerate() {
            let mut init = TdfInit {
                module_timestep: timesteps[midx],
                initial_values: &mut initial,
                declared_inputs: &setups[midx].inputs,
                module_name: name,
            };
            module.initialize(&mut init)?;
        }

        // Phase 5: assemble the runtime.
        let mut modules_rt = Vec::with_capacity(n_mods);
        for (midx, (name, module)) in self.modules.into_iter().enumerate() {
            let mut in_ports = HashMap::new();
            let mut in_sigs = Vec::new();
            for d in &setups[midx].inputs {
                in_ports.insert(
                    d.signal,
                    InPortRt {
                        rate: d.rate,
                        delay: d.delay,
                        counter: 0,
                    },
                );
                in_sigs.push(d.signal);
            }
            let mut out_ports = HashMap::new();
            let mut out_sigs = Vec::new();
            for d in &setups[midx].outputs {
                out_ports.insert(
                    d.signal,
                    OutPortRt {
                        rate: d.rate,
                        counter: 0,
                    },
                );
                out_sigs.push(d.signal);
            }
            modules_rt.push(ModuleRt {
                name,
                module: Some(module),
                timestep: timesteps[midx],
                timestep_secs: timesteps[midx].to_seconds(),
                in_ports,
                out_ports,
                in_sigs,
                out_sigs,
                firing_in_iter: 0,
            });
        }

        let schedule_order: Vec<usize> = sched.firings().iter().map(|a| a.index()).collect();
        Ok(Cluster {
            name: self.name,
            signal_names: self.signal_names,
            period,
            modules: modules_rt,
            schedule_order,
            bufs: vec![SignalBuf::default(); n_sigs],
            initial,
            iteration: 0,
            sig_period_secs,
            stats: ClusterStats::default(),
            tracer: Tracer::off(),
            probes: self
                .probes
                .into_iter()
                .map(|(sig, probe)| ProbeRt {
                    signal: sig,
                    probe,
                    next_idx: 0,
                })
                .collect(),
            de_reads: self.de_reads,
            de_writes: self.de_writes,
            monitors: None,
        })
    }
}

impl std::fmt::Debug for TdfGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdfGraph")
            .field("name", &self.name)
            .field("signals", &self.signal_names.len())
            .field("modules", &self.modules.len())
            .finish()
    }
}

struct ModuleRt {
    name: String,
    module: Option<Box<dyn TdfModule>>,
    timestep: SimTime,
    timestep_secs: f64,
    in_ports: HashMap<TdfSignal, InPortRt>,
    out_ports: HashMap<TdfSignal, OutPortRt>,
    in_sigs: Vec<TdfSignal>,
    out_sigs: Vec<TdfSignal>,
    firing_in_iter: u64,
}

struct ProbeRt {
    signal: TdfSignal,
    probe: TdfProbe,
    next_idx: i64,
}

/// Execution counters of one cluster, surfaced to the instrumentation
/// layer in `ams-exec` (and to anyone else who asks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Completed schedule iterations.
    pub iterations: u64,
    /// Module firings across all iterations (converter modules included).
    pub firings: u64,
    /// Samples delivered to probes.
    pub probe_samples: u64,
    /// Newton iterations across all embedded numeric solvers.
    pub newton_iterations: u64,
    /// Matrix factorizations across all embedded numeric solvers.
    pub factorizations: u64,
    /// Linear-solver counters across all embedded numeric solvers
    /// (sparse symbolic/numeric split, pattern sizes, reused
    /// factorizations).
    pub solve: ams_math::SolveStats,
}

impl ClusterStats {
    /// Folds another counter set into this one (counts add; the gauges
    /// inside [`SolveStats`](ams_math::SolveStats) take the maximum).
    pub fn merge(&mut self, other: &ClusterStats) {
        self.iterations += other.iterations;
        self.firings += other.firings;
        self.probe_samples += other.probe_samples;
        self.newton_iterations += other.newton_iterations;
        self.factorizations += other.factorizations;
        self.solve.merge(&other.solve);
    }
}

/// An elaborated, executable TDF cluster.
pub struct Cluster {
    name: String,
    signal_names: Vec<String>,
    period: SimTime,
    modules: Vec<ModuleRt>,
    schedule_order: Vec<usize>,
    bufs: Vec<SignalBuf>,
    initial: HashMap<(TdfSignal, u64), f64>,
    iteration: u64,
    sig_period_secs: Vec<f64>,
    probes: Vec<ProbeRt>,
    stats: ClusterStats,
    tracer: Tracer,
    pub(crate) de_reads: Vec<DeReadBinding>,
    pub(crate) de_writes: Vec<DeWriteBinding>,
    /// Attached streaming assertion monitors (`None` = one branch per
    /// iteration, the same disabled-cost discipline as `tracer`).
    monitors: Option<ClusterMonitors>,
}

/// A monitor bank bound to this cluster's signal buffers. Each channel
/// walks its signal's buffer with a cursor, exactly like a probe — but
/// folds samples into the automata instead of storing them.
struct ClusterMonitors {
    bank: MonitorBank,
    /// The bank as attached, for [`Cluster::reset`].
    pristine: MonitorBank,
    /// Per channel: `(signal index, next buffer index to feed)`.
    taps: Vec<(usize, i64)>,
}

impl Cluster {
    /// The cluster period: the wall of simulated time covered by one
    /// schedule iteration.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// The cluster's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Completed iterations.
    pub fn iterations(&self) -> u64 {
        self.iteration
    }

    /// Looks a TDF signal up by name. `None` when no signal carries
    /// that name; first match wins on duplicates.
    pub fn find_signal(&self, name: &str) -> Option<TdfSignal> {
        self.signal_names
            .iter()
            .position(|n| n == name)
            .map(TdfSignal)
    }

    /// Attaches a compiled monitor bank: channel `ch` of the bank
    /// streams signal `signals[ch]` (pair them with
    /// [`MonitorBank::channels`], resolved via
    /// [`Cluster::find_signal`]). Samples are fed once per completed
    /// iteration, in buffer order, with the same timestamps probes
    /// record; nothing is buffered. Replaces any bank attached earlier.
    ///
    /// # Panics
    ///
    /// Panics when `signals` does not pair 1:1 with the bank's channels
    /// or names a signal outside the cluster.
    pub fn attach_monitors(&mut self, bank: MonitorBank, signals: &[TdfSignal]) {
        assert_eq!(
            bank.channels().len(),
            signals.len(),
            "one signal per monitor channel"
        );
        let taps = signals
            .iter()
            .map(|s| {
                assert!(s.0 < self.bufs.len(), "signal out of range");
                (s.0, 0i64)
            })
            .collect();
        self.monitors = Some(ClusterMonitors {
            pristine: bank.clone(),
            bank,
            taps,
        });
    }

    /// The attached monitor bank, when present.
    pub fn monitor_bank(&self) -> Option<&MonitorBank> {
        self.monitors.as_ref().map(|m| &m.bank)
    }

    /// Detaches and returns the monitor bank (with all accumulated
    /// automaton state), when present.
    pub fn take_monitors(&mut self) -> Option<MonitorBank> {
        self.monitors.take().map(|m| m.bank)
    }

    /// Overwrites the attached bank's automaton state and re-syncs the
    /// feed cursors to the current buffer positions. [`Cluster::save`]
    /// deliberately excludes monitor state, so a checkpoint-forking
    /// sweep calls this right after [`Cluster::restore`] with the bank
    /// snapshot it took at the checkpoint. No-op when no bank is
    /// attached.
    pub fn set_monitor_bank_state(&mut self, bank: MonitorBank) {
        if let Some(mon) = self.monitors.as_mut() {
            mon.bank = bank;
            for (sig, next) in mon.taps.iter_mut() {
                let buf = &self.bufs[*sig];
                *next = buf.base + buf.data.len() as i64;
            }
        }
    }

    /// The resolved timestep of a module.
    pub fn module_timestep(&self, id: ModuleId) -> SimTime {
        self.modules[id.0].timestep
    }

    /// Runs one schedule iteration whose first sample is at `start`.
    ///
    /// # Errors
    ///
    /// Propagates module processing failures with module context.
    pub fn run_iteration(&mut self, start: SimTime) -> Result<(), CoreError> {
        let traced = self.tracer.is_enabled();
        if traced {
            self.tracer
                .begin_with(SpanKind::ClusterIteration, start.as_fs(), self.iteration);
        }
        for m in &mut self.modules {
            m.firing_in_iter = 0;
        }
        let order = std::mem::take(&mut self.schedule_order);
        let mut result = Ok(());
        for &midx in &order {
            if let Err(e) = self.fire(midx, start) {
                result = Err(e);
                break;
            }
        }
        self.schedule_order = order;
        result?;
        self.iteration += 1;
        self.stats.iterations += 1;
        self.flush_probes();
        self.feed_monitors();
        self.trim_buffers();
        if traced {
            self.tracer.end_with(
                SpanKind::ClusterIteration,
                (start + self.period).as_fs(),
                self.schedule_order.len() as u64,
            );
        }
        Ok(())
    }

    fn fire(&mut self, midx: usize, start: SimTime) -> Result<(), CoreError> {
        let mut module = self.modules[midx]
            .module
            .take()
            .expect("module present outside of firing");
        let t0_exact = start + self.modules[midx].timestep * self.modules[midx].firing_in_iter;
        let result = {
            let mrt = &self.modules[midx];
            let mut io = TdfIo {
                module_name: &mrt.name,
                t0: t0_exact.to_seconds(),
                t0_exact,
                timestep: mrt.timestep_secs,
                in_ports: &mrt.in_ports,
                out_ports: &mrt.out_ports,
                bufs: &mut self.bufs,
                initial: &self.initial,
            };
            module.processing(&mut io)
        };
        let mrt = &mut self.modules[midx];
        mrt.module = Some(module);
        for ip in mrt.in_ports.values_mut() {
            ip.counter += ip.rate as i64;
        }
        for op in mrt.out_ports.values_mut() {
            op.counter += op.rate as i64;
        }
        mrt.firing_in_iter += 1;
        self.stats.firings += 1;
        result.map_err(|e| match e {
            CoreError::Solver { .. } => e,
            other => CoreError::solver(&mrt.name, other),
        })
    }

    fn flush_probes(&mut self) {
        for p in &mut self.probes {
            let buf = &self.bufs[p.signal.0];
            let end = buf.base + buf.data.len() as i64;
            let period = self.sig_period_secs[p.signal.0];
            let mut data = p.probe.data.lock().expect("probe storage poisoned");
            let from = p.next_idx.max(buf.base);
            for idx in from..end {
                let v = buf.get(idx).expect("index within window");
                data.push((idx as f64 * period, v));
                self.stats.probe_samples += 1;
            }
            p.next_idx = end;
        }
    }

    /// Streams every not-yet-seen buffer sample of each monitored
    /// signal into the attached bank (same cursor walk as
    /// [`Cluster::flush_probes`], without storing anything). One branch
    /// when no bank is attached.
    fn feed_monitors(&mut self) {
        if let Some(mon) = self.monitors.as_mut() {
            for (ch, (sig, next)) in mon.taps.iter_mut().enumerate() {
                let buf = &self.bufs[*sig];
                let end = buf.base + buf.data.len() as i64;
                let period = self.sig_period_secs[*sig];
                let from = (*next).max(buf.base);
                for idx in from..end {
                    let v = buf.get(idx).expect("index within window");
                    mon.bank.feed(ch, idx as f64 * period, v);
                }
                *next = end;
            }
        }
    }

    fn trim_buffers(&mut self) {
        let n_sigs = self.bufs.len();
        let mut keep_from: Vec<i64> = vec![i64::MAX; n_sigs];
        for m in &self.modules {
            for (sig, ip) in &m.in_ports {
                keep_from[sig.0] = keep_from[sig.0].min(ip.counter - ip.delay as i64);
            }
        }
        for p in &self.probes {
            keep_from[p.signal.0] = keep_from[p.signal.0].min(p.next_idx);
        }
        if let Some(mon) = &self.monitors {
            for (sig, next) in &mon.taps {
                keep_from[*sig] = keep_from[*sig].min(*next);
            }
        }
        for (s, buf) in self.bufs.iter_mut().enumerate() {
            let kf = keep_from[s];
            if kf == i64::MAX {
                // No reader, no probe: drop everything produced.
                buf.trim(buf.base + buf.data.len() as i64);
            } else {
                buf.trim(kf);
            }
        }
    }

    /// Runs the cluster standalone (without a DE kernel) for `iterations`
    /// schedule iterations starting at time zero. Converter bindings, if
    /// any, read 0.0 and queue writes unobserved.
    ///
    /// # Errors
    ///
    /// Propagates processing failures.
    pub fn run_standalone(&mut self, iterations: u64) -> Result<(), CoreError> {
        for _ in 0..iterations {
            let start = self.period * self.iteration;
            self.run_iteration(start)?;
        }
        Ok(())
    }

    /// Execution counters (iterations, firings, probe samples), with the
    /// Newton/factorization totals of every embedded solver folded in via
    /// [`TdfModule::solver_stats`].
    pub fn stats(&self) -> ClusterStats {
        let mut s = self.stats;
        for m in &self.modules {
            let module = m.module.as_ref().expect("module present outside of firing");
            if let Some((newton, lu)) = module.solver_stats() {
                s.newton_iterations += newton;
                s.factorizations += lu;
            }
            if let Some(solve) = module.solve_stats() {
                s.solve.merge(&solve);
            }
        }
        s
    }

    /// Firings per schedule iteration — the static cost model used by the
    /// `ams-exec` partitioner (derived from the balance-equation
    /// repetition vector, i.e. the token rates).
    pub fn iteration_cost(&self) -> u64 {
        self.schedule_order.len() as u64
    }

    /// Enables or disables span tracing on the cluster and every
    /// embedded solver (via [`TdfModule::set_tracing`]). Disabled (the
    /// default) costs one branch per iteration.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
        for m in &mut self.modules {
            m.module
                .as_mut()
                .expect("module present outside of firing")
                .set_tracing(enabled);
        }
    }

    /// `true` when span tracing is enabled on this cluster.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Drains all trace buffers: one `(source, events)` entry for the
    /// cluster's own iteration spans (source = cluster name) plus one
    /// per module that recorded solver events (source =
    /// `"{cluster}/{module}"`). Empty buffers are skipped.
    pub fn take_traces(&mut self) -> Vec<(String, Vec<TraceEvent>)> {
        let mut out = Vec::new();
        let own = self.tracer.take_events();
        if !own.is_empty() {
            out.push((self.name.clone(), own));
        }
        for m in &mut self.modules {
            let events = m
                .module
                .as_mut()
                .expect("module present outside of firing")
                .take_trace_events();
            if !events.is_empty() {
                out.push((format!("{}/{}", self.name, m.name), events));
            }
        }
        out
    }

    /// `true` if the cluster exchanges samples with DE kernel signals
    /// through converter bindings. Such clusters constrain the
    /// synchronization window of a parallel run; fully decoupled clusters
    /// can free-run to the horizon.
    pub fn has_de_bindings(&self) -> bool {
        !self.de_reads.is_empty() || !self.de_writes.is_empty()
    }

    /// DE→TDF converter bindings: each kernel signal and the shared cell
    /// its value is sampled into at cluster activation.
    pub fn de_read_bindings(&self) -> &[DeReadBinding] {
        &self.de_reads
    }

    /// TDF→DE converter bindings: each kernel signal and the timestamped
    /// sample queue feeding it.
    pub fn de_write_bindings(&self) -> &[DeWriteBinding] {
        &self.de_writes
    }

    /// Rewinds the elaborated cluster to `t = 0` without re-elaboration:
    /// clears signal buffers, port counters, probes, queued DE writes and
    /// execution counters, and asks every module to restore its
    /// post-`initialize` state via [`TdfModule::reset`].
    ///
    /// Delay-sample initial values established during elaboration are
    /// preserved, so the first iteration after a reset replays the first
    /// iteration after elaboration exactly (for modules that implement
    /// `reset` faithfully).
    pub fn reset(&mut self) {
        self.iteration = 0;
        self.stats = ClusterStats::default();
        for buf in &mut self.bufs {
            buf.data.clear();
            buf.base = 0;
        }
        for m in &mut self.modules {
            for ip in m.in_ports.values_mut() {
                ip.counter = 0;
            }
            for op in m.out_ports.values_mut() {
                op.counter = 0;
            }
            m.firing_in_iter = 0;
            m.module
                .as_mut()
                .expect("module present outside of firing")
                .reset();
        }
        for p in &mut self.probes {
            p.next_idx = 0;
            p.probe.data.lock().expect("probe storage poisoned").clear();
        }
        if let Some(mon) = self.monitors.as_mut() {
            mon.bank = mon.pristine.clone();
            for (_, next) in mon.taps.iter_mut() {
                *next = 0;
            }
        }
        for (_, queue) in &self.de_writes {
            queue.lock().expect("sample queue poisoned").clear();
        }
    }

    /// Freezes the cluster's full dynamic state into a
    /// [`ClusterCheckpoint`]: iteration/stat counters, every signal
    /// buffer's window, per-port sample counters, probe cursors *and*
    /// recorded probe data, converter-binding samples and queues, plus
    /// each module's internal state via
    /// [`TdfModule::save_state`]. Restoring with [`Cluster::restore`]
    /// and continuing the run reproduces an uninterrupted run exactly
    /// (for modules that implement the save/restore hooks faithfully) —
    /// probe data included, since the snapshot carries the samples
    /// recorded so far.
    pub fn save(&self) -> ClusterCheckpoint {
        ClusterCheckpoint {
            iteration: self.iteration,
            stats: self.stats,
            bufs: self.bufs.iter().map(|b| (b.base, b.data.clone())).collect(),
            // Port counters are captured in declaration order
            // (`in_sigs`/`out_sigs`), never in `HashMap` iteration
            // order, so a checkpoint is stable across processes.
            in_counters: self
                .modules
                .iter()
                .map(|m| m.in_sigs.iter().map(|s| m.in_ports[s].counter).collect())
                .collect(),
            out_counters: self
                .modules
                .iter()
                .map(|m| m.out_sigs.iter().map(|s| m.out_ports[s].counter).collect())
                .collect(),
            module_state: self
                .modules
                .iter()
                .map(|m| {
                    let mut st = Vec::new();
                    m.module
                        .as_ref()
                        .expect("module present outside of firing")
                        .save_state(&mut st);
                    st
                })
                .collect(),
            probe_next: self.probes.iter().map(|p| p.next_idx).collect(),
            probe_data: self
                .probes
                .iter()
                .map(|p| p.probe.data.lock().expect("probe storage poisoned").clone())
                .collect(),
            de_reads: self.de_reads.iter().map(|(_, cell)| cell.get()).collect(),
            de_writes: self
                .de_writes
                .iter()
                .map(|(_, q)| {
                    q.lock()
                        .expect("sample queue poisoned")
                        .iter()
                        .copied()
                        .collect()
                })
                .collect(),
        }
    }

    /// Rewinds the cluster to a state captured with [`Cluster::save`].
    /// The target must be structurally identical (same elaboration:
    /// module, signal, probe and converter counts) — typically the same
    /// cluster, or a fresh elaboration of the same graph. Validation
    /// happens before any mutation, so a failed restore leaves the
    /// cluster unchanged.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] when the checkpoint's shape does not match
    /// this cluster's.
    pub fn restore(&mut self, cp: &ClusterCheckpoint) -> Result<(), CoreError> {
        if cp.bufs.len() != self.bufs.len()
            || cp.in_counters.len() != self.modules.len()
            || cp.out_counters.len() != self.modules.len()
            || cp.module_state.len() != self.modules.len()
            || cp.probe_next.len() != self.probes.len()
            || cp.probe_data.len() != self.probes.len()
            || cp.de_reads.len() != self.de_reads.len()
            || cp.de_writes.len() != self.de_writes.len()
        {
            return Err(CoreError::invalid(format!(
                "checkpoint shape does not match cluster '{}'",
                self.name
            )));
        }
        for (m, (ins, outs)) in self
            .modules
            .iter()
            .zip(cp.in_counters.iter().zip(&cp.out_counters))
        {
            if ins.len() != m.in_sigs.len() || outs.len() != m.out_sigs.len() {
                return Err(CoreError::invalid(format!(
                    "checkpoint port layout does not match module '{}'",
                    m.name
                )));
            }
        }
        self.iteration = cp.iteration;
        self.stats = cp.stats;
        for (buf, (base, data)) in self.bufs.iter_mut().zip(&cp.bufs) {
            buf.base = *base;
            buf.data.clone_from(data);
        }
        for (midx, m) in self.modules.iter_mut().enumerate() {
            for (s, &c) in m.in_sigs.iter().zip(&cp.in_counters[midx]) {
                m.in_ports.get_mut(s).expect("declared port").counter = c;
            }
            for (s, &c) in m.out_sigs.iter().zip(&cp.out_counters[midx]) {
                m.out_ports.get_mut(s).expect("declared port").counter = c;
            }
            m.firing_in_iter = 0;
            m.module
                .as_mut()
                .expect("module present outside of firing")
                .restore_state(&cp.module_state[midx]);
        }
        for (p, (&next, data)) in self
            .probes
            .iter_mut()
            .zip(cp.probe_next.iter().zip(&cp.probe_data))
        {
            p.next_idx = next;
            p.probe
                .data
                .lock()
                .expect("probe storage poisoned")
                .clone_from(data);
        }
        for ((_, cell), &v) in self.de_reads.iter().zip(&cp.de_reads) {
            cell.set(v);
        }
        for ((_, queue), saved) in self.de_writes.iter().zip(&cp.de_writes) {
            let mut q = queue.lock().expect("sample queue poisoned");
            q.clear();
            q.extend(saved.iter().copied());
        }
        Ok(())
    }

    /// Small-signal AC analysis of the whole cluster: solves the complex
    /// linear system formed by every module's `ac_processing` stamps at
    /// each frequency.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Invalid`] for an empty frequency list.
    /// * Solver failures for structurally singular stamp systems.
    pub fn ac_analysis(&mut self, freqs_hz: &[f64]) -> Result<TdfAcResult, CoreError> {
        if freqs_hz.is_empty() {
            return Err(CoreError::invalid(
                "ac analysis needs at least one frequency",
            ));
        }
        let n = self.bufs.len();
        let mut data = Vec::with_capacity(freqs_hz.len());
        for &f in freqs_hz {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut mat = DMat::<Complex64>::identity(n);
            let mut rhs = DVec::<Complex64>::zeros(n);
            for m in &mut self.modules {
                let module = m.module.as_mut().expect("module present");
                let mut ac = AcIo {
                    omega,
                    module_name: &m.name,
                    declared_inputs: &m.in_sigs,
                    declared_outputs: &m.out_sigs,
                    gains: Vec::new(),
                    sources: Vec::new(),
                };
                module.ac_processing(&mut ac);
                for (out, inp, g) in ac.gains {
                    mat[(out.0, inp.0)] -= g;
                }
                for (out, src) in ac.sources {
                    rhs[out.0] += src;
                }
            }
            let lu = Lu::factor(&mat).map_err(|e| CoreError::solver(&self.name, e))?;
            let x = lu
                .solve(&rhs)
                .map_err(|e| CoreError::solver(&self.name, e))?;
            data.push(x.into_inner());
        }
        Ok(TdfAcResult {
            freqs_hz: freqs_hz.to_vec(),
            data,
        })
    }

    /// The registered name of a TDF signal.
    pub fn signal_name(&self, sig: TdfSignal) -> &str {
        &self.signal_names[sig.0]
    }
}

/// A frozen [`Cluster`] state: counters, signal-buffer windows, port
/// cursors, probe data, converter-binding samples and per-module
/// internal state. Produced by [`Cluster::save`], re-applied by
/// [`Cluster::restore`]. Cloning is cheap relative to a run, so the
/// prefix-sharing idiom is "save once after the common prefix, restore
/// per scenario".
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCheckpoint {
    iteration: u64,
    stats: ClusterStats,
    /// Per-signal `(base, window)` buffer snapshots.
    bufs: Vec<(i64, Vec<f64>)>,
    /// Per-module input-port counters, in declaration order.
    in_counters: Vec<Vec<i64>>,
    /// Per-module output-port counters, in declaration order.
    out_counters: Vec<Vec<i64>>,
    /// Per-module [`TdfModule::save_state`] payloads.
    module_state: Vec<Vec<f64>>,
    probe_next: Vec<i64>,
    probe_data: Vec<Vec<(f64, f64)>>,
    de_reads: Vec<f64>,
    de_writes: Vec<Vec<(SimTime, f64)>>,
}

impl ClusterCheckpoint {
    /// Completed schedule iterations at the capture point.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Execution counters at the capture point.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Estimated resident size in bytes — the currency of byte-budgeted
    /// checkpoint caches, not an exact allocation count.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ClusterCheckpoint>()
            + self
                .bufs
                .iter()
                .map(|(_, d)| 8 + d.len() * 8)
                .sum::<usize>()
            + self.in_counters.iter().map(|c| c.len() * 8).sum::<usize>()
            + self.out_counters.iter().map(|c| c.len() * 8).sum::<usize>()
            + self.module_state.iter().map(|s| s.len() * 8).sum::<usize>()
            + self.probe_next.len() * 8
            + self.probe_data.iter().map(|d| d.len() * 16).sum::<usize>()
            + self.de_reads.len() * 8
            + self.de_writes.iter().map(|q| q.len() * 16).sum::<usize>()
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("name", &self.name)
            .field("period", &self.period)
            .field("modules", &self.modules.len())
            .field("iterations", &self.iteration)
            .finish()
    }
}

/// AC sweep result over a TDF cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TdfAcResult {
    freqs_hz: Vec<f64>,
    /// `data[freq_index][signal_index]`.
    data: Vec<Vec<Complex64>>,
}

impl TdfAcResult {
    /// The analysis frequencies in Hz.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// The complex response of one signal across all frequencies.
    pub fn response(&self, signal: TdfSignal) -> Vec<Complex64> {
        self.data.iter().map(|row| row[signal.0]).collect()
    }

    /// Magnitude (dB) of one signal across all frequencies.
    pub fn mag_db(&self, signal: TdfSignal) -> Vec<f64> {
        self.response(signal)
            .iter()
            .map(|v| 20.0 * v.abs().log10())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::TdfOut;

    /// Emits k, k+1, k+2, …
    struct Counter {
        out: TdfOut,
        next: f64,
        ts: SimTime,
    }
    impl TdfModule for Counter {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.output(self.out);
            cfg.set_timestep(self.ts);
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            io.write1(self.out, self.next);
            self.next += 1.0;
            Ok(())
        }
        fn save_state(&self, out: &mut Vec<f64>) {
            out.push(self.next);
        }
        fn restore_state(&mut self, state: &[f64]) {
            self.next = state[0];
        }
    }

    struct Gain {
        inp: TdfIn,
        out: TdfOut,
        k: f64,
    }
    impl TdfModule for Gain {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.input(self.inp);
            cfg.output(self.out);
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            let x = io.read1(self.inp);
            io.write1(self.out, self.k * x);
            Ok(())
        }
        fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
            ac.set_gain(self.inp, self.out, Complex64::from_real(self.k));
        }
    }

    /// Consumes 4 samples, emits their mean (4:1 decimator).
    struct Mean4 {
        inp: TdfIn,
        out: TdfOut,
    }
    impl TdfModule for Mean4 {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.input_with(self.inp, 4, 0);
            cfg.output(self.out);
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            let sum: f64 = (0..4).map(|k| io.read(self.inp, k)).sum();
            io.write1(self.out, sum / 4.0);
            Ok(())
        }
    }

    #[test]
    fn single_rate_pipeline() {
        let mut g = TdfGraph::new("pipe");
        let s1 = g.signal("s1");
        let s2 = g.signal("s2");
        let probe = g.probe(s2);
        g.add_module(
            "cnt",
            Counter {
                out: s1.writer(),
                next: 1.0,
                ts: SimTime::from_us(1),
            },
        );
        g.add_module(
            "g2",
            Gain {
                inp: s1.reader(),
                out: s2.writer(),
                k: 2.0,
            },
        );
        let mut c = g.elaborate().unwrap();
        assert_eq!(c.period(), SimTime::from_us(1));
        c.run_standalone(3).unwrap();
        assert_eq!(probe.values(), vec![2.0, 4.0, 6.0]);
        // Sample times follow the signal period.
        for (t, want) in probe.times().iter().zip([0.0, 1e-6, 2e-6]) {
            assert!((t - want).abs() < 1e-12, "time {t} vs {want}");
        }
    }

    #[test]
    fn monitors_stream_signals_like_probes() {
        use ams_monitor::MonitorSpec;
        let build = |k: f64| {
            let mut g = TdfGraph::new("mon");
            let s1 = g.signal("s1");
            let s2 = g.signal("s2");
            g.add_module(
                "cnt",
                Counter {
                    out: s1.writer(),
                    next: 1.0,
                    ts: SimTime::from_us(1),
                },
            );
            g.add_module(
                "g2",
                Gain {
                    inp: s1.reader(),
                    out: s2.writer(),
                    k,
                },
            );
            g.elaborate().unwrap()
        };
        let spec = MonitorSpec::parse(
            "bounded:overshoot(max=9.5)@s2;\
             ramping:ramp(from=0,until=1,tol=0)@s2;\
             fin:finite()@s1",
        )
        .unwrap();
        let bank = MonitorBank::new(&spec);
        let mut c = build(2.0);
        let sigs: Vec<TdfSignal> = bank
            .channels()
            .iter()
            .map(|ch| c.find_signal(ch).unwrap())
            .collect();
        assert!(c.find_signal("missing").is_none());
        c.attach_monitors(bank.clone(), &sigs);
        // s2 = 2, 4, 6 after 3 iterations: all pass.
        c.run_standalone(3).unwrap();
        let fed = c.monitor_bank().unwrap();
        assert_eq!(fed.samples(), 6); // 3 samples × 2 channels
        assert!(fed.finish().iter().all(|v| v.is_pass()));
        // reset() rewinds the bank with the buffers.
        c.reset();
        assert_eq!(c.monitor_bank().unwrap().samples(), 0);
        // Run further: s2 = 2..=10, overshoot fires at the 5th sample.
        c.run_standalone(5).unwrap();
        let v = c.monitor_bank().unwrap().finish();
        assert_eq!(v[0].code(), Some("MON002"));
        assert!(v[1].is_pass() && v[2].is_pass());
        // Checkpoint forking: snapshot the bank with the cluster state,
        // run ahead, then restore + re-sync — the fork replays bit-
        // identically to the uninterrupted run.
        let mut c = build(2.0);
        c.attach_monitors(bank, &sigs);
        c.run_standalone(2).unwrap();
        let cp = c.save();
        let snap = c.monitor_bank().unwrap().clone();
        c.run_standalone(6).unwrap();
        let ahead = c.monitor_bank().unwrap().finish();
        c.restore(&cp).unwrap();
        c.set_monitor_bank_state(snap);
        c.run_standalone(6).unwrap();
        assert_eq!(c.monitor_bank().unwrap().finish(), ahead);
        assert_eq!(c.monitor_bank().unwrap().samples(), 16);
    }

    #[test]
    fn multirate_decimation() {
        let mut g = TdfGraph::new("multi");
        let fast = g.signal("fast");
        let slow = g.signal("slow");
        let probe = g.probe(slow);
        g.add_module(
            "cnt",
            Counter {
                out: fast.writer(),
                next: 1.0,
                ts: SimTime::from_us(1),
            },
        );
        g.add_module(
            "mean",
            Mean4 {
                inp: fast.reader(),
                out: slow.writer(),
            },
        );
        let mut c = g.elaborate().unwrap();
        // Counter fires 4× per iteration → cluster period 4 µs.
        assert_eq!(c.period(), SimTime::from_us(4));
        c.run_standalone(2).unwrap();
        assert_eq!(probe.values(), vec![2.5, 6.5]);
        // The slow signal's sample period is 4 µs.
        for (t, want) in probe.times().iter().zip([0.0, 4e-6]) {
            assert!((t - want).abs() < 1e-12, "time {t} vs {want}");
        }
    }

    #[test]
    fn feedback_loop_with_delay() {
        // Accumulator: out[n] = out[n−1] + 1, seeded with 10 via the
        // delay sample.
        struct Acc {
            inp: TdfIn,
            out: TdfOut,
            ts: SimTime,
        }
        impl TdfModule for Acc {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.input_with(self.inp, 1, 1);
                cfg.output(self.out);
                cfg.set_timestep(self.ts);
            }
            fn initialize(&mut self, init: &mut TdfInit<'_>) -> Result<(), CoreError> {
                init.set_initial(self.inp, 0, 10.0);
                Ok(())
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                let prev = io.read1(self.inp);
                io.write1(self.out, prev + 1.0);
                Ok(())
            }
        }
        let mut g = TdfGraph::new("fb");
        let s = g.signal("acc");
        let probe = g.probe(s);
        g.add_module(
            "acc",
            Acc {
                inp: s.reader(),
                out: s.writer(),
                ts: SimTime::from_ns(10),
            },
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(4).unwrap();
        assert_eq!(probe.values(), vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn feedback_without_delay_deadlocks() {
        struct Loop {
            inp: TdfIn,
            out: TdfOut,
        }
        impl TdfModule for Loop {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.input(self.inp);
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_ns(1));
            }
            fn processing(&mut self, _io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                Ok(())
            }
        }
        let mut g = TdfGraph::new("dead");
        let s = g.signal("x");
        g.add_module(
            "loop",
            Loop {
                inp: s.reader(),
                out: s.writer(),
            },
        );
        assert!(matches!(
            g.elaborate(),
            Err(CoreError::Sdf(ams_sdf::SdfError::Deadlock { .. }))
        ));
    }

    #[test]
    fn multiple_writers_rejected() {
        let mut g = TdfGraph::new("dup");
        let s = g.signal("x");
        g.add_module(
            "a",
            Counter {
                out: s.writer(),
                next: 0.0,
                ts: SimTime::from_us(1),
            },
        );
        g.add_module(
            "b",
            Counter {
                out: s.writer(),
                next: 0.0,
                ts: SimTime::from_us(1),
            },
        );
        assert!(matches!(
            g.elaborate(),
            Err(CoreError::MultipleWriters { .. })
        ));
    }

    #[test]
    fn unwritten_signal_rejected() {
        let mut g = TdfGraph::new("nowriter");
        let s = g.signal("x");
        let y = g.signal("y");
        g.add_module(
            "g",
            Gain {
                inp: s.reader(),
                out: y.writer(),
                k: 1.0,
            },
        );
        assert!(matches!(g.elaborate(), Err(CoreError::NoWriter { .. })));
    }

    #[test]
    fn no_timestep_rejected() {
        let mut g = TdfGraph::new("nots");
        let s = g.signal("x");
        let y = g.signal("y");
        struct Src {
            out: TdfOut,
        }
        impl TdfModule for Src {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, 0.0);
                Ok(())
            }
        }
        g.add_module("src", Src { out: s.writer() });
        g.add_module(
            "g",
            Gain {
                inp: s.reader(),
                out: y.writer(),
                k: 1.0,
            },
        );
        assert!(matches!(g.elaborate(), Err(CoreError::NoTimestep)));
    }

    #[test]
    fn inconsistent_timesteps_rejected() {
        let mut g = TdfGraph::new("mismatch");
        let s1 = g.signal("a");
        let s2 = g.signal("b");
        g.add_module(
            "c1",
            Counter {
                out: s1.writer(),
                next: 0.0,
                ts: SimTime::from_us(1),
            },
        );
        struct GainTs {
            inp: TdfIn,
            out: TdfOut,
        }
        impl TdfModule for GainTs {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.input(self.inp);
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(2)); // conflicts with 1 µs
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                let v = io.read1(self.inp);
                io.write1(self.out, v);
                Ok(())
            }
        }
        g.add_module(
            "g",
            GainTs {
                inp: s1.reader(),
                out: s2.writer(),
            },
        );
        assert!(matches!(
            g.elaborate(),
            Err(CoreError::InconsistentTimestep { .. })
        ));
    }

    #[test]
    fn ac_analysis_of_gain_chain() {
        let mut g = TdfGraph::new("ac");
        let s1 = g.signal("in");
        let s2 = g.signal("out");
        struct AcSrc {
            out: TdfOut,
        }
        impl TdfModule for AcSrc {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, 0.0);
                Ok(())
            }
            fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
                ac.set_source(self.out, Complex64::ONE);
            }
        }
        g.add_module("src", AcSrc { out: s1.writer() });
        g.add_module(
            "g3",
            Gain {
                inp: s1.reader(),
                out: s2.writer(),
                k: 3.0,
            },
        );
        let mut c = g.elaborate().unwrap();
        let ac = c.ac_analysis(&[100.0, 1000.0]).unwrap();
        let resp = ac.response(s2);
        assert!((resp[0].re - 3.0).abs() < 1e-12);
        assert!((resp[1].re - 3.0).abs() < 1e-12);
        assert_eq!(ac.freqs_hz(), &[100.0, 1000.0]);
    }

    #[test]
    fn ac_analysis_solves_feedback() {
        // Loop: y = src + k·y → y = 1/(1−k).
        struct FbSum {
            src: TdfIn,
            fb: TdfIn,
            out: TdfOut,
            k: f64,
        }
        impl TdfModule for FbSum {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.input(self.src);
                cfg.input_with(self.fb, 1, 1);
                cfg.output(self.out);
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                let s = io.read1(self.src);
                let f = io.read1(self.fb);
                io.write1(self.out, s + self.k * f);
                Ok(())
            }
            fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
                ac.set_gain(self.src, self.out, Complex64::ONE);
                ac.set_gain(self.fb, self.out, Complex64::from_real(self.k));
            }
        }
        struct AcSrc2 {
            out: TdfOut,
        }
        impl TdfModule for AcSrc2 {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, 0.0);
                Ok(())
            }
            fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
                ac.set_source(self.out, Complex64::ONE);
            }
        }
        let mut g = TdfGraph::new("acfb");
        let s_src = g.signal("src");
        let s_y = g.signal("y");
        g.add_module(
            "src",
            AcSrc2 {
                out: s_src.writer(),
            },
        );
        g.add_module(
            "sum",
            FbSum {
                src: s_src.reader(),
                fb: s_y.reader(),
                out: s_y.writer(),
                k: 0.5,
            },
        );
        let mut c = g.elaborate().unwrap();
        let ac = c.ac_analysis(&[10.0]).unwrap();
        let y = ac.response(s_y)[0];
        assert!((y.re - 2.0).abs() < 1e-12, "y = {y}");
    }

    #[test]
    fn empty_frequency_list_rejected() {
        let mut g = TdfGraph::new("x");
        let s = g.signal("s");
        g.add_module(
            "c",
            Counter {
                out: s.writer(),
                next: 0.0,
                ts: SimTime::from_us(1),
            },
        );
        let mut c = g.elaborate().unwrap();
        assert!(c.ac_analysis(&[]).is_err());
    }

    #[test]
    fn save_restore_resumes_identical_run() {
        // Counter (module-internal state) → gain → probe: the restored
        // continuation must reproduce the uninterrupted run exactly,
        // probe contents and stats included.
        fn build() -> (Cluster, TdfProbe) {
            let mut g = TdfGraph::new("ckpt");
            let s1 = g.signal("s1");
            let s2 = g.signal("s2");
            let probe = g.probe(s2);
            g.add_module(
                "cnt",
                Counter {
                    out: s1.writer(),
                    next: 1.0,
                    ts: SimTime::from_us(1),
                },
            );
            g.add_module(
                "g2",
                Gain {
                    inp: s1.reader(),
                    out: s2.writer(),
                    k: 2.0,
                },
            );
            (g.elaborate().unwrap(), probe)
        }
        let (mut c, probe) = build();
        c.run_standalone(7).unwrap();
        let full_samples = probe.samples();
        let full_stats = c.stats();

        let (mut c2, probe2) = build();
        c2.run_standalone(3).unwrap();
        let cp = c2.save();
        assert_eq!(cp.iteration(), 3);
        assert_eq!(cp.stats().iterations, 3);
        assert!(cp.approx_bytes() > 0);
        // Divergent detour, then rewind and run the remaining 4.
        c2.run_standalone(5).unwrap();
        c2.restore(&cp).unwrap();
        assert_eq!(c2.iterations(), 3);
        c2.run_standalone(4).unwrap();
        assert_eq!(probe2.samples(), full_samples);
        assert_eq!(c2.stats(), full_stats);

        // Restore into a fresh elaboration of the same graph.
        let (mut c3, probe3) = build();
        c3.restore(&cp).unwrap();
        c3.run_standalone(4).unwrap();
        assert_eq!(probe3.samples(), full_samples);
        assert_eq!(c3.stats(), full_stats);
    }

    #[test]
    fn restore_rejects_mismatched_shape() {
        let mut g = TdfGraph::new("a");
        let s = g.signal("s");
        g.add_module(
            "c",
            Counter {
                out: s.writer(),
                next: 0.0,
                ts: SimTime::from_us(1),
            },
        );
        let c = g.elaborate().unwrap();
        let cp = c.save();

        let mut g2 = TdfGraph::new("b");
        let x = g2.signal("x");
        let y = g2.signal("y");
        g2.add_module(
            "c",
            Counter {
                out: x.writer(),
                next: 0.0,
                ts: SimTime::from_us(1),
            },
        );
        g2.add_module(
            "g",
            Gain {
                inp: x.reader(),
                out: y.writer(),
                k: 1.0,
            },
        );
        let mut other = g2.elaborate().unwrap();
        assert!(other.restore(&cp).is_err());
        // Failed restores leave the cluster untouched.
        assert_eq!(other.iterations(), 0);
    }

    #[test]
    fn save_restore_carries_delay_feedback_state() {
        // The accumulator's whole state lives in the delayed signal
        // buffer: restore must rewind it faithfully.
        struct Acc {
            inp: TdfIn,
            out: TdfOut,
        }
        impl TdfModule for Acc {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.input_with(self.inp, 1, 1);
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_ns(10));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                let prev = io.read1(self.inp);
                io.write1(self.out, prev + 1.0);
                Ok(())
            }
        }
        let mut g = TdfGraph::new("fb");
        let s = g.signal("acc");
        let probe = g.probe(s);
        g.add_module(
            "acc",
            Acc {
                inp: s.reader(),
                out: s.writer(),
            },
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(2).unwrap();
        let cp = c.save();
        c.run_standalone(3).unwrap();
        let full = probe.samples();
        c.restore(&cp).unwrap();
        c.run_standalone(3).unwrap();
        assert_eq!(probe.samples(), full);
    }

    #[test]
    fn buffers_are_trimmed() {
        let mut g = TdfGraph::new("trim");
        let s1 = g.signal("s1");
        let s2 = g.signal("s2");
        g.add_module(
            "cnt",
            Counter {
                out: s1.writer(),
                next: 0.0,
                ts: SimTime::from_us(1),
            },
        );
        g.add_module(
            "g",
            Gain {
                inp: s1.reader(),
                out: s2.writer(),
                k: 1.0,
            },
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(1000).unwrap();
        // No probe on s1/s2 readers beyond the gain: buffers stay bounded.
        assert!(
            c.bufs[0].data.len() <= 2,
            "s1 buffer grew: {}",
            c.bufs[0].data.len()
        );
        assert!(
            c.bufs[1].data.len() <= 2,
            "s2 buffer grew: {}",
            c.bufs[1].data.len()
        );
    }
}
