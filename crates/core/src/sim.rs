//! The AMS simulator facade: DE kernel + TDF clusters under one roof.
//!
//! This is the paper's **synchronization layer** ("here comes the concept
//! of a dedicated manager, let us call it the synchronization layer, in
//! the SystemC-AMS framework", §3 O6). Each elaborated cluster is
//! registered as a DE method process that re-arms itself every cluster
//! period; converter bindings move values across the boundary with the
//! static-dataflow semantics of the paper's phase 1:
//!
//! * **DE → TDF**: the kernel signal is sampled at cluster activation.
//! * **TDF → DE**: every sample is written to the kernel signal at its
//!   exact sample time by a dedicated writer process (delta-cycle
//!   semantics preserved).
//!
//! Before the first activation every module's `initialize` has
//! established the paper's "consistent initial (quiescent) state".

use crate::cluster::{Cluster, TdfAcResult, TdfGraph};
use crate::CoreError;
use ams_kernel::{Kernel, SimTime};
use ams_lint::{LintPolicy, LintReport};
use std::cell::RefCell;
use std::rc::Rc;

/// Handle to a cluster registered with an [`AmsSimulator`].
#[derive(Clone)]
pub struct ClusterHandle {
    inner: Rc<RefCell<Cluster>>,
    error: Rc<RefCell<Option<CoreError>>>,
}

impl ClusterHandle {
    /// The cluster period.
    pub fn period(&self) -> SimTime {
        self.inner.borrow().period()
    }

    /// Completed iterations.
    pub fn iterations(&self) -> u64 {
        self.inner.borrow().iterations()
    }

    /// Runs a small-signal AC analysis over the cluster's module graph.
    ///
    /// # Errors
    ///
    /// See [`Cluster::ac_analysis`].
    pub fn ac_analysis(&self, freqs_hz: &[f64]) -> Result<TdfAcResult, CoreError> {
        self.inner.borrow_mut().ac_analysis(freqs_hz)
    }
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.borrow().fmt(f)
    }
}

/// The heterogeneous simulator: one DE kernel plus any number of TDF
/// clusters (each possibly embedding CT solvers) — the paper's O1
/// ("suitable for the description and the simulation of heterogeneous
/// systems") in one object.
///
/// # Example
///
/// ```
/// use ams_core::{AmsSimulator, TdfGraph, CoreError, TdfSetup, TdfIo, TdfModule};
/// use ams_kernel::SimTime;
///
/// struct Const { out: ams_core::TdfOut }
/// impl TdfModule for Const {
///     fn setup(&mut self, cfg: &mut TdfSetup) {
///         cfg.output(self.out);
///         cfg.set_timestep(SimTime::from_us(1));
///     }
///     fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
///         io.write1(self.out, 2.5);
///         Ok(())
///     }
/// }
///
/// # fn main() -> Result<(), CoreError> {
/// let mut sim = AmsSimulator::new();
/// let de_out = sim.kernel_mut().signal("tdf_out", 0.0f64);
/// let mut g = TdfGraph::new("demo");
/// let s = g.signal("c");
/// g.add_module("const", Const { out: s.writer() });
/// g.to_de("conv", s, de_out);
/// sim.add_cluster(g)?;
/// sim.run_until(SimTime::from_us(10))?;
/// assert_eq!(sim.kernel().peek(de_out), 2.5);
/// # Ok(())
/// # }
/// ```
pub struct AmsSimulator {
    kernel: Kernel,
    clusters: Vec<ClusterHandle>,
    lint_policy: LintPolicy,
    lint_reports: Vec<LintReport>,
    tracing: bool,
}

impl Default for AmsSimulator {
    fn default() -> Self {
        AmsSimulator::new()
    }
}

impl AmsSimulator {
    /// Creates a simulator with an empty kernel at time zero.
    pub fn new() -> Self {
        AmsSimulator {
            kernel: Kernel::new(),
            clusters: Vec::new(),
            lint_policy: LintPolicy::default(),
            lint_reports: Vec::new(),
            tracing: false,
        }
    }

    /// Enables or disables span tracing across the kernel and every
    /// registered cluster (including their embedded solvers). Clusters
    /// added later inherit the setting. Disabled (the default) costs
    /// one branch per hook site.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
        self.kernel.set_tracing(enabled);
        for c in &self.clusters {
            c.inner.borrow_mut().set_tracing(enabled);
        }
    }

    /// Drains all trace buffers into a [`ams_scope::ScopeTrace`]: the
    /// kernel's delta-cycle instants on track `(coordinator, kernel)`
    /// and each cluster (and traced solver inside it) on its own
    /// `(coordinator, source)` track.
    pub fn take_trace(&mut self) -> ams_scope::ScopeTrace {
        let mut trace = ams_scope::ScopeTrace::new();
        let kernel_events = self.kernel.take_trace_events();
        if !kernel_events.is_empty() {
            trace.add_track("coordinator", "kernel", kernel_events);
        }
        for c in &self.clusters {
            for (source, events) in c.inner.borrow_mut().take_traces() {
                trace.add_track("coordinator", source, events);
            }
        }
        trace
    }

    /// Replaces the static-analysis policy applied by
    /// [`AmsSimulator::add_cluster`]. The default denies error-severity
    /// diagnostics and warns the rest; use
    /// [`ams_lint::LintPolicy::allow_all`] to opt out entirely, or
    /// [`ams_lint::LintPolicy::set_code`] for per-code overrides.
    pub fn set_lint_policy(&mut self, policy: LintPolicy) {
        self.lint_policy = policy;
    }

    /// The active static-analysis policy.
    pub fn lint_policy(&self) -> &LintPolicy {
        &self.lint_policy
    }

    /// The lint reports collected so far, one per
    /// [`AmsSimulator::add_cluster`] call (including clean and
    /// warned-only reports).
    pub fn lint_reports(&self) -> &[LintReport] {
        &self.lint_reports
    }

    /// The DE kernel (for reading signals, statistics, time).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access for building the DE side (signals, processes,
    /// clocks).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Elaborates a TDF graph and registers it for execution: the cluster
    /// activates at `t = 0` and every period thereafter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Lint`] when the pre-elaboration static
    /// analyses find a diagnostic the active [`LintPolicy`] denies
    /// (default: any error-severity finding), and otherwise propagates
    /// elaboration failures (scheduling, timestep, topology).
    pub fn add_cluster(&mut self, mut graph: TdfGraph) -> Result<ClusterHandle, CoreError> {
        let name = graph.name().to_string();

        // Static analysis precedes elaboration so ill-posed graphs are
        // rejected with stable diagnostic codes instead of mid-build
        // errors.
        let report = graph.lint();
        let n_bindings = graph.de_binding_count();
        if !self.lint_policy.denied(&report).is_empty() {
            self.lint_reports.push(report.clone());
            return Err(CoreError::Lint(report));
        }
        for d in self.lint_policy.warned(&report) {
            eprintln!("lint [{}]: {d}", report.context);
        }

        let mut cluster = graph.elaborate()?;
        if self.tracing {
            cluster.set_tracing(true);
        }

        // Cross-MoC timing: converter ports vs. kernel clocks.
        let mut report = report;
        if n_bindings > 0 {
            let timing = ams_lint::lint_converter_timing(
                name.clone(),
                cluster.period(),
                n_bindings,
                self.kernel.clock_periods(),
            );
            for d in self.lint_policy.warned(&timing) {
                eprintln!("lint [{}]: {d}", timing.context);
            }
            if !self.lint_policy.denied(&timing).is_empty() {
                self.lint_reports.push(timing.clone());
                return Err(CoreError::Lint(timing));
            }
            report.merge(timing);
        }
        self.lint_reports.push(report);
        let period = cluster.period();
        let de_reads = cluster.de_reads.clone();
        let de_writes = cluster.de_writes.clone();
        let inner = Rc::new(RefCell::new(cluster));
        let error = Rc::new(RefCell::new(None::<CoreError>));

        // One writer process + wake event per TDF→DE binding.
        let mut write_events = Vec::new();
        for (widx, (de_sig, queue)) in de_writes.iter().enumerate() {
            let ev = self.kernel.event(format!("{name}.to_de{widx}.wake"));
            write_events.push(ev);
            let de_sig = *de_sig;
            let queue = queue.clone();
            let pid = self
                .kernel
                .add_process(format!("{name}.to_de{widx}"), move |ctx| {
                    let mut q = queue.lock().expect("sample queue poisoned");
                    let now = ctx.now();
                    while let Some(&(t, v)) = q.front() {
                        if t <= now {
                            ctx.write(de_sig, v);
                            q.pop_front();
                        } else {
                            ctx.next_trigger_in(t - now);
                            return;
                        }
                    }
                });
            self.kernel.make_sensitive(pid, ev);
            self.kernel.dont_initialize(pid);
        }

        // The cluster driver process.
        let inner2 = inner.clone();
        let error2 = error.clone();
        self.kernel
            .add_process(format!("{name}.driver"), move |ctx| {
                if error2.borrow().is_some() {
                    return; // poisoned: stop re-arming
                }
                // Sample DE inputs at activation time.
                for (sig, cell) in &de_reads {
                    cell.set(ctx.read(*sig));
                }
                let start = ctx.now();
                let result = inner2.borrow_mut().run_iteration(start);
                match result {
                    Ok(()) => {
                        // Wake the writer processes (next delta, same time).
                        for &ev in &write_events {
                            ctx.notify(ev);
                        }
                        ctx.next_trigger_in(period);
                    }
                    Err(e) => {
                        *error2.borrow_mut() = Some(e);
                    }
                }
            });

        let handle = ClusterHandle { inner, error };
        self.clusters.push(handle.clone());
        Ok(handle)
    }

    /// Runs the co-simulation until `until`.
    ///
    /// # Errors
    ///
    /// Returns the first cluster failure or kernel error encountered.
    pub fn run_until(&mut self, until: SimTime) -> Result<(), CoreError> {
        self.kernel.run_until(until)?;
        for c in &self.clusters {
            if let Some(e) = c.error.borrow_mut().take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Runs for a duration from the current time.
    ///
    /// # Errors
    ///
    /// See [`AmsSimulator::run_until`].
    pub fn run_for(&mut self, duration: SimTime) -> Result<(), CoreError> {
        let until = self.kernel.now().saturating_add(duration);
        self.run_until(until)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }
}

impl std::fmt::Debug for AmsSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmsSimulator")
            .field("kernel", &self.kernel)
            .field("clusters", &self.clusters.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{TdfIo, TdfModule, TdfSetup};
    use crate::port::TdfOut;
    use std::cell::RefCell as StdRefCell;
    use std::rc::Rc as StdRc;

    struct Ramp {
        out: TdfOut,
        ts: SimTime,
        v: f64,
    }
    impl TdfModule for Ramp {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.output(self.out);
            cfg.set_timestep(self.ts);
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            io.write1(self.out, self.v);
            self.v += 1.0;
            Ok(())
        }
    }

    struct DeGain {
        inp: crate::port::TdfIn,
        out: TdfOut,
        k: f64,
    }
    impl TdfModule for DeGain {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.input(self.inp);
            cfg.output(self.out);
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            let v = io.read1(self.inp);
            io.write1(self.out, self.k * v);
            Ok(())
        }
    }

    #[test]
    fn tdf_to_de_writes_each_sample_at_its_time() {
        let mut sim = AmsSimulator::new();
        let de_out = sim.kernel_mut().signal("out", -1.0f64);
        let log = StdRc::new(StdRefCell::new(Vec::new()));
        let l2 = log.clone();
        sim.kernel_mut().observe(de_out, move |t, v| {
            l2.borrow_mut().push((t, *v));
        });

        let mut g = TdfGraph::new("ramp");
        let s = g.signal("r");
        g.add_module(
            "ramp",
            Ramp {
                out: s.writer(),
                ts: SimTime::from_us(5),
                v: 0.0,
            },
        );
        g.to_de("conv", s, de_out);
        sim.add_cluster(g).unwrap();
        sim.run_until(SimTime::from_us(16)).unwrap();
        assert_eq!(
            *log.borrow(),
            vec![
                (SimTime::ZERO, 0.0),
                (SimTime::from_us(5), 1.0),
                (SimTime::from_us(10), 2.0),
                (SimTime::from_us(15), 3.0),
            ]
        );
    }

    #[test]
    fn de_to_tdf_samples_at_activation() {
        let mut sim = AmsSimulator::new();
        let ctrl = sim.kernel_mut().signal("ctrl", 10.0f64);
        // DE process bumps the control value at 7 µs.
        let c2 = ctrl;
        sim.kernel_mut().add_process("bump", move |ctx| {
            if ctx.now().is_zero() {
                ctx.next_trigger_in(SimTime::from_us(7));
            } else {
                ctx.write(c2, 20.0);
            }
        });

        let mut g = TdfGraph::new("sampler");
        let s_in = g.from_de("ctrl_in", ctrl);
        let s_out = g.signal("scaled");
        let probe = g.probe(s_out);
        g.add_module(
            "gain",
            DeGain {
                inp: s_in.reader(),
                out: s_out.writer(),
                k: 0.5,
            },
        );
        // A timestep must come from somewhere: declare on a dummy source?
        // The gain chain has none — declare via a module with timestep.
        struct Pace;
        impl TdfModule for Pace {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.set_timestep(SimTime::from_us(5));
            }
            fn processing(&mut self, _io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                Ok(())
            }
        }
        g.add_module("pace", Pace);
        sim.add_cluster(g).unwrap();
        sim.run_until(SimTime::from_us(21)).unwrap();
        // Activations at 0, 5, 10, 15, 20 µs; the 7 µs bump is visible
        // from the 10 µs activation on.
        assert_eq!(probe.values(), vec![5.0, 5.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn tracing_collects_kernel_and_cluster_tracks() {
        let mut sim = AmsSimulator::new();
        let de_out = sim.kernel_mut().signal("out", 0.0f64);
        let mut g = TdfGraph::new("ramp");
        let s = g.signal("r");
        g.add_module(
            "ramp",
            Ramp {
                out: s.writer(),
                ts: SimTime::from_us(5),
                v: 0.0,
            },
        );
        g.to_de("conv", s, de_out);
        sim.set_tracing(true);
        sim.add_cluster(g).unwrap(); // added after enabling: inherits
        sim.run_until(SimTime::from_us(20)).unwrap();
        let trace = sim.take_trace();
        let names: Vec<&str> = trace.tracks.iter().map(|t| t.thread.as_str()).collect();
        assert!(names.contains(&"kernel"), "tracks: {names:?}");
        assert!(names.contains(&"ramp"), "tracks: {names:?}");
        let cluster_track = trace.tracks.iter().find(|t| t.thread == "ramp").unwrap();
        // 5 iterations (t = 0, 5, 10, 15, 20 µs), each a begin/end pair.
        assert_eq!(cluster_track.events.len(), 10);
        assert!(cluster_track
            .events
            .iter()
            .all(|e| e.kind == ams_scope::SpanKind::ClusterIteration));
        assert!(trace.tracks.iter().all(|t| t.process == "coordinator"));
        // Drained: a second take is empty.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn cluster_failure_surfaces_as_error() {
        struct Failing {
            out: TdfOut,
        }
        impl TdfModule for Failing {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                if io.time() > 2e-6 {
                    return Err(CoreError::solver("failing", "synthetic divergence"));
                }
                io.write1(self.out, 0.0);
                Ok(())
            }
        }
        let mut sim = AmsSimulator::new();
        let mut g = TdfGraph::new("failer");
        let s = g.signal("x");
        g.add_module("f", Failing { out: s.writer() });
        sim.add_cluster(g).unwrap();
        let err = sim.run_until(SimTime::from_us(10)).unwrap_err();
        assert!(matches!(err, CoreError::Solver { .. }), "{err}");
        // Subsequent runs are clean (error consumed, cluster stopped).
        sim.run_until(SimTime::from_us(20)).unwrap();
    }

    #[test]
    fn two_clusters_with_different_periods_coexist() {
        let mut sim = AmsSimulator::new();
        let out_a = sim.kernel_mut().signal("a", 0.0f64);
        let out_b = sim.kernel_mut().signal("b", 0.0f64);

        let mut ga = TdfGraph::new("fast");
        let sa = ga.signal("x");
        ga.add_module(
            "ramp",
            Ramp {
                out: sa.writer(),
                ts: SimTime::from_us(1),
                v: 1.0,
            },
        );
        ga.to_de("conv", sa, out_a);
        let ha = sim.add_cluster(ga).unwrap();

        let mut gb = TdfGraph::new("slow");
        let sb = gb.signal("x");
        gb.add_module(
            "ramp",
            Ramp {
                out: sb.writer(),
                ts: SimTime::from_us(7),
                v: 1.0,
            },
        );
        gb.to_de("conv", sb, out_b);
        let hb = sim.add_cluster(gb).unwrap();

        sim.run_until(SimTime::from_us(21)).unwrap();
        assert_eq!(ha.iterations(), 22); // t = 0..21 µs inclusive
        assert_eq!(hb.iterations(), 4); // t = 0, 7, 14, 21 µs
        assert_eq!(sim.kernel().peek(out_a), 22.0);
        assert_eq!(sim.kernel().peek(out_b), 4.0);
    }

    #[test]
    fn de_feedback_loop_through_clusters() {
        // TDF writes to DE; a DE process doubles it; TDF reads it back
        // next activation.
        let mut sim = AmsSimulator::new();
        let tdf_out = sim.kernel_mut().signal("tdf_out", 0.0f64);
        let de_out = sim.kernel_mut().signal("de_out", 0.0f64);
        let (s_in, s_out) = (tdf_out, de_out);
        let pid = sim.kernel_mut().add_process("doubler", move |ctx| {
            let v = ctx.read(s_in);
            ctx.write(s_out, 2.0 * v);
        });
        let ev = sim.kernel().signal_event(tdf_out);
        sim.kernel_mut().make_sensitive(pid, ev);

        struct AddOne {
            inp: crate::port::TdfIn,
            out: TdfOut,
        }
        impl TdfModule for AddOne {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.input(self.inp);
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                let v = io.read1(self.inp);
                io.write1(self.out, v + 1.0);
                Ok(())
            }
        }
        let mut g = TdfGraph::new("loop");
        let s_feedback = g.from_de("fb", de_out);
        let s_next = g.signal("next");
        g.add_module(
            "addone",
            AddOne {
                inp: s_feedback.reader(),
                out: s_next.writer(),
            },
        );
        g.to_de("conv", s_next, tdf_out);
        sim.add_cluster(g).unwrap();

        // Iteration k: tdf_out = 2·tdf_out_prev + 1 → 1, 3, 7, 15, …
        sim.run_until(SimTime::from_us(3)).unwrap();
        assert_eq!(sim.kernel().peek(tdf_out), 15.0);
    }
}
