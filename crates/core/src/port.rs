//! TDF signals and port handles.
//!
//! A [`TdfSignal`] is a stream of `f64` samples flowing between TDF
//! modules within one cluster — the signal-flow "directed graph [where]
//! each edge represents a quantity" of the paper's O4. Modules hold typed
//! [`TdfIn`]/[`TdfOut`] handles and declare their rates/delays during
//! `setup`.

use std::fmt;

/// Identifier of a TDF signal within its cluster graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TdfSignal(pub(crate) usize);

impl TdfSignal {
    /// Raw index within the owning graph.
    pub fn index(self) -> usize {
        self.0
    }

    /// Creates a reading endpoint for this signal.
    pub fn reader(self) -> TdfIn {
        TdfIn { signal: self }
    }

    /// Creates the writing endpoint for this signal (one writer per
    /// signal; enforced at elaboration).
    pub fn writer(self) -> TdfOut {
        TdfOut { signal: self }
    }
}

/// A module's input port handle (reads samples from a signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TdfIn {
    pub(crate) signal: TdfSignal,
}

impl TdfIn {
    /// The signal this port reads.
    pub fn signal(self) -> TdfSignal {
        self.signal
    }
}

/// A module's output port handle (writes samples to a signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TdfOut {
    pub(crate) signal: TdfSignal,
}

impl TdfOut {
    /// The signal this port writes.
    pub fn signal(self) -> TdfSignal {
        self.signal
    }
}

/// A port declaration captured during `setup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PortDecl {
    pub signal: TdfSignal,
    /// Samples consumed/produced per module firing.
    pub rate: u64,
    /// Input-port delay: number of initial samples inserted before the
    /// first produced sample is read (enables feedback loops).
    pub delay: u64,
}

impl fmt::Display for TdfSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tdf#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_and_refer_to_signal() {
        let s = TdfSignal(3);
        let r = s.reader();
        let w = s.writer();
        let r2 = r;
        assert_eq!(r.signal(), s);
        assert_eq!(w.signal(), s);
        assert_eq!(r2.signal(), s);
        assert_eq!(s.to_string(), "tdf#3");
    }
}
