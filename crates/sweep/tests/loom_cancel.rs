//! Exhaustive-interleaving checks of the sweep cancellation token.
//!
//! Run with `cargo test -p ams-sweep --features loom`. The `loom`
//! feature rebuilds [`ams_sweep::CancelToken`] on model-checked
//! atomics; every test body below runs once per distinct thread
//! schedule (exhaustive up to the preemption bound).

#![cfg(feature = "loom")]

use ams_sweep::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A cancel on one thread must be visible on another after `join`, and
/// the pre-join observation is genuinely racy: the explorer must reach
/// schedules where the flag is seen both ways.
#[test]
fn cancel_becomes_visible_and_the_race_is_explored() {
    let seen = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
    let s2 = seen.clone();
    loom::model(move || {
        let token = CancelToken::new();
        let remote = token.clone();
        let h = loom::thread::spawn(move || remote.cancel());
        // Racy read: either answer is legal depending on the schedule.
        let early = token.is_cancelled();
        s2[usize::from(early)].fetch_add(1, Ordering::Relaxed);
        h.join().expect("canceller panicked");
        assert!(token.is_cancelled(), "cancel lost after join");
    });
    assert!(
        seen[0].load(Ordering::Relaxed) > 0,
        "never saw the pre-cancel state"
    );
    assert!(
        seen[1].load(Ordering::Relaxed) > 0,
        "never saw the post-cancel state"
    );
}

/// Cancellation is idempotent and monotonic: concurrent cancels from
/// two threads leave the token cancelled, and once a clone observes the
/// flag it can never flip back under any schedule.
#[test]
fn concurrent_cancels_are_idempotent_and_monotonic() {
    loom::model(|| {
        let token = CancelToken::new();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let t = token.clone();
            handles.push(loom::thread::spawn(move || t.cancel()));
        }
        // Monotonicity mid-race: observed-cancelled stays cancelled.
        if token.is_cancelled() {
            assert!(token.is_cancelled(), "token flipped back");
        }
        for h in handles {
            h.join().expect("canceller panicked");
        }
        assert!(token.is_cancelled());
    });
}
