//! Batched transient sweeps over value-variants of one netlist.
//!
//! All scenarios of a [`NetlistSweep`] share the template circuit's
//! *topology*: the `apply` closure may only change element values
//! (through [`Circuit::set_resistance`](ams_net::Circuit::set_resistance)
//! and friends, which cannot alter connectivity). That invariant is what
//! the batch amortizes on:
//!
//! * the `ams-lint` MNA checks run **once**, on the template, not per
//!   scenario;
//! * with the sparse backend, the first scenario's symbolic LU analysis
//!   (ordering, pivot sequence, fill pattern) is exported and adopted by
//!   every other scenario's solver, which then pays only numeric
//!   refactorization — see the `e10_sweep_throughput` benchmark for the
//!   measured win.

use crate::engine::{run_sharded, HookFactory};
use crate::report::{ScenarioResult, SweepReport};
use crate::spec::{Scenario, SweepSpec};
use crate::{CancelToken, SweepError};
use ams_core::ClusterStats;
use ams_exec::ExecStats;
use ams_lint::{classify_point, lint_circuit, lint_space, LintPolicy, SpaceSpec};
use ams_monitor::{codes as mon_codes, MonitorBank, MonitorSpec, Verdict, VERDICT_SLOTS};
use ams_net::{
    AdaptiveOptions, Checkpoint, Circuit, IntegrationMethod, LaneSymbolicFactor,
    LaneTransientSolver, NetError, NodeId, ScenarioProbe, SolverBackend, SymbolicFactor,
    TransientSolver, TransientStats,
};
use ams_scope::{scenario_arg, ScopeTrace, SpanKind, Tracer};

/// How each scenario's transient analysis is stepped.
#[derive(Debug, Clone)]
pub enum RunMode {
    /// Fixed-step integration to `t_end` with step `h`.
    Fixed {
        /// Simulation horizon in seconds.
        t_end: f64,
        /// Timestep in seconds.
        h: f64,
    },
    /// Adaptive step-doubling integration to `t_end`.
    Adaptive {
        /// Simulation horizon in seconds.
        t_end: f64,
        /// Error-controller options.
        opts: AdaptiveOptions,
    },
}

/// A per-scenario completion callback: `(scenario index, metric row,
/// solver counters, monitor verdicts)`. Runs on whichever thread
/// finished the scenario, so implementations must be `Send + Sync`;
/// keyed by index, the stream is order-independent. The counters are
/// the same [`ClusterStats`] the scenario's [`ScenarioResult`] will
/// carry, and the verdicts the same slice (empty with no monitors
/// attached), so a consumer can persist resumable, fingerprint-grade
/// partial results (lane runs report the bundle's counters for every
/// scenario in the bundle, exactly as the report does).
pub type ProgressFn =
    std::sync::Arc<dyn Fn(usize, &[f64], &ClusterStats, &[Verdict]) + Send + Sync>;

/// A slot that receives the symbolic factor scenario 0 exports, letting
/// callers keep it warm across runs of the same topology (`ams-serve`'s
/// topology cache). Filled once scenario 0 completes; left untouched
/// when the run was itself seeded by [`NetlistSweep::symbolic_hint`]
/// (nothing new was analyzed) or the backend is dense.
pub type FactorSink = std::sync::Arc<std::sync::Mutex<Option<SymbolicFactor>>>;

/// What one lane bundle produces: the `K` metric rows (padding lanes
/// included), the bundle's counters, and — when asked to export — the
/// lane symbolic factor for sibling bundles.
type BundleOutcome<const K: usize> = (Vec<Vec<f64>>, ClusterStats, Option<LaneSymbolicFactor<K>>);

/// A monitor spec resolved against the template circuit: the prototype
/// (unfed) bank every scenario clones, and the node each bank channel
/// probes (parallel to [`MonitorBank::channels`]). Resolution happens
/// once per run — unknown channel names reject the batch before any
/// scenario is built.
struct ResolvedMonitors {
    bank: MonitorBank,
    nodes: Vec<NodeId>,
}

/// Appends each verdict's [`Verdict::encode`] slots to a metric row —
/// the transport that carries verdicts through the sharded engine
/// without widening its `(row, stats)` item shape.
pub(crate) fn push_verdict_slots(row: &mut Vec<f64>, verdicts: &[Verdict]) {
    for v in verdicts {
        row.extend_from_slice(&v.encode());
    }
}

/// Decodes a slice of transported verdict slots (a multiple of
/// [`VERDICT_SLOTS`] wide, possibly empty).
pub(crate) fn decode_verdict_slots(tail: &[f64]) -> Vec<Verdict> {
    tail.chunks_exact(VERDICT_SLOTS)
        .map(|c| Verdict::decode(c.try_into().expect("verdict slot width")))
        .collect()
}

/// Splits a transported row back into its metric prefix and decoded
/// verdicts — the inverse of [`push_verdict_slots`]. With no monitors
/// attached the tail is empty and the row passes through untouched.
pub(crate) fn split_verdict_slots(mut row: Vec<f64>, n_metrics: usize) -> (Vec<f64>, Vec<Verdict>) {
    let verdicts = decode_verdict_slots(&row[n_metrics..]);
    row.truncate(n_metrics);
    (row, verdicts)
}

/// Emits one [`SpanKind::Monitor`] instant per property verdict,
/// timestamped with the witness point's simulated time (the horizon
/// for non-failures); `arg` = property index `<< 8 |` violation-code
/// number (low byte 0 for a pass or vacuous verdict).
pub(crate) fn emit_monitor_instants(tracer: &mut Tracer, verdicts: &[Verdict], t_end: f64) {
    for (i, v) in verdicts.iter().enumerate() {
        let (t, code) = match v {
            Verdict::Fail { code, t, .. } => (*t, mon_codes::code_number(code).unwrap_or(0)),
            _ => (t_end, 0),
        };
        tracer.instant(
            SpanKind::Monitor,
            (t * 1e15) as u64,
            ((i as u64) << 8) | u64::from(code),
        );
    }
}

/// A batched transient sweep over one circuit topology.
#[derive(Clone)]
pub struct NetlistSweep {
    template: Circuit,
    method: IntegrationMethod,
    backend: SolverBackend,
    mode: RunMode,
    share_symbolic: bool,
    lint: LintPolicy,
    space: Option<SpaceSpec>,
    context: String,
    trace: bool,
    hooks: Option<HookFactory>,
    pre_linted: bool,
    symbolic_hint: Option<SymbolicFactor>,
    cancel: Option<CancelToken>,
    progress: Option<ProgressFn>,
    factor_sink: Option<FactorSink>,
    lanes: usize,
    prefix_t0: Option<f64>,
    monitors: Option<MonitorSpec>,
}

impl std::fmt::Debug for NetlistSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistSweep")
            .field("method", &self.method)
            .field("backend", &self.backend)
            .field("mode", &self.mode)
            .field("share_symbolic", &self.share_symbolic)
            .field("space", &self.space.is_some())
            .field("context", &self.context)
            .field("trace", &self.trace)
            .field("hooks", &self.hooks.is_some())
            .field("pre_linted", &self.pre_linted)
            .field("symbolic_hint", &self.symbolic_hint.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("progress", &self.progress.is_some())
            .field("factor_sink", &self.factor_sink.is_some())
            .field("prefix_t0", &self.prefix_t0)
            .field("monitors", &self.monitors.is_some())
            .finish_non_exhaustive()
    }
}

impl NetlistSweep {
    /// A sweep over `template` with the given integration method.
    /// Defaults: automatic backend selection, fixed-step 1 µs horizon at
    /// 1 ns, symbolic sharing on, default lint policy.
    pub fn new(template: Circuit, method: IntegrationMethod) -> NetlistSweep {
        NetlistSweep {
            template,
            method,
            backend: SolverBackend::Auto,
            mode: RunMode::Fixed {
                t_end: 1e-6,
                h: 1e-9,
            },
            share_symbolic: true,
            lint: LintPolicy::default(),
            space: None,
            context: "sweep".into(),
            trace: false,
            hooks: None,
            pre_linted: false,
            symbolic_hint: None,
            cancel: None,
            progress: None,
            factor_sink: None,
            lanes: 8,
            prefix_t0: None,
            monitors: None,
        }
    }

    /// Attaches streaming temporal assertion monitors: every scenario
    /// evaluates `spec`'s properties *during* integration (fed on
    /// accepted steps only, exactly when the probe fires — no sample
    /// is buffered), and the report carries one
    /// [`Verdict`](ams_monitor::Verdict) per property per scenario.
    /// Channel names are resolved against the *template* circuit's
    /// node names once per run; an unknown channel rejects the batch
    /// with [`SweepError::Invalid`](crate::SweepError::Invalid).
    ///
    /// Verdicts are part of the report's deterministic surface: they
    /// fold into [`SweepReport::fingerprint`], are bit-identical
    /// across worker counts, survive [`prefix`](NetlistSweep::prefix)
    /// forking unchanged (the prefix run feeds the automata on
    /// `[0, t0]` and every fork continues from that state), and under
    /// [`run_lanes`](NetlistSweep::run_lanes) each lane keeps its own
    /// bank. With tracing enabled each scenario records one
    /// [`SpanKind::Monitor`] instant per property, timestamped with
    /// the violation's witness time.
    pub fn monitors(mut self, spec: MonitorSpec) -> NetlistSweep {
        self.monitors = Some(spec);
        self
    }

    /// Resolves the installed monitor spec (if any) against the
    /// template: builds the prototype bank and maps each channel name
    /// to a node. An empty spec behaves as no monitors at all.
    fn resolve_monitors(&self) -> Result<Option<ResolvedMonitors>, SweepError> {
        let Some(spec) = &self.monitors else {
            return Ok(None);
        };
        if spec.is_empty() {
            return Ok(None);
        }
        let bank = MonitorBank::new(spec);
        let mut nodes = Vec::with_capacity(bank.channels().len());
        for ch in bank.channels() {
            let node = self.template.find_node(ch).ok_or_else(|| {
                SweepError::invalid(format!(
                    "monitor channel {ch:?} names no node in the sweep template"
                ))
            })?;
            nodes.push(node);
        }
        Ok(Some(ResolvedMonitors { bank, nodes }))
    }

    /// Declares the first `t0` seconds of every scenario as a shared
    /// prefix: [`run`](NetlistSweep::run) integrates the *template*
    /// circuit once to `t0` on the coordinator, freezes a
    /// [`Checkpoint`], and forks every scenario from it — each
    /// scenario pays only the `[t0, t_end]` tail of solver work. The
    /// report counts the sharing in [`SweepReport::prefix_forks`] /
    /// [`SweepReport::prefix_steps`] (fingerprint-excluded), and with
    /// tracing enabled the prefix run appears as a
    /// [`SpanKind::Checkpoint`] span on the coordinator track (`arg` =
    /// scenario count) with one `Checkpoint` instant per fork (`arg` =
    /// checkpoint size in bytes).
    ///
    /// **Contract:** sharing is only valid when every scenario's
    /// trajectory is identical to the template's on `[0, t0]` — the
    /// swept parameters must act strictly after `t0` (a
    /// [`Waveform::Pulse`](ams_net::Waveform::Pulse) with
    /// `delay >= t0`, external inputs driven after `t0`, …). The sweep
    /// cannot verify this; a violated contract silently yields forked
    /// trajectories that differ from a run-from-zero sweep.
    ///
    /// Under the contract a **fixed-step** forked sweep is
    /// bit-identical to run-from-zero when `t0` is a step multiple
    /// (the step sequence is unchanged); an **adaptive** prefix
    /// clamps its last step at `t0`, so forked runs are
    /// self-consistent and worker-invariant but not bit-comparable to
    /// run-from-zero. Rejected by
    /// [`run_lanes`](NetlistSweep::run_lanes) at widths above 1
    /// (lane bundles already amortize differently).
    pub fn prefix(mut self, t0: f64) -> NetlistSweep {
        self.prefix_t0 = Some(t0);
        self
    }

    /// Sets the lane width [`run_lanes`](NetlistSweep::run_lanes) packs
    /// scenarios at (default 8). Valid widths are 1 (scalar fallback)
    /// and the [`F64xK`](ams_math::F64xK) bundle widths 4, 8 and 16.
    /// Ignored by [`run`](NetlistSweep::run).
    pub fn lanes(mut self, lanes: usize) -> NetlistSweep {
        self.lanes = lanes;
        self
    }

    /// Declares the template topology as already gated: the lint pass
    /// is skipped entirely (zero lint work per run). For callers that
    /// cache lint verdicts across runs of one topology — `ams-serve`'s
    /// warm path — not for skipping checks that never happened.
    pub fn pre_linted(mut self, pre_linted: bool) -> NetlistSweep {
        self.pre_linted = pre_linted;
        self
    }

    /// Seeds the run with a symbolic factor from a previous run over the
    /// same topology: **every** scenario, including the first, adopts it
    /// and pays only a numeric refactorization — the whole run performs
    /// zero symbolic analyses. A hint whose sparsity pattern does not
    /// match is ignored (a fresh analysis happens as usual).
    pub fn symbolic_hint(mut self, hint: SymbolicFactor) -> NetlistSweep {
        self.symbolic_hint = Some(hint);
        self
    }

    /// Attaches a cancellation token, checked at scenario boundaries on
    /// the coordinator and on every worker. See [`CancelToken`].
    pub fn cancel_token(mut self, token: CancelToken) -> NetlistSweep {
        self.cancel = Some(token);
        self
    }

    /// Installs a per-scenario completion callback for streaming result
    /// delivery: invoked with `(index, metric row)` as soon as each
    /// scenario finishes, before the batch completes. See [`ProgressFn`].
    pub fn on_scenario(mut self, progress: ProgressFn) -> NetlistSweep {
        self.progress = Some(progress);
        self
    }

    /// Installs a sink that receives scenario 0's exported symbolic
    /// factor, for callers that cache it across runs. See [`FactorSink`].
    pub fn factor_sink(mut self, sink: FactorSink) -> NetlistSweep {
        self.factor_sink = Some(sink);
        self
    }

    /// Enables span tracing: every scenario records a
    /// [`SpanKind::Scenario`] span (timestamped in the scenario-index
    /// domain, `arg` = scenario index) with the solver's
    /// assemble/factor/solve/Newton spans folded in. The merged
    /// [`ScopeTrace`] lands in [`SweepReport::trace`] — scenario 0 on
    /// the `coordinator` track, shard `s` on `shard-s`. Disabled (the
    /// default) costs one branch per scenario.
    pub fn trace(mut self, enabled: bool) -> NetlistSweep {
        self.trace = enabled;
        self
    }

    /// Installs an [`ExecHook`](ams_exec::ExecHook) factory: one hook
    /// per worker shard (built on the coordinator in shard order),
    /// observing the shard's scenarios as windows and receiving
    /// `on_finish` with the final aggregate. See
    /// [`HookFactory`](crate::HookFactory).
    pub fn hooks(mut self, factory: HookFactory) -> NetlistSweep {
        self.hooks = Some(factory);
        self
    }

    /// Selects the linear-solver backend for every scenario.
    pub fn backend(mut self, backend: SolverBackend) -> NetlistSweep {
        self.backend = backend;
        self
    }

    /// Fixed-step integration to `t_end` with step `h`.
    pub fn fixed_step(mut self, t_end: f64, h: f64) -> NetlistSweep {
        self.mode = RunMode::Fixed { t_end, h };
        self
    }

    /// Adaptive integration to `t_end` with the given controller options.
    pub fn adaptive(mut self, t_end: f64, opts: AdaptiveOptions) -> NetlistSweep {
        self.mode = RunMode::Adaptive { t_end, opts };
        self
    }

    /// Enables or disables cross-scenario symbolic-factor sharing
    /// (enabled by default; disabling is mainly for benchmarking the
    /// amortization itself).
    pub fn share_symbolic(mut self, share: bool) -> NetlistSweep {
        self.share_symbolic = share;
        self
    }

    /// Sets the lint policy gating the template topology.
    pub fn lint_policy(mut self, policy: LintPolicy) -> NetlistSweep {
        self.lint = policy;
        self
    }

    /// Installs a sweep-space abstract-interpretation spec: before any
    /// scenario runs, `ams-lint::space` interval-analyzes the whole
    /// parameter box once per batch. The outcome is gated by the same
    /// [`LintPolicy`] as the concrete checks:
    ///
    /// * a policy-denied space-wide defect (`SPC004` unknown bind,
    ///   `SPC005` structural defect at every corner) rejects the batch
    ///   with [`SweepError::Lint`](crate::SweepError::Lint);
    /// * a policy-denied corner-dependent defect (`SPC001` domain
    ///   crossing, `SPC002` singular corner) **prunes** exactly the
    ///   statically doomed scenarios — each one re-classified at its
    ///   concrete point — and lists them in
    ///   [`SweepReport::space_pruned`]; survivors keep their indices
    ///   and seeds, so the pruned run is bit-compatible with a
    ///   hand-filtered spec at any worker count. A batch whose every
    ///   scenario is doomed is rejected outright;
    /// * warnings (`SPC003` unsafe timestep, `SPC006` lane hazard) are
    ///   printed and counted like any other lint warning.
    ///
    /// With tracing enabled the pass records a
    /// [`SpanKind::SpaceLint`] span on the coordinator track (`arg` =
    /// scenario count of the incoming batch).
    pub fn space(mut self, spec: SpaceSpec) -> NetlistSweep {
        self.space = Some(spec);
        self
    }

    /// Names the sweep for lint reports and diagnostics.
    pub fn context(mut self, context: impl Into<String>) -> NetlistSweep {
        self.context = context.into();
        self
    }

    /// Lints the template topology without running anything — for
    /// `--lint-only` tooling.
    pub fn lint_report(&self) -> ams_lint::LintReport {
        lint_circuit(self.context.clone(), &self.template)
    }

    /// Runs the installed space pass (if any) and applies the policy:
    /// whole-batch rejection, scenario pruning, or pass-through. See
    /// [`NetlistSweep::space`]. Returns the pruned spec when anything
    /// was removed; `None` leaves the caller's spec untouched.
    fn space_gate(
        &self,
        spec: &SweepSpec,
        tracer: &mut Tracer,
        lint_warnings: &mut usize,
        pruned: &mut Vec<(usize, String)>,
    ) -> Result<Option<SweepSpec>, SweepError> {
        let Some(sspec) = &self.space else {
            return Ok(None);
        };
        let traced = tracer.is_enabled();
        if traced {
            tracer.begin_with(SpanKind::SpaceLint, 0, spec.len() as u64);
        }
        let sr = lint_space(self.context.clone(), &self.template, sspec);
        if traced {
            tracer.end_with(SpanKind::SpaceLint, 0, spec.len() as u64);
        }
        for d in self.lint.warned(&sr.report) {
            eprintln!("[{}] warning: {d}", self.context);
        }
        *lint_warnings += self.lint.warned(&sr.report).len();
        let denied = self.lint.denied(&sr.report);
        if denied.is_empty() {
            return Ok(None);
        }
        // Corner-dependent codes re-classify per scenario and prune;
        // any other denied code dooms the whole box, so the batch is
        // rejected before a single solver is built.
        let prunable = [ams_lint::codes::SPC001, ams_lint::codes::SPC002];
        if denied.iter().any(|d| !prunable.contains(&d.code)) {
            return Err(SweepError::Lint(sr.report));
        }
        let mut survivors = spec.clone();
        survivors.retain(|sc| {
            match classify_point(&self.template, sspec, sc.names(), sc.values()) {
                Some(code) => {
                    pruned.push((sc.index(), code.to_string()));
                    false
                }
                None => true,
            }
        });
        if survivors.is_empty() {
            return Err(SweepError::Lint(sr.report));
        }
        Ok(Some(survivors))
    }

    /// Runs every scenario of `spec` on up to `workers` threads and
    /// aggregates a [`SweepReport`].
    ///
    /// `apply` receives a clone of the template and the scenario, and
    /// writes the scenario's parameter values into it (element-value
    /// mutators only — the topology must stay fixed). `observe` is the
    /// probe: it runs after every accepted step with the solver and the
    /// scenario's metric slots (initialized to NaN; one slot per name in
    /// `metrics`), and typically records last/extreme values.
    ///
    /// The first scenario always runs on the coordinator thread; with a
    /// sparse backend its symbolic analysis seeds every other scenario's
    /// solver. Scheduling, seeds and the shared factor are all
    /// independent of `workers`, so the report is **bit-identical**
    /// across worker counts.
    ///
    /// # Errors
    ///
    /// * [`SweepError::Lint`] when the template fails the policy gate.
    /// * [`SweepError::Invalid`] for an empty spec or empty metric list.
    /// * [`SweepError::Scenario`] for the lowest-indexed failing
    ///   scenario.
    pub fn run<A, O>(
        &self,
        spec: &SweepSpec,
        workers: usize,
        metrics: &[&str],
        apply: A,
        observe: O,
    ) -> Result<SweepReport, SweepError>
    where
        A: Fn(&mut Circuit, &Scenario) -> Result<(), NetError> + Sync,
        O: Fn(&TransientSolver, &mut [f64]) + Sync,
    {
        if spec.is_empty() {
            return Err(SweepError::invalid("sweep spec has no scenarios"));
        }
        if metrics.is_empty() {
            return Err(SweepError::invalid("sweep needs at least one metric"));
        }

        // Lint gate: once per topology, never per scenario — and not at
        // all when the caller holds a cached verdict (`pre_linted`).
        let mut lint_warnings = if self.pre_linted {
            0
        } else {
            let report = self.lint_report();
            if !self.lint.denied(&report).is_empty() {
                return Err(SweepError::Lint(report));
            }
            for d in self.lint.warned(&report) {
                eprintln!("[{}] warning: {d}", self.context);
            }
            self.lint.warned(&report).len()
        };

        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(SweepError::Cancelled);
        }

        let mut coord_tracer = if self.trace {
            Tracer::on()
        } else {
            Tracer::off()
        };

        // Space gate: one abstract-interpretation pass over the whole
        // parameter box; statically doomed scenarios never reach a
        // solver.
        let mut space_pruned = Vec::new();
        let gated;
        let spec = match self.space_gate(
            spec,
            &mut coord_tracer,
            &mut lint_warnings,
            &mut space_pruned,
        )? {
            Some(s) => {
                gated = s;
                &gated
            }
            None => spec,
        };

        // Prefix sharing replaces the scenario loop wholesale: one
        // coordinator run to t0, then every scenario forks.
        if let Some(t0) = self.prefix_t0 {
            return self.run_prefixed(
                spec,
                workers,
                metrics,
                &apply,
                &observe,
                t0,
                coord_tracer,
                lint_warnings,
                space_pruned,
            );
        }

        let scenarios = spec.scenarios();
        let n_metrics = metrics.len();
        let mon = self.resolve_monitors()?;
        let mon_ref = mon.as_ref();
        let n_slots = mon_ref.map_or(0, |m| m.bank.len() * VERDICT_SLOTS);

        // Scenario 0 runs inline on the coordinator: it seeds the shared
        // symbolic factor, so every worker count sees the same pivot
        // sequence.
        let first = &scenarios[0];
        let (first_vals, first_stats, first_verdicts, exported) = self.run_scenario(
            first,
            self.symbolic_hint.as_ref(),
            self.symbolic_hint.is_none(),
            n_metrics,
            mon_ref,
            &mut coord_tracer,
            &apply,
            &observe,
        )?;
        if let Some(p) = &self.progress {
            p(first.index(), &first_vals, &first_stats, &first_verdicts);
        }
        if let (Some(sink), Some(f)) = (&self.factor_sink, &exported) {
            *sink.lock().expect("factor sink poisoned") = Some(f.clone());
        }

        let rest = &scenarios[1..];
        // An externally supplied factor wins; otherwise scenario 0's
        // export seeds the siblings as before.
        let hint_ref = self.symbolic_hint.as_ref().or(exported.as_ref());
        let mut shard = run_sharded(
            rest.len(),
            n_metrics + n_slots,
            workers,
            self.trace,
            self.hooks.as_ref(),
            |_slot, _items| Ok(()),
            |_state: &mut (), item, tracer: &mut Tracer| {
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(SweepError::Cancelled);
                }
                let (vals, stats, verdicts, _) = self.run_scenario(
                    &rest[item],
                    hint_ref,
                    false,
                    n_metrics,
                    mon_ref,
                    tracer,
                    &apply,
                    &observe,
                )?;
                if let Some(p) = &self.progress {
                    p(rest[item].index(), &vals, &stats, &verdicts);
                }
                // Verdicts ride home in extra row slots; the report
                // assembly strips and decodes them.
                let mut row = vals;
                push_verdict_slots(&mut row, &verdicts);
                Ok((row, stats))
            },
        )?;

        let mut results = Vec::with_capacity(scenarios.len());
        results.push(ScenarioResult {
            index: first.index(),
            label: first.label(),
            metrics: first_vals,
            stats: first_stats,
            verdicts: first_verdicts,
        });
        for (pos, sc) in rest.iter().enumerate() {
            let (metrics_row, verdicts) =
                split_verdict_slots(shard.metrics[pos].clone(), n_metrics);
            results.push(ScenarioResult {
                index: sc.index(),
                label: sc.label(),
                metrics: metrics_row,
                stats: shard.stats[pos],
                verdicts,
            });
        }

        let mut exec = ExecStats {
            windows: scenarios.len() as u64,
            barriers: shard.shards as u64,
            ring_high_water: shard.ring_high_water,
            compute_wall: shard.compute_wall,
            sync_wall: shard.sync_wall,
            lint_warnings,
            ..ExecStats::default()
        };
        for r in &results {
            exec.clusters.push((r.label.clone(), r.stats));
        }

        // Exactly-once finish notification per shard hook, fired on the
        // coordinator after the aggregate exists.
        for h in &mut shard.hooks {
            h.on_finish(&exec);
        }

        let trace = if self.trace {
            let mut t = ScopeTrace::new();
            let own = coord_tracer.take_events();
            if !own.is_empty() {
                t.add_track("coordinator", "scenarios", own);
            }
            for (s, events) in shard.traces.into_iter().enumerate() {
                if !events.is_empty() {
                    t.add_track(format!("shard-{s}"), "scenarios", events);
                }
            }
            Some(t)
        } else {
            None
        };

        Ok(SweepReport {
            metric_names: metrics.iter().map(|m| (*m).to_string()).collect(),
            monitor_names: mon_ref.map(|m| m.bank.names().to_vec()).unwrap_or_default(),
            scenarios: results,
            exec,
            trace,
            lanes: 1,
            bundles: 0,
            space_pruned,
            prefix_forks: 0,
            prefix_steps: 0,
        })
    }

    /// Runs every scenario of `spec` lane-batched: consecutive
    /// scenarios are packed [`lanes`](NetlistSweep::lanes) at a time
    /// into one [`LaneTransientSolver`], which assembles, factors and
    /// solves all of them per instruction stream. The report is the
    /// same per-scenario shape [`run`](NetlistSweep::run) produces.
    ///
    /// `observe` receives a [`ScenarioProbe`] instead of a concrete
    /// solver — the same closure body works against a scalar
    /// [`TransientSolver`] and a lane view, so callers can switch modes
    /// without rewriting their metric extraction. With `lanes(1)` this
    /// method *is* the scalar path (it delegates to `run`), and its
    /// report fingerprints identically to `run`'s.
    ///
    /// Semantics that differ from the scalar path, all inherited from
    /// [`LaneTransientSolver`]:
    ///
    /// * Metric values may deviate from a scalar run by up to ~1e-9
    ///   relative: bundled Newton iterates until every live lane
    ///   converges and adaptive runs share the min-over-lanes step, so
    ///   easy corners get extra (convergent) iterations. Lane-mode
    ///   reports are still **bit-identical across worker counts** —
    ///   bundle composition is index-determined and bundle 0's lane
    ///   factor seeds all shards.
    /// * A diverging scenario surfaces as NaN metrics for its lane
    ///   instead of failing the whole run; the run errors only when a
    ///   bundle loses *all* its lanes (attributed to the bundle's first
    ///   scenario).
    /// * Per-scenario solver counters are the *bundle's* counters (one
    ///   step advances every lane), so [`SweepReport::totals`]
    ///   over-counts by up to the lane width vs. a scalar run.
    /// * The last bundle is padded by replicating the final scenario;
    ///   padded lanes are dropped before the report is assembled.
    /// * A [`FactorSink`] is left untouched (lane factors are not
    ///   scalar factors); a scalar
    ///   [`symbolic_hint`](NetlistSweep::symbolic_hint) *is* honored by
    ///   widening it to the lane scalar.
    ///
    /// # Errors
    ///
    /// As [`run`](NetlistSweep::run), plus [`SweepError::Invalid`] for
    /// a lane width outside {1, 4, 8, 16}.
    pub fn run_lanes<A, O>(
        &self,
        spec: &SweepSpec,
        workers: usize,
        metrics: &[&str],
        apply: A,
        observe: O,
    ) -> Result<SweepReport, SweepError>
    where
        A: Fn(&mut Circuit, &Scenario) -> Result<(), NetError> + Sync,
        O: Fn(&dyn ScenarioProbe, &mut [f64]) + Sync,
    {
        match self.lanes {
            1 => self.run(spec, workers, metrics, apply, |tr, m| observe(tr, m)),
            4 => self.run_lanes_k::<4, A, O>(spec, workers, metrics, &apply, &observe),
            8 => self.run_lanes_k::<8, A, O>(spec, workers, metrics, &apply, &observe),
            16 => self.run_lanes_k::<16, A, O>(spec, workers, metrics, &apply, &observe),
            other => Err(SweepError::invalid(format!(
                "unsupported lane width {other}: pick 1, 4, 8 or 16"
            ))),
        }
    }

    fn run_lanes_k<const K: usize, A, O>(
        &self,
        spec: &SweepSpec,
        workers: usize,
        metrics: &[&str],
        apply: &A,
        observe: &O,
    ) -> Result<SweepReport, SweepError>
    where
        A: Fn(&mut Circuit, &Scenario) -> Result<(), NetError> + Sync,
        O: Fn(&dyn ScenarioProbe, &mut [f64]) + Sync,
    {
        if spec.is_empty() {
            return Err(SweepError::invalid("sweep spec has no scenarios"));
        }
        if metrics.is_empty() {
            return Err(SweepError::invalid("sweep needs at least one metric"));
        }
        if self.prefix_t0.is_some() {
            return Err(SweepError::invalid(
                "prefix sharing is a scalar-path feature: use lanes(1)",
            ));
        }
        let mut lint_warnings = if self.pre_linted {
            0
        } else {
            let report = self.lint_report();
            if !self.lint.denied(&report).is_empty() {
                return Err(SweepError::Lint(report));
            }
            for d in self.lint.warned(&report) {
                eprintln!("[{}] warning: {d}", self.context);
            }
            self.lint.warned(&report).len()
        };
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(SweepError::Cancelled);
        }

        let mut coord_tracer = if self.trace {
            Tracer::on()
        } else {
            Tracer::off()
        };
        // Space gate, exactly as on the scalar path: pruning happens
        // before bundle composition, so lanes pack only survivors.
        let mut space_pruned = Vec::new();
        let gated;
        let spec = match self.space_gate(
            spec,
            &mut coord_tracer,
            &mut lint_warnings,
            &mut space_pruned,
        )? {
            Some(s) => {
                gated = s;
                &gated
            }
            None => spec,
        };

        let scenarios = spec.scenarios();
        let n = scenarios.len();
        let n_metrics = metrics.len();
        let n_bundles = n.div_ceil(K);
        let mon = self.resolve_monitors()?;
        let mon_ref = mon.as_ref();
        // Each lane's row carries its verdict slots after the metrics.
        let lane_w = n_metrics + mon_ref.map_or(0, |m| m.bank.len() * VERDICT_SLOTS);

        // Bundle 0 runs inline on the coordinator and exports the lane
        // symbolic factor every shard adopts — the pivot sequence is
        // the same at every worker count.
        let (first_rows, first_stats, exported) = self.run_bundle::<K, A, O>(
            scenarios,
            0,
            None,
            self.symbolic_hint.is_none(),
            n_metrics,
            mon_ref,
            &mut coord_tracer,
            apply,
            observe,
        )?;
        let first_used = K.min(n);
        if let Some(p) = &self.progress {
            for (l, sc) in scenarios[..first_used].iter().enumerate() {
                let verdicts = decode_verdict_slots(&first_rows[l][n_metrics..]);
                p(
                    sc.index(),
                    &first_rows[l][..n_metrics],
                    &first_stats,
                    &verdicts,
                );
            }
        }

        let hint_ref = exported.as_ref();
        let mut shard = run_sharded(
            n_bundles - 1,
            K * lane_w,
            workers,
            self.trace,
            self.hooks.as_ref(),
            |_slot, _items| Ok(()),
            |_state: &mut (), item, tracer: &mut Tracer| {
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(SweepError::Cancelled);
                }
                let b = item + 1;
                let (rows, stats, _) = self.run_bundle::<K, A, O>(
                    scenarios, b, hint_ref, false, n_metrics, mon_ref, tracer, apply, observe,
                )?;
                if let Some(p) = &self.progress {
                    let used = K.min(n - b * K);
                    for l in 0..used {
                        let verdicts = decode_verdict_slots(&rows[l][n_metrics..]);
                        p(
                            scenarios[b * K + l].index(),
                            &rows[l][..n_metrics],
                            &stats,
                            &verdicts,
                        );
                    }
                }
                Ok((rows.into_iter().flatten().collect(), stats))
            },
        )?;

        let mut results = Vec::with_capacity(n);
        for (i, sc) in scenarios.iter().enumerate() {
            let (b, l) = (i / K, i % K);
            let (row, stats) = if b == 0 {
                (first_rows[l].clone(), first_stats)
            } else {
                let flat = &shard.metrics[b - 1];
                (
                    flat[l * lane_w..(l + 1) * lane_w].to_vec(),
                    shard.stats[b - 1],
                )
            };
            let (metrics_row, verdicts) = split_verdict_slots(row, n_metrics);
            results.push(ScenarioResult {
                index: sc.index(),
                label: sc.label(),
                metrics: metrics_row,
                stats,
                verdicts,
            });
        }

        let mut exec = ExecStats {
            windows: n as u64,
            barriers: shard.shards as u64,
            ring_high_water: shard.ring_high_water,
            compute_wall: shard.compute_wall,
            sync_wall: shard.sync_wall,
            lint_warnings,
            ..ExecStats::default()
        };
        for r in &results {
            exec.clusters.push((r.label.clone(), r.stats));
        }
        for h in &mut shard.hooks {
            h.on_finish(&exec);
        }

        let trace = if self.trace {
            let mut t = ScopeTrace::new();
            let own = coord_tracer.take_events();
            if !own.is_empty() {
                t.add_track("coordinator", "scenarios", own);
            }
            for (s, events) in shard.traces.into_iter().enumerate() {
                if !events.is_empty() {
                    t.add_track(format!("shard-{s}"), "scenarios", events);
                }
            }
            Some(t)
        } else {
            None
        };

        Ok(SweepReport {
            metric_names: metrics.iter().map(|m| (*m).to_string()).collect(),
            monitor_names: mon_ref.map(|m| m.bank.names().to_vec()).unwrap_or_default(),
            scenarios: results,
            exec,
            trace,
            lanes: K,
            bundles: n_bundles,
            space_pruned,
            prefix_forks: 0,
            prefix_steps: 0,
        })
    }

    /// Runs bundle `b` (scenarios `b*K ..` padded to `K` by replicating
    /// the last): returns all `K` metric rows (padding included — the
    /// caller drops it), the bundle's counters, and (when
    /// `export_hint`) the lane factor for sibling bundles.
    #[allow(clippy::too_many_arguments)]
    fn run_bundle<const K: usize, A, O>(
        &self,
        scenarios: &[Scenario],
        b: usize,
        hint: Option<&LaneSymbolicFactor<K>>,
        export_hint: bool,
        n_metrics: usize,
        mon: Option<&ResolvedMonitors>,
        tracer: &mut Tracer,
        apply: &A,
        observe: &O,
    ) -> Result<BundleOutcome<K>, SweepError>
    where
        A: Fn(&mut Circuit, &Scenario) -> Result<(), NetError> + Sync,
        O: Fn(&dyn ScenarioProbe, &mut [f64]) + Sync,
    {
        let n = scenarios.len();
        let start = b * K;
        let used = K.min(n - start);
        let first_idx = scenarios[start].index();
        let fail = |e: NetError| SweepError::scenario(first_idx, e);

        let mut circuits = Vec::with_capacity(K);
        for l in 0..K {
            let sc = &scenarios[(start + l).min(n - 1)];
            let mut ckt = self.template.clone();
            apply(&mut ckt, sc).map_err(|e| SweepError::scenario(sc.index(), e))?;
            circuits.push(ckt);
        }

        let mut tr = LaneTransientSolver::<K>::new(&circuits, self.method).map_err(fail)?;
        tr.backend = self.backend;
        if self.share_symbolic {
            if let Some(h) = &self.symbolic_hint {
                tr.adopt_scalar_factor(h);
            } else if let Some(h) = hint {
                tr.adopt_symbolic_factor(h);
            }
        }
        let traced = tracer.is_enabled();
        if traced {
            tracer.begin_with(
                SpanKind::Scenario,
                first_idx as u64,
                scenario_arg(first_idx as u64, K),
            );
            tr.set_tracing(true);
        }

        // One monitor bank per live lane: lanes share the instruction
        // stream but each watches its own scenario's waveforms.
        let mut banks: Vec<MonitorBank> = match mon {
            Some(m) => (0..used).map(|_| m.bank.clone()).collect(),
            None => Vec::new(),
        };
        let mut rows = vec![vec![f64::NAN; n_metrics]; K];
        let mut probes = 0u64;
        let run = match &self.mode {
            RunMode::Fixed { t_end, h } => tr.run(*t_end, *h, |s| {
                probes += 1;
                for (l, row) in rows.iter_mut().enumerate().take(used) {
                    let view = s.lane_view(l);
                    observe(&view, row);
                    if let Some(m) = mon {
                        let t = view.time();
                        for (ci, node) in m.nodes.iter().enumerate() {
                            banks[l].feed(ci, t, view.voltage(*node));
                        }
                    }
                }
            }),
            RunMode::Adaptive { t_end, opts } => tr.run_adaptive(*t_end, opts, |s| {
                probes += 1;
                for (l, row) in rows.iter_mut().enumerate().take(used) {
                    let view = s.lane_view(l);
                    observe(&view, row);
                    if let Some(m) = mon {
                        let t = view.time();
                        for (ci, node) in m.nodes.iter().enumerate() {
                            banks[l].feed(ci, t, view.voltage(*node));
                        }
                    }
                }
            }),
        };
        run.map_err(fail)?;
        let lane_verdicts: Vec<Vec<Verdict>> = banks.iter().map(MonitorBank::finish).collect();
        if let Some(m) = mon {
            // Padding lanes replicate the last scenario's circuit but
            // carry no bank; their slots are vacuous and dropped at
            // assembly (rows must stay uniform for the flat transport).
            let pad = vec![Verdict::Vacuous; m.bank.len()];
            for (l, row) in rows.iter_mut().enumerate() {
                push_verdict_slots(row, lane_verdicts.get(l).unwrap_or(&pad));
            }
        }
        if traced {
            tracer.extend(tr.take_trace_events());
            for verdicts in &lane_verdicts {
                emit_monitor_instants(tracer, verdicts, self.horizon());
            }
            tracer.end_with(
                SpanKind::Scenario,
                scenarios[start + used - 1].index() as u64 + 1,
                scenario_arg(first_idx as u64, K),
            );
        }

        let stats = cluster_stats(tr.stats(), probes);
        let exported = if export_hint && self.share_symbolic {
            tr.symbolic_factor()
        } else {
            None
        };
        Ok((rows, stats, exported))
    }

    /// The prefix-shared scenario loop (see [`NetlistSweep::prefix`]):
    /// integrates the template once to `t0` on the coordinator, takes a
    /// [`Checkpoint`], then runs **every** scenario as a fork of it
    /// through the sharded engine. Scheduling and the shared factor
    /// are worker-independent, so the report stays bit-identical
    /// across worker counts.
    #[allow(clippy::too_many_arguments)]
    fn run_prefixed<A, O>(
        &self,
        spec: &SweepSpec,
        workers: usize,
        metrics: &[&str],
        apply: &A,
        observe: &O,
        t0: f64,
        mut coord_tracer: Tracer,
        lint_warnings: usize,
        space_pruned: Vec<(usize, String)>,
    ) -> Result<SweepReport, SweepError>
    where
        A: Fn(&mut Circuit, &Scenario) -> Result<(), NetError> + Sync,
        O: Fn(&TransientSolver, &mut [f64]) + Sync,
    {
        let t_end = match &self.mode {
            RunMode::Fixed { t_end, .. } | RunMode::Adaptive { t_end, .. } => *t_end,
        };
        if !t0.is_finite() || t0 <= 0.0 || t0 >= t_end {
            return Err(SweepError::invalid(format!(
                "prefix t0 = {t0} must satisfy 0 < t0 < t_end = {t_end}"
            )));
        }

        let scenarios = spec.scenarios();
        let n = scenarios.len();
        let n_metrics = metrics.len();
        let mon = self.resolve_monitors()?;
        let n_slots = mon.as_ref().map_or(0, |m| m.bank.len() * VERDICT_SLOTS);

        // The shared prefix integrates the *template* — the contract
        // guarantees every scenario is indistinguishable from it on
        // [0, t0]. Prefix failures are batch failures, not scenario
        // failures: no scenario's parameters are in play yet.
        let mut pre = TransientSolver::new(&self.template, self.method).map_err(SweepError::Net)?;
        pre.backend = self.backend;
        if let (true, Some(h)) = (self.share_symbolic, self.symbolic_hint.as_ref()) {
            pre.adopt_symbolic_factor(h);
        }
        // Monitors watch the whole trajectory: the prefix feeds the
        // prototype bank on [0, t0] and every fork resumes from that
        // fed state — verdicts match a run-from-zero scenario.
        if let Some(m) = &mon {
            pre.attach_monitors(m.bank.clone(), &m.nodes);
        }
        let traced = coord_tracer.is_enabled();
        if traced {
            coord_tracer.begin_with(SpanKind::Checkpoint, 0, n as u64);
            pre.set_tracing(true);
        }

        // The prefix observes into a template metric row every fork
        // starts from, so whole-trajectory metrics (max, integral, …)
        // see exactly what a run-from-zero scenario would.
        let mut prefix_vals = vec![f64::NAN; n_metrics];
        let mut prefix_probes = 0u64;
        let run = match &self.mode {
            RunMode::Fixed { h, .. } => pre.run(t0, *h, |s| {
                prefix_probes += 1;
                observe(s, &mut prefix_vals);
            }),
            RunMode::Adaptive { opts, .. } => pre.run_adaptive(t0, opts, |s| {
                prefix_probes += 1;
                observe(s, &mut prefix_vals);
            }),
        };
        run.map_err(SweepError::Net)?;
        let cp = pre.checkpoint();
        let prefix_steps = pre.stats().steps;
        // Swap the prototype for the fed bank: forks clone automaton
        // state as of t0, not fresh monitors.
        let mon = mon.map(|m| ResolvedMonitors {
            bank: pre.take_monitors().expect("prefix monitors attached"),
            nodes: m.nodes,
        });
        let mon_ref = mon.as_ref();
        if traced {
            coord_tracer.extend(pre.take_trace_events());
            coord_tracer.end_with(SpanKind::Checkpoint, 1, n as u64);
        }

        // The prefix run doubles as the symbolic-analysis donor the
        // inline scenario 0 is on the plain path.
        let exported = if self.share_symbolic && self.symbolic_hint.is_none() {
            pre.symbolic_factor()
        } else {
            None
        };
        if let (Some(sink), Some(f)) = (&self.factor_sink, &exported) {
            *sink.lock().expect("factor sink poisoned") = Some(f.clone());
        }
        let hint_ref = self.symbolic_hint.as_ref().or(exported.as_ref());

        let mut shard = run_sharded(
            n,
            n_metrics + n_slots,
            workers,
            self.trace,
            self.hooks.as_ref(),
            |_slot, _items| Ok(()),
            |_state: &mut (), item, tracer: &mut Tracer| {
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(SweepError::Cancelled);
                }
                let (vals, stats, verdicts) = self.run_scenario_forked(
                    &scenarios[item],
                    &cp,
                    hint_ref,
                    &prefix_vals,
                    prefix_probes,
                    mon_ref,
                    tracer,
                    apply,
                    observe,
                )?;
                if let Some(p) = &self.progress {
                    p(scenarios[item].index(), &vals, &stats, &verdicts);
                }
                let mut row = vals;
                push_verdict_slots(&mut row, &verdicts);
                Ok((row, stats))
            },
        )?;

        let mut results = Vec::with_capacity(n);
        for (pos, sc) in scenarios.iter().enumerate() {
            let (metrics_row, verdicts) =
                split_verdict_slots(shard.metrics[pos].clone(), n_metrics);
            results.push(ScenarioResult {
                index: sc.index(),
                label: sc.label(),
                metrics: metrics_row,
                stats: shard.stats[pos],
                verdicts,
            });
        }

        let mut exec = ExecStats {
            windows: n as u64,
            barriers: shard.shards as u64,
            ring_high_water: shard.ring_high_water,
            compute_wall: shard.compute_wall,
            sync_wall: shard.sync_wall,
            lint_warnings,
            ..ExecStats::default()
        };
        for r in &results {
            exec.clusters.push((r.label.clone(), r.stats));
        }
        for h in &mut shard.hooks {
            h.on_finish(&exec);
        }

        let trace = if self.trace {
            let mut t = ScopeTrace::new();
            let own = coord_tracer.take_events();
            if !own.is_empty() {
                t.add_track("coordinator", "scenarios", own);
            }
            for (s, events) in shard.traces.into_iter().enumerate() {
                if !events.is_empty() {
                    t.add_track(format!("shard-{s}"), "scenarios", events);
                }
            }
            Some(t)
        } else {
            None
        };

        Ok(SweepReport {
            metric_names: metrics.iter().map(|m| (*m).to_string()).collect(),
            monitor_names: mon_ref.map(|m| m.bank.names().to_vec()).unwrap_or_default(),
            scenarios: results,
            exec,
            trace,
            lanes: 1,
            bundles: 0,
            space_pruned,
            prefix_forks: n as u64,
            prefix_steps,
        })
    }

    /// Runs one scenario as a fork of the shared-prefix checkpoint:
    /// apply the scenario's values to a template clone, restore `cp`,
    /// and integrate only `[t0, t_end]`. The restored step counters
    /// continue from the checkpoint's, so the scenario's stats — and
    /// with them the report fingerprint — accumulate to run-from-zero
    /// totals.
    #[allow(clippy::too_many_arguments)]
    fn run_scenario_forked<A, O>(
        &self,
        sc: &Scenario,
        cp: &Checkpoint,
        hint: Option<&SymbolicFactor>,
        prefix_vals: &[f64],
        prefix_probes: u64,
        mon: Option<&ResolvedMonitors>,
        tracer: &mut Tracer,
        apply: &A,
        observe: &O,
    ) -> Result<(Vec<f64>, ClusterStats, Vec<Verdict>), SweepError>
    where
        A: Fn(&mut Circuit, &Scenario) -> Result<(), NetError> + Sync,
        O: Fn(&TransientSolver, &mut [f64]) + Sync,
    {
        let fail = |e: NetError| SweepError::scenario(sc.index(), e);
        let mut ckt = self.template.clone();
        apply(&mut ckt, sc).map_err(fail)?;
        let mut tr = TransientSolver::new(&ckt, self.method).map_err(fail)?;
        tr.backend = self.backend;
        if let (true, Some(h)) = (self.share_symbolic, hint) {
            tr.adopt_symbolic_factor(h);
        }
        tr.restore_checkpoint(cp).map_err(fail)?;
        // Checkpoints deliberately exclude monitor state; the fork
        // resumes from the bank the prefix run already fed on [0, t0],
        // so verdicts match a run-from-zero scenario.
        if let Some(m) = mon {
            tr.attach_monitors(m.bank.clone(), &m.nodes);
        }
        let traced = tracer.is_enabled();
        if traced {
            tracer.begin_with(SpanKind::Scenario, sc.index() as u64, sc.index() as u64);
            tracer.instant(
                SpanKind::Checkpoint,
                sc.index() as u64,
                cp.approx_bytes() as u64,
            );
            tr.set_tracing(true);
        }

        let mut vals = prefix_vals.to_vec();
        let mut probes = prefix_probes;
        let run = match &self.mode {
            RunMode::Fixed { t_end, h } => tr.run(*t_end, *h, |s| {
                probes += 1;
                observe(s, &mut vals);
            }),
            RunMode::Adaptive { t_end, opts } => tr.run_adaptive(*t_end, opts, |s| {
                probes += 1;
                observe(s, &mut vals);
            }),
        };
        run.map_err(fail)?;
        let verdicts = tr
            .monitor_bank()
            .map(MonitorBank::finish)
            .unwrap_or_default();
        if traced {
            tracer.extend(tr.take_trace_events());
            emit_monitor_instants(tracer, &verdicts, self.horizon());
            tracer.end_with(SpanKind::Scenario, sc.index() as u64 + 1, sc.index() as u64);
        }
        Ok((vals, cluster_stats(tr.stats(), probes), verdicts))
    }

    /// Runs one scenario; returns its metric row, counters, monitor
    /// verdicts (empty without monitors) and (when `export_hint`) the
    /// symbolic factor for siblings to adopt.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn run_scenario<A, O>(
        &self,
        sc: &Scenario,
        hint: Option<&SymbolicFactor>,
        export_hint: bool,
        n_metrics: usize,
        mon: Option<&ResolvedMonitors>,
        tracer: &mut Tracer,
        apply: &A,
        observe: &O,
    ) -> Result<(Vec<f64>, ClusterStats, Vec<Verdict>, Option<SymbolicFactor>), SweepError>
    where
        A: Fn(&mut Circuit, &Scenario) -> Result<(), NetError> + Sync,
        O: Fn(&TransientSolver, &mut [f64]) + Sync,
    {
        let fail = |e: NetError| SweepError::scenario(sc.index(), e);
        let mut ckt = self.template.clone();
        apply(&mut ckt, sc).map_err(fail)?;
        let mut tr = TransientSolver::new(&ckt, self.method).map_err(fail)?;
        tr.backend = self.backend;
        if let (true, Some(h)) = (self.share_symbolic, hint) {
            tr.adopt_symbolic_factor(h);
        }
        if let Some(m) = mon {
            tr.attach_monitors(m.bank.clone(), &m.nodes);
        }
        let traced = tracer.is_enabled();
        if traced {
            tracer.begin_with(SpanKind::Scenario, sc.index() as u64, sc.index() as u64);
            tr.set_tracing(true);
        }

        let mut vals = vec![f64::NAN; n_metrics];
        let mut probes = 0u64;
        let run = match &self.mode {
            RunMode::Fixed { t_end, h } => tr.run(*t_end, *h, |s| {
                probes += 1;
                observe(s, &mut vals);
            }),
            RunMode::Adaptive { t_end, opts } => tr.run_adaptive(*t_end, opts, |s| {
                probes += 1;
                observe(s, &mut vals);
            }),
        };
        run.map_err(fail)?;
        let verdicts = tr
            .monitor_bank()
            .map(MonitorBank::finish)
            .unwrap_or_default();
        if traced {
            // Solver spans ride on the same track, inside the scenario
            // span (solver timestamps are the scenario's local simulated
            // time; the span itself lives in the index domain).
            tracer.extend(tr.take_trace_events());
            emit_monitor_instants(tracer, &verdicts, self.horizon());
            tracer.end_with(SpanKind::Scenario, sc.index() as u64 + 1, sc.index() as u64);
        }

        let stats = cluster_stats(tr.stats(), probes);
        let exported = if export_hint && self.share_symbolic {
            tr.symbolic_factor()
        } else {
            None
        };
        Ok((vals, stats, verdicts, exported))
    }

    /// The simulation horizon of the configured [`RunMode`].
    fn horizon(&self) -> f64 {
        match &self.mode {
            RunMode::Fixed { t_end, .. } | RunMode::Adaptive { t_end, .. } => *t_end,
        }
    }
}

/// Maps a scenario's transient counters onto the common
/// [`ClusterStats`] shape: accepted steps count as iterations, rejected
/// steps as firings (the only spare monotonic counter), probe calls as
/// probe samples.
fn cluster_stats(t: TransientStats, probes: u64) -> ClusterStats {
    ClusterStats {
        iterations: t.steps,
        firings: t.rejected,
        probe_samples: probes,
        newton_iterations: t.newton_iterations,
        factorizations: t.factorizations,
        solve: t.solve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_net::NodeId;

    struct Rc {
        ckt: Circuit,
        r: ams_net::ElementId,
        out: NodeId,
    }

    fn rc() -> Rc {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("V", inp, Circuit::GROUND, 1.0).unwrap();
        let r = ckt.resistor("R", inp, out, 1e3).unwrap();
        ckt.capacitor("C", out, Circuit::GROUND, 1e-9).unwrap();
        Rc { ckt, r, out }
    }

    #[test]
    fn grid_sweep_reproduces_serial_answers() {
        let Rc { ckt, r, out } = rc();
        let values = [0.5e3, 1e3, 2e3, 4e3];
        let spec = SweepSpec::grid(&[("r", &values)], 1).unwrap();
        let sweep =
            NetlistSweep::new(ckt.clone(), IntegrationMethod::Trapezoidal).fixed_step(2e-6, 2e-9);
        let report = sweep
            .run(
                &spec,
                3,
                &["v_out"],
                |c, sc| c.set_resistance(r, sc.value("r")),
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap();

        assert_eq!(report.scenarios.len(), 4);
        // Slower RC (larger R) charges less by the fixed horizon.
        let v = report.values("v_out").unwrap();
        assert!(v.windows(2).all(|w| w[0] > w[1]), "{v:?}");

        // Each scenario matches a plain serial solver over the same
        // variant exactly (dense auto backend here, no hint in play).
        for (sc, row) in spec.scenarios().iter().zip(&report.scenarios) {
            let mut variant = ckt.clone();
            variant.set_resistance(r, sc.value("r")).unwrap();
            let mut tr = TransientSolver::new(&variant, IntegrationMethod::Trapezoidal).unwrap();
            let mut last = f64::NAN;
            tr.run(2e-6, 2e-9, |s| last = s.voltage(out)).unwrap();
            assert_eq!(row.metrics[0], last, "scenario {}", sc.index());
        }
    }

    #[test]
    fn empty_spec_and_metrics_are_rejected() {
        let Rc { ckt, r, .. } = rc();
        let mut spec = SweepSpec::grid(&[("r", &[1e3])], 0).unwrap();
        let sweep = NetlistSweep::new(ckt, IntegrationMethod::BackwardEuler);
        assert!(matches!(
            sweep.run(
                &spec,
                1,
                &[],
                |c, s| c.set_resistance(r, s.value("r")),
                |_, _| {}
            ),
            Err(SweepError::Invalid(_))
        ));
        spec.retain(|_| false);
        assert!(matches!(
            sweep.run(
                &spec,
                1,
                &["m"],
                |c, s| c.set_resistance(r, s.value("r")),
                |_, _| {}
            ),
            Err(SweepError::Invalid(_))
        ));
    }

    #[test]
    fn failing_scenario_is_identified_by_lowest_index() {
        let Rc { ckt, r, out } = rc();
        let spec = SweepSpec::grid(&[("r", &[1e3, -1.0, 2e3, -2.0])], 0).unwrap();
        let err = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .fixed_step(1e-7, 1e-9)
            .run(
                &spec,
                2,
                &["v"],
                |c, sc| c.set_resistance(r, sc.value("r")),
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap_err();
        match err {
            SweepError::Scenario { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn trace_attributes_solver_spans_to_scenarios() {
        use ams_scope::Phase;
        let Rc { ckt, r, out } = rc();
        let spec = SweepSpec::grid(&[("r", &[0.5e3, 1e3, 2e3, 4e3])], 1).unwrap();
        let report = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .fixed_step(1e-7, 1e-9)
            .trace(true)
            .run(
                &spec,
                2,
                &["v"],
                |c, sc| c.set_resistance(r, sc.value("r")),
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap();

        let trace = report.trace.as_ref().expect("trace enabled");
        // Scenario 0 ran inline: its span and the solver's spans are on
        // the coordinator track.
        let coord = trace
            .tracks
            .iter()
            .find(|t| t.process == "coordinator")
            .expect("coordinator track");
        assert_eq!(coord.thread, "scenarios");
        assert!(coord
            .events
            .iter()
            .any(|e| e.kind == SpanKind::Scenario && e.arg == 0));
        assert!(coord.events.iter().any(|e| e.kind == SpanKind::MnaSolve));

        // Every scenario index appears exactly once as a Scenario begin,
        // spread over coordinator + shard tracks.
        let mut indices: Vec<u64> = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == SpanKind::Scenario && e.phase == Phase::Begin)
            .map(|e| e.arg)
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        for t in &trace.tracks {
            assert!(t.process == "coordinator" || t.process.starts_with("shard-"));
        }
    }

    #[test]
    fn lint_gate_rejects_ill_posed_templates_once() {
        // A floating node: MNA lint flags it, the sweep refuses to run.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.node("floating");
        ckt.voltage_source("V", a, Circuit::GROUND, 1.0).unwrap();
        let spec = SweepSpec::grid(&[("x", &[1.0, 2.0])], 0).unwrap();
        let err = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .run(&spec, 1, &["m"], |_, _| Ok(()), |_, _| {})
            .unwrap_err();
        match err {
            SweepError::Lint(report) => assert!(report.error_count() > 0),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn lane_run_matches_scalar_run_with_a_padded_final_bundle() {
        let Rc { ckt, r, out } = rc();
        // 10 scenarios at width 4: bundles of 4 + 4 + 2 (padded to 4).
        let values = [
            0.4e3, 0.6e3, 0.8e3, 1e3, 1.3e3, 1.7e3, 2.2e3, 2.8e3, 3.5e3, 4.5e3,
        ];
        let spec = SweepSpec::grid(&[("r", &values)], 1).unwrap();
        let sweep = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal).fixed_step(2e-6, 2e-9);
        let scalar = sweep
            .run(
                &spec,
                2,
                &["v_out"],
                |c, sc| c.set_resistance(r, sc.value("r")),
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap();
        let lane = sweep
            .clone()
            .lanes(4)
            .run_lanes(
                &spec,
                2,
                &["v_out"],
                |c, sc| c.set_resistance(r, sc.value("r")),
                |p, m| m[0] = p.voltage(out),
            )
            .unwrap();
        assert_eq!(lane.lanes, 4);
        assert_eq!(lane.bundles, 3);
        assert_eq!(lane.scenarios.len(), 10); // padding dropped
        let a = scalar.values("v_out").unwrap();
        let b = lane.values("v_out").unwrap();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                ((x - y) / x).abs() <= 1e-9,
                "scenario {i}: scalar {x} lane {y}"
            );
        }
    }

    #[test]
    fn lane_run_is_bit_identical_across_worker_counts() {
        let Rc { ckt, r, out } = rc();
        let spec = SweepSpec::monte_carlo(&[("r", 0.5e3, 5e3)], 11, 42).unwrap();
        let sweep = NetlistSweep::new(ckt, IntegrationMethod::BackwardEuler)
            .fixed_step(1e-6, 2e-9)
            .lanes(8);
        let apply = |c: &mut Circuit, sc: &Scenario| c.set_resistance(r, sc.value("r"));
        let base = sweep
            .run_lanes(&spec, 1, &["v"], apply, |p, m| m[0] = p.voltage(out))
            .unwrap();
        for workers in [2, 4] {
            let other = sweep
                .run_lanes(&spec, workers, &["v"], apply, |p, m| m[0] = p.voltage(out))
                .unwrap();
            assert_eq!(base.fingerprint(), other.fingerprint(), "workers={workers}");
        }
    }

    #[test]
    fn lane_width_one_is_the_scalar_path_and_odd_widths_are_rejected() {
        let Rc { ckt, r, out } = rc();
        let spec = SweepSpec::grid(&[("r", &[0.5e3, 1e3, 2e3])], 1).unwrap();
        let apply = |c: &mut Circuit, sc: &Scenario| c.set_resistance(r, sc.value("r"));
        let sweep = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal).fixed_step(1e-6, 2e-9);
        let scalar = sweep
            .run(&spec, 2, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap();
        let via_lanes = sweep
            .clone()
            .lanes(1)
            .run_lanes(&spec, 2, &["v"], apply, |p, m| m[0] = p.voltage(out))
            .unwrap();
        // Width 1 *is* the scalar engine: identical fingerprint, scalar
        // report shape.
        assert_eq!(scalar.fingerprint(), via_lanes.fingerprint());
        assert_eq!(via_lanes.lanes, 1);
        assert_eq!(via_lanes.bundles, 0);
        assert!(matches!(
            sweep
                .clone()
                .lanes(3)
                .run_lanes(&spec, 1, &["v"], apply, |p, m| m[0] = p.voltage(out)),
            Err(SweepError::Invalid(_))
        ));
    }

    fn rc_space(dr_lo: f64, dr_hi: f64) -> ams_lint::SpaceSpec {
        use ams_lint::{ParamRange, SpaceBind, SpaceSpec, SpaceTarget};
        SpaceSpec::new(
            vec![ParamRange::new("dr", dr_lo, dr_hi)],
            vec![SpaceBind {
                param: "dr".into(),
                element: "R".into(),
                target: SpaceTarget::Resistance,
                relative: true,
                nominal: 1e3,
            }],
        )
    }

    #[test]
    fn space_gate_prunes_doomed_scenarios_bit_identically() {
        let Rc { ckt, r, out } = rc();
        // dr = -1.5 drives R to -500 Ω: statically doomed. The gate
        // must remove exactly that scenario before `apply` ever sees it
        // (set_resistance would reject the negative value).
        let spec = SweepSpec::grid(&[("dr", &[-1.5, -0.5, 0.0, 0.5])], 7).unwrap();
        let sweep = NetlistSweep::new(ckt.clone(), IntegrationMethod::Trapezoidal)
            .fixed_step(2e-6, 2e-9)
            .space(rc_space(-1.5, 0.5));
        let apply =
            |c: &mut Circuit, sc: &Scenario| c.set_resistance(r, 1e3 * (1.0 + sc.value("dr")));
        let report = sweep
            .run(&spec, 1, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap();
        assert_eq!(report.space_pruned, vec![(0, "SPC001".to_string())]);
        assert_eq!(report.scenarios.len(), 3);
        // Survivors keep their original indices and seeds.
        assert_eq!(report.scenarios[0].index, 1);

        // Bit-identical across worker counts...
        let at4 = sweep
            .run(&spec, 4, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap();
        assert_eq!(report.fingerprint(), at4.fingerprint());
        assert_eq!(at4.space_pruned, report.space_pruned);

        // ...and to an ungated run over a hand-filtered spec.
        let mut hand = spec.clone();
        hand.retain(|sc| sc.value("dr") > -1.0);
        let ungated = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .fixed_step(2e-6, 2e-9)
            .run(&hand, 2, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap();
        assert_eq!(report.fingerprint(), ungated.fingerprint());

        // The lane path prunes before bundle composition.
        let lanes = sweep
            .clone()
            .lanes(4)
            .run_lanes(&spec, 2, &["v"], apply, |p, m| m[0] = p.voltage(out))
            .unwrap();
        assert_eq!(lanes.space_pruned, report.space_pruned);
        assert_eq!(lanes.scenarios.len(), 3);
    }

    #[test]
    fn space_gate_rejects_unknown_binds_and_fully_doomed_batches() {
        let Rc { ckt, r, out } = rc();
        let apply =
            |c: &mut Circuit, sc: &Scenario| c.set_resistance(r, 1e3 * (1.0 + sc.value("dr")));

        // A bind to a nonexistent element dooms the whole box: the
        // batch is rejected outright, no pruning attempted.
        let spec = SweepSpec::grid(&[("dr", &[0.0, 0.1])], 0).unwrap();
        let mut bad = rc_space(0.0, 0.1);
        bad.binds[0].element = "nope".into();
        let err = NetlistSweep::new(ckt.clone(), IntegrationMethod::Trapezoidal)
            .space(bad)
            .run(&spec, 1, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap_err();
        match err {
            SweepError::Lint(rep) => assert!(rep.has_code(ams_lint::codes::SPC004)),
            other => panic!("unexpected error {other}"),
        }

        // Every scenario doomed -> rejected, not an empty run.
        let doomed = SweepSpec::grid(&[("dr", &[-1.5, -1.2])], 0).unwrap();
        let err = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .space(rc_space(-1.5, -1.2))
            .run(&doomed, 1, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap_err();
        match err {
            SweepError::Lint(rep) => assert!(rep.has_code(ams_lint::codes::SPC001)),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn healthy_space_passes_through_untouched_and_traces_a_span() {
        let Rc { ckt, r, out } = rc();
        let spec = SweepSpec::grid(&[("dr", &[-0.2, 0.0, 0.2])], 0).unwrap();
        let report = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .fixed_step(1e-7, 1e-9)
            .space(rc_space(-0.2, 0.2))
            .trace(true)
            .run(
                &spec,
                2,
                &["v"],
                |c, sc| c.set_resistance(r, 1e3 * (1.0 + sc.value("dr"))),
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap();
        assert!(report.space_pruned.is_empty());
        assert_eq!(report.scenarios.len(), 3);
        let trace = report.trace.as_ref().expect("trace enabled");
        let coord = trace
            .tracks
            .iter()
            .find(|t| t.process == "coordinator")
            .expect("coordinator track");
        // The pass itself is visible: one SpaceLint span fronting the
        // batch, arg = incoming scenario count.
        assert!(coord
            .events
            .iter()
            .any(|e| e.kind == SpanKind::SpaceLint && e.arg == 3));
    }

    /// Pulse whose leading edge sits at `delay`: identical to the DC
    /// baseline `v1 = 1` before it, scenario-dependent after — the
    /// prefix-sharing contract by construction.
    fn pulse(v2: f64, delay: f64, tau: f64) -> ams_net::Waveform {
        ams_net::Waveform::Pulse {
            v1: 1.0,
            v2,
            delay,
            rise: 8.0 * tau,
            fall: 8.0 * tau,
            width: 64.0 * tau,
            period: 0.0,
        }
    }

    fn pulse_rc(delay: f64, tau: f64) -> (Circuit, ams_net::ElementId, NodeId) {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        let v = ckt.voltage_source("V", inp, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R", inp, out, 1e3).unwrap();
        ckt.capacitor("C", out, Circuit::GROUND, 1e-9).unwrap();
        ckt.set_source_waveform(v, pulse(1.0, delay, tau)).unwrap();
        (ckt, v, out)
    }

    #[test]
    fn prefix_fork_is_bit_identical_to_run_from_zero_across_workers() {
        // Power-of-two step and fork point: every partial sum of h is
        // exact, so fixed-step bit-identity is testable with `==`.
        let h = (2.0f64).powi(-20);
        let t0 = 64.0 * h;
        let t_end = 256.0 * h;
        let (ckt, v, out) = pulse_rc(t0, h);
        let values = [0.0, 0.5, 2.0, 4.0, 8.0];
        let spec = SweepSpec::grid(&[("v2", &values)], 3).unwrap();
        let apply =
            |c: &mut Circuit, sc: &Scenario| c.set_source_waveform(v, pulse(sc.value("v2"), t0, h));
        // One last-value and one whole-trajectory metric: the latter
        // only matches when forks inherit the prefix's observations.
        let observe = |tr: &TransientSolver, m: &mut [f64]| {
            let x = tr.voltage(out);
            m[0] = x;
            m[1] = m[1].max(x);
        };
        let plain = NetlistSweep::new(ckt.clone(), IntegrationMethod::Trapezoidal)
            .fixed_step(t_end, h)
            .run(&spec, 2, &["v_end", "v_max"], apply, observe)
            .unwrap();
        assert_eq!(plain.prefix_forks, 0);
        // The contract is not vacuous: scenarios genuinely diverge
        // after t0.
        let vs = plain.values("v_end").unwrap();
        assert!(vs.windows(2).any(|w| w[0] != w[1]), "{vs:?}");

        let shared = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .fixed_step(t_end, h)
            .prefix(t0);
        for workers in [1, 2, 4] {
            let report = shared
                .run(&spec, workers, &["v_end", "v_max"], apply, observe)
                .unwrap();
            assert_eq!(
                plain.fingerprint(),
                report.fingerprint(),
                "workers={workers}"
            );
            assert_eq!(report.prefix_forks, 5);
            assert_eq!(report.prefix_steps, 64);
        }
    }

    #[test]
    fn prefix_trace_records_checkpoint_spans() {
        use ams_scope::Phase;
        let h = (2.0f64).powi(-20);
        let t0 = 64.0 * h;
        let (ckt, v, out) = pulse_rc(t0, h);
        let values = [0.0, 2.0, 4.0];
        let spec = SweepSpec::grid(&[("v2", &values)], 0).unwrap();
        let report = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .fixed_step(256.0 * h, h)
            .prefix(t0)
            .trace(true)
            .run(
                &spec,
                2,
                &["v"],
                |c, sc| c.set_source_waveform(v, pulse(sc.value("v2"), t0, h)),
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap();
        let trace = report.trace.as_ref().expect("trace enabled");
        // The prefix run is one Checkpoint span on the coordinator
        // track, arg = scenario count, with the solver's spans inside.
        let coord = trace
            .tracks
            .iter()
            .find(|t| t.process == "coordinator")
            .expect("coordinator track");
        assert!(coord
            .events
            .iter()
            .any(|e| e.kind == SpanKind::Checkpoint && e.phase == Phase::Begin && e.arg == 3));
        assert!(coord.events.iter().any(|e| e.kind == SpanKind::MnaSolve));
        // Every fork records a Checkpoint instant (arg = checkpoint
        // bytes) inside its Scenario span on some worker track.
        let instants: Vec<_> = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == SpanKind::Checkpoint && e.phase == Phase::Instant)
            .collect();
        assert_eq!(instants.len(), 3);
        assert!(instants.iter().all(|e| e.arg > 0));
        let mut indices: Vec<u64> = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == SpanKind::Scenario && e.phase == Phase::Begin)
            .map(|e| e.arg)
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn prefix_rejects_bad_t0_and_lane_widths() {
        let h = (2.0f64).powi(-20);
        let t0 = 64.0 * h;
        let t_end = 256.0 * h;
        let (ckt, v, out) = pulse_rc(t0, h);
        let values = [0.0, 2.0];
        let spec = SweepSpec::grid(&[("v2", &values)], 0).unwrap();
        let apply =
            |c: &mut Circuit, sc: &Scenario| c.set_source_waveform(v, pulse(sc.value("v2"), t0, h));
        let observe = |tr: &TransientSolver, m: &mut [f64]| m[0] = tr.voltage(out);
        let base = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal).fixed_step(t_end, h);
        for bad in [0.0, -1.0, t_end, 2.0 * t_end, f64::NAN] {
            assert!(
                matches!(
                    base.clone()
                        .prefix(bad)
                        .run(&spec, 1, &["v"], apply, observe),
                    Err(SweepError::Invalid(_))
                ),
                "t0 = {bad}"
            );
        }
        // Lane bundles amortize differently; prefix + lanes > 1 is
        // rejected, lanes(1) is the scalar path and works.
        assert!(matches!(
            base.clone()
                .prefix(t0)
                .lanes(4)
                .run_lanes(&spec, 1, &["v"], apply, |p, m| m[0] = p.voltage(out)),
            Err(SweepError::Invalid(_))
        ));
        let scalar = base
            .clone()
            .prefix(t0)
            .run(&spec, 2, &["v"], apply, observe)
            .unwrap();
        let via_lanes = base
            .prefix(t0)
            .lanes(1)
            .run_lanes(&spec, 2, &["v"], apply, |p, m| m[0] = p.voltage(out))
            .unwrap();
        assert_eq!(scalar.fingerprint(), via_lanes.fingerprint());
        assert_eq!(via_lanes.prefix_forks, 2);
    }

    #[test]
    fn adaptive_prefix_is_worker_invariant() {
        // Adaptive forks are not bit-comparable to run-from-zero (the
        // prefix clamps its last step at t0) but must stay
        // self-consistent: identical fingerprints at any worker count.
        let t0 = 2e-6;
        let (ckt, v, out) = pulse_rc(t0, 0.1e-6);
        let values = [0.0, 2.0, 4.0, 8.0];
        let spec = SweepSpec::grid(&[("v2", &values)], 0).unwrap();
        let sweep = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .adaptive(
                5e-6,
                AdaptiveOptions {
                    initial_step: 1e-9,
                    ..AdaptiveOptions::default()
                },
            )
            .prefix(t0);
        let apply = |c: &mut Circuit, sc: &Scenario| {
            c.set_source_waveform(v, pulse(sc.value("v2"), t0, 0.1e-6))
        };
        let base = sweep
            .run(&spec, 1, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap();
        assert_eq!(base.prefix_forks, 4);
        assert!(base.prefix_steps > 0);
        for r in &base.scenarios {
            assert!(r.metrics[0].is_finite());
            assert!(r.stats.iterations > 0);
        }
        let at4 = sweep
            .run(&spec, 4, &["v"], apply, |tr, m| m[0] = tr.voltage(out))
            .unwrap();
        assert_eq!(base.fingerprint(), at4.fingerprint());
    }

    #[test]
    fn adaptive_mode_runs_and_counts_rejections_as_firings() {
        let Rc { ckt, r, out } = rc();
        let spec = SweepSpec::grid(&[("r", &[1e3, 3e3])], 0).unwrap();
        let report = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
            .adaptive(
                5e-6,
                AdaptiveOptions {
                    initial_step: 1e-9,
                    ..AdaptiveOptions::default()
                },
            )
            .run(
                &spec,
                2,
                &["v_out"],
                |c, sc| c.set_resistance(r, sc.value("r")),
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap();
        for r in &report.scenarios {
            assert!(r.stats.iterations > 0);
            // Step-doubling runs full + two half solves per accepted
            // step, so probes (one per accepted step) trail steps.
            assert!(r.stats.probe_samples > 0);
            assert!(r.stats.iterations >= r.stats.probe_samples);
            assert!(r.metrics[0].is_finite());
        }
    }
}
