//! Batched sweeps over one TDF cluster topology.
//!
//! A [`TdfSweep`] elaborates the graph **once per worker** — paying
//! `setup`, balance-equation solving, schedule construction and
//! timestep propagation once — and then replays scenarios through
//! [`Cluster::reset`], which rewinds the elaborated cluster to `t = 0`
//! without re-elaboration. The `ams-lint` gate likewise runs once, on
//! the first worker's graph, since every worker builds the same
//! topology.
//!
//! Scenario parameters reach the modules through whatever channel the
//! model chooses — typically [`SharedSample`](ams_core::SharedSample)
//! cells captured by both the modules and the [`SweepModel`].

use crate::engine::{run_sharded, HookFactory};
use crate::netlist::{emit_monitor_instants, push_verdict_slots, split_verdict_slots};
use crate::report::{ScenarioResult, SweepReport};
use crate::spec::{Scenario, SweepSpec};
use crate::SweepError;
use ams_core::{Cluster, ClusterCheckpoint, TdfGraph};
use ams_exec::ExecStats;
use ams_lint::LintPolicy;
use ams_monitor::{MonitorBank, MonitorSpec, VERDICT_SLOTS};
use ams_scope::{scenario_arg, ScopeTrace, SpanKind, Tracer};

/// The per-worker model half of a TDF sweep: applies a scenario's
/// parameters before the run and extracts its metrics after.
///
/// One instance is built per worker (alongside that worker's graph) and
/// reused for every scenario the worker executes, so it must leave no
/// scenario state behind that `apply` does not overwrite.
pub trait SweepModel: Send {
    /// Writes the scenario's parameters into the model (e.g. through
    /// [`SharedSample`](ams_core::SharedSample) cells wired into the
    /// graph's modules). Runs after [`Cluster::reset`], before the run.
    fn apply(&mut self, scenario: &Scenario);

    /// Extracts the scenario's metric values after the run — typically
    /// from probes the model kept when building the graph. `out` has
    /// one slot per metric name, initialized to NaN.
    fn metrics(&mut self, cluster: &Cluster, out: &mut [f64]);
}

/// The per-worker model half of a *lane-batched* TDF sweep: one cluster
/// run evaluates a whole bundle of scenarios at once.
///
/// Where [`SweepModel`] sees one scenario per run, a `LaneSweepModel`
/// receives the bundle's scenario slice and is expected to carry all of
/// them through a single cluster execution — typically by wiring
/// lane-bundled state (e.g. [`ams_math::F64xK`]) into the modules, or
/// by widening per-scenario parameters into per-lane arrays. The graph
/// topology stays scalar; only the sample values fan out.
pub trait LaneSweepModel: Send {
    /// Writes the bundle's parameters into the model. `scenarios` holds
    /// the bundle's scenarios in lane order; the final bundle of a
    /// sweep may be shorter than the configured lane width. Runs after
    /// [`Cluster::reset`], before the run.
    fn apply(&mut self, scenarios: &[Scenario]);

    /// Extracts each lane's metric values after the run. `out` has one
    /// row per scenario in the bundle (matching the `apply` slice), each
    /// with one slot per metric name, initialized to NaN.
    fn metrics(&mut self, cluster: &Cluster, out: &mut [Vec<f64>]);
}

/// A batched sweep over one TDF cluster topology.
#[derive(Clone)]
pub struct TdfSweep {
    iterations: u64,
    lint: LintPolicy,
    context: String,
    trace: bool,
    hooks: Option<HookFactory>,
    prefix_iterations: Option<u64>,
    monitors: Option<MonitorSpec>,
}

impl std::fmt::Debug for TdfSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdfSweep")
            .field("iterations", &self.iterations)
            .field("context", &self.context)
            .field("trace", &self.trace)
            .field("hooks", &self.hooks.is_some())
            .field("prefix_iterations", &self.prefix_iterations)
            .field("monitors", &self.monitors.is_some())
            .finish_non_exhaustive()
    }
}

impl TdfSweep {
    /// A sweep running each scenario for `iterations` schedule
    /// iterations (standalone, no DE kernel).
    pub fn new(iterations: u64) -> TdfSweep {
        TdfSweep {
            iterations,
            lint: LintPolicy::default(),
            context: "tdf-sweep".into(),
            trace: false,
            hooks: None,
            prefix_iterations: None,
            monitors: None,
        }
    }

    /// Attaches streaming temporal assertion monitors: every scenario
    /// evaluates `spec`'s properties over its signal samples as the
    /// cluster runs (fed once per completed schedule iteration, like
    /// probes — no sample buffering), and the report carries one
    /// [`Verdict`](ams_monitor::Verdict) per property per scenario.
    /// Channel names are resolved against each worker's elaborated
    /// cluster by signal name; an unknown channel rejects the batch
    /// with [`SweepError::Invalid`](crate::SweepError::Invalid).
    ///
    /// Verdicts fold into [`SweepReport::fingerprint`], are
    /// bit-identical across worker counts, and survive
    /// [`prefix`](TdfSweep::prefix) forking unchanged (each fork
    /// resumes from the automaton state the shared prefix accumulated).
    /// Rejected by [`run_lanes`](TdfSweep::run_lanes): a lane-bundled
    /// cluster multiplexes all lanes through one scalar signal trace,
    /// so no per-scenario waveform exists to monitor.
    pub fn monitors(mut self, spec: MonitorSpec) -> TdfSweep {
        self.monitors = Some(spec);
        self
    }

    /// The installed monitor spec, with an empty spec normalized to
    /// "no monitors".
    fn effective_monitors(&self) -> Option<&MonitorSpec> {
        self.monitors.as_ref().filter(|s| !s.is_empty())
    }

    /// Declares the first `prefix` schedule iterations of every
    /// scenario as a shared prefix: each worker runs its pristine
    /// cluster once to the fork point, saves a [`ClusterCheckpoint`],
    /// and every scenario **restores** it instead of rewinding to
    /// iteration 0 — paying only the remaining iterations of cluster
    /// work. The sharing is counted in [`SweepReport::prefix_forks`] /
    /// [`SweepReport::prefix_steps`] (fingerprint-excluded); with
    /// tracing enabled each fork records a
    /// [`SpanKind::Checkpoint`] instant (`arg` = checkpoint bytes)
    /// inside its scenario span. Every worker's prefix is identical
    /// (same topology, template parameters), so reports stay
    /// bit-identical across worker counts.
    ///
    /// **Contract:** valid only when the cluster's trajectory over the
    /// prefix iterations is scenario-invariant — the parameters
    /// written by [`SweepModel::apply`] must act strictly after the
    /// fork point, or only in [`SweepModel::metrics`]. Stateful
    /// modules must implement
    /// [`TdfModule::save_state`](ams_core::TdfModule::save_state) /
    /// [`restore_state`](ams_core::TdfModule::restore_state) (the same
    /// contract [`Cluster::save`] itself documents); the sweep cannot
    /// verify either. Rejected by [`run_lanes`](TdfSweep::run_lanes)
    /// (bundles amortize differently).
    pub fn prefix(mut self, iterations: u64) -> TdfSweep {
        self.prefix_iterations = Some(iterations);
        self
    }

    /// Enables span tracing: every scenario records a
    /// [`SpanKind::Scenario`] span (timestamped in the scenario-index
    /// domain, `arg` = scenario index) with the cluster's iteration and
    /// embedded-solver spans folded in. The merged [`ScopeTrace`] lands
    /// in [`SweepReport::trace`], one `shard-s` track per worker shard.
    /// Disabled (the default) costs one branch per scenario.
    pub fn trace(mut self, enabled: bool) -> TdfSweep {
        self.trace = enabled;
        self
    }

    /// Installs an [`ExecHook`](ams_exec::ExecHook) factory: one hook
    /// per worker shard (built on the coordinator in shard order),
    /// observing the shard's scenarios as windows and receiving
    /// `on_finish` with the final aggregate. See
    /// [`HookFactory`](crate::HookFactory).
    pub fn hooks(mut self, factory: HookFactory) -> TdfSweep {
        self.hooks = Some(factory);
        self
    }

    /// Sets the lint policy gating the topology.
    pub fn lint_policy(mut self, policy: LintPolicy) -> TdfSweep {
        self.lint = policy;
        self
    }

    /// Names the sweep for lint reports and diagnostics.
    pub fn context(mut self, context: impl Into<String>) -> TdfSweep {
        self.context = context.into();
        self
    }

    /// Runs every scenario of `spec` on up to `workers` threads.
    ///
    /// `build` is called once per worker shard, **on the coordinator**
    /// and in shard order, and returns that worker's graph plus its
    /// [`SweepModel`]. Every call must construct the same topology
    /// (same modules, signals, rates); only then is linting the first
    /// graph representative and the cross-worker determinism guarantee
    /// meaningful. Each worker's cluster is elaborated once and then
    /// `reset` between scenarios.
    ///
    /// # Errors
    ///
    /// * [`SweepError::Lint`] when the topology fails the policy gate.
    /// * [`SweepError::Core`] when elaboration fails.
    /// * [`SweepError::Invalid`] for an empty spec or metric list.
    /// * [`SweepError::Scenario`] for the lowest-indexed failing
    ///   scenario.
    pub fn run<M, B>(
        &self,
        spec: &SweepSpec,
        workers: usize,
        metrics: &[&str],
        mut build: B,
    ) -> Result<SweepReport, SweepError>
    where
        M: SweepModel,
        B: FnMut(usize) -> (TdfGraph, M),
    {
        if spec.is_empty() {
            return Err(SweepError::invalid("sweep spec has no scenarios"));
        }
        if metrics.is_empty() {
            return Err(SweepError::invalid("sweep needs at least one metric"));
        }

        let prefix = self.prefix_iterations;
        if let Some(p) = prefix {
            if p == 0 || p >= self.iterations {
                return Err(SweepError::invalid(format!(
                    "prefix iterations = {p} must satisfy 0 < prefix < iterations = {}",
                    self.iterations
                )));
            }
        }

        let scenarios = spec.scenarios();
        let n_metrics = metrics.len();
        let mut lint_warnings = 0usize;
        let iterations = self.iterations;
        // Forks restore the checkpoint's iteration counter, so each
        // scenario runs only the tail beyond the fork point.
        let tail = iterations - prefix.unwrap_or(0);
        let tracing = self.trace;
        let mon_spec = self.effective_monitors();
        let n_slots = mon_spec.map_or(0, |s| s.len() * VERDICT_SLOTS);

        let mut shard = run_sharded(
            scenarios.len(),
            n_metrics + n_slots,
            workers,
            tracing,
            self.hooks.as_ref(),
            |slot, _items| {
                let (mut graph, model) = build(slot);
                // One lint pass per topology: every worker builds the
                // same graph, so the first one is representative.
                if slot == 0 {
                    let report = graph.lint();
                    if !self.lint.denied(&report).is_empty() {
                        return Err(SweepError::Lint(report));
                    }
                    lint_warnings = self.lint.warned(&report).len();
                    for d in self.lint.warned(&report) {
                        eprintln!("[{}] warning: {d}", self.context);
                    }
                }
                let mut cluster = graph.elaborate()?;
                // Monitors attach before the prefix so the shared
                // prefix iterations feed the automata exactly as a
                // run-from-zero scenario would.
                if let Some(spec) = mon_spec {
                    let bank = MonitorBank::new(spec);
                    let mut sigs = Vec::with_capacity(bank.channels().len());
                    for ch in bank.channels() {
                        let sig = cluster.find_signal(ch).ok_or_else(|| {
                            SweepError::invalid(format!(
                                "monitor channel {ch:?} names no signal in the TDF graph"
                            ))
                        })?;
                        sigs.push(sig);
                    }
                    cluster.attach_monitors(bank, &sigs);
                }
                // The shared prefix runs once per worker, on the
                // pristine cluster and before tracing switches on, so
                // its spans never land in a scenario's track.
                let (ckpt, mon_snap) = match prefix {
                    Some(p) => {
                        cluster.run_standalone(p).map_err(SweepError::Core)?;
                        // The checkpoint deliberately excludes monitor
                        // state; snapshot the fed bank separately so
                        // every fork resumes its automata from t0.
                        (Some(cluster.save()), cluster.monitor_bank().cloned())
                    }
                    None => (None, None),
                };
                if tracing {
                    cluster.set_tracing(true);
                }
                Ok((cluster, model, ckpt, mon_snap))
            },
            |(cluster, model, ckpt, mon_snap): &mut (
                Cluster,
                M,
                Option<ClusterCheckpoint>,
                Option<MonitorBank>,
            ),
             item,
             tracer: &mut Tracer| {
                let sc = &scenarios[item];
                let idx = sc.index() as u64;
                match ckpt {
                    Some(cp) => {
                        cluster
                            .restore(cp)
                            .map_err(|e| SweepError::scenario(sc.index(), e))?;
                        if let Some(snap) = mon_snap {
                            cluster.set_monitor_bank_state(snap.clone());
                        }
                    }
                    None => cluster.reset(),
                }
                model.apply(sc);
                if tracer.is_enabled() {
                    tracer.begin_with(SpanKind::Scenario, idx, idx);
                    if let Some(cp) = ckpt {
                        tracer.instant(SpanKind::Checkpoint, idx, cp.approx_bytes() as u64);
                    }
                }
                cluster
                    .run_standalone(tail)
                    .map_err(|e| SweepError::scenario(sc.index(), e))?;
                let mut vals = vec![f64::NAN; n_metrics];
                model.metrics(cluster, &mut vals);
                let verdicts = cluster
                    .monitor_bank()
                    .map(MonitorBank::finish)
                    .unwrap_or_default();
                if tracer.is_enabled() {
                    // Cluster and embedded-solver spans ride on the same
                    // track, inside the scenario span (their timestamps
                    // are the scenario's local simulated time).
                    for (_, events) in cluster.take_traces() {
                        tracer.extend(events);
                    }
                    if let Some(bank) = cluster.monitor_bank() {
                        // Non-failures stamp the last sample the bank
                        // saw (the TDF horizon in seconds).
                        let horizon = bank
                            .monitors()
                            .iter()
                            .map(ams_monitor::Monitor::last_time)
                            .fold(0.0f64, f64::max);
                        emit_monitor_instants(tracer, &verdicts, horizon);
                    }
                    tracer.end_with(SpanKind::Scenario, idx + 1, idx);
                }
                let mut row = vals;
                push_verdict_slots(&mut row, &verdicts);
                Ok((row, cluster.stats()))
            },
        )?;

        let mut results = Vec::with_capacity(scenarios.len());
        for (pos, sc) in scenarios.iter().enumerate() {
            let (metrics_row, verdicts) =
                split_verdict_slots(shard.metrics[pos].clone(), n_metrics);
            results.push(ScenarioResult {
                index: sc.index(),
                label: sc.label(),
                metrics: metrics_row,
                stats: shard.stats[pos],
                verdicts,
            });
        }

        let mut exec = ExecStats {
            windows: scenarios.len() as u64,
            barriers: shard.shards as u64,
            ring_high_water: shard.ring_high_water,
            compute_wall: shard.compute_wall,
            sync_wall: shard.sync_wall,
            lint_warnings,
            ..ExecStats::default()
        };
        for r in &results {
            exec.clusters.push((r.label.clone(), r.stats));
        }

        // Exactly-once finish notification per shard hook, fired on the
        // coordinator after the aggregate exists.
        for h in &mut shard.hooks {
            h.on_finish(&exec);
        }

        let trace = if self.trace {
            let mut t = ScopeTrace::new();
            for (s, events) in shard.traces.into_iter().enumerate() {
                if !events.is_empty() {
                    t.add_track(format!("shard-{s}"), "scenarios", events);
                }
            }
            Some(t)
        } else {
            None
        };

        Ok(SweepReport {
            metric_names: metrics.iter().map(|m| (*m).to_string()).collect(),
            monitor_names: mon_spec.map(MonitorSpec::names).unwrap_or_default(),
            scenarios: results,
            exec,
            trace,
            lanes: 1,
            bundles: 0,
            // The space pass is MNA-specific; TDF structure is
            // scenario-invariant, so nothing is ever pruned here.
            space_pruned: Vec::new(),
            prefix_forks: if prefix.is_some() {
                scenarios.len() as u64
            } else {
                0
            },
            prefix_steps: prefix.unwrap_or(0),
        })
    }

    /// Runs every scenario of `spec` lane-batched: `lanes` consecutive
    /// scenarios form one bundle, and each bundle costs a single
    /// cluster run (one `reset`, one `run_standalone`). The model — a
    /// [`LaneSweepModel`] — carries the whole bundle through that run,
    /// typically via lane-bundled samples inside the modules.
    ///
    /// Compared to [`run`](TdfSweep::run):
    ///
    /// * The report has the same per-scenario shape, but each
    ///   scenario's solver counters are its *bundle's* counters, so
    ///   [`SweepReport::totals`] over-counts the actual work by up to
    ///   the lane width (the actual work is roughly `1/lanes` of a
    ///   scalar sweep's).
    /// * A scenario failure is attributed to the bundle's first
    ///   scenario index.
    /// * [`SpanKind::Scenario`] spans cover a bundle and carry the lane
    ///   width in their `arg` (see [`scenario_arg`]).
    /// * The final bundle may be shorter than `lanes`; the model sees
    ///   the true bundle size — there is no padding.
    ///
    /// `lanes == 1` is valid and equivalent to a scalar sweep over a
    /// model that happens to take one-element slices. Reports stay
    /// bit-identical across worker counts: bundle composition depends
    /// only on the scenario order and `lanes`.
    ///
    /// # Errors
    ///
    /// As [`run`](TdfSweep::run), plus [`SweepError::Invalid`] when
    /// `lanes` is zero.
    pub fn run_lanes<M, B>(
        &self,
        spec: &SweepSpec,
        workers: usize,
        metrics: &[&str],
        lanes: usize,
        mut build: B,
    ) -> Result<SweepReport, SweepError>
    where
        M: LaneSweepModel,
        B: FnMut(usize) -> (TdfGraph, M),
    {
        if spec.is_empty() {
            return Err(SweepError::invalid("sweep spec has no scenarios"));
        }
        if metrics.is_empty() {
            return Err(SweepError::invalid("sweep needs at least one metric"));
        }
        if lanes == 0 {
            return Err(SweepError::invalid("lane width must be at least 1"));
        }
        if self.prefix_iterations.is_some() {
            return Err(SweepError::invalid(
                "prefix sharing is a scalar-path feature: use run()",
            ));
        }
        if self.effective_monitors().is_some() {
            return Err(SweepError::invalid(
                "monitors are a scalar-path feature for TDF sweeps: lane bundles \
                 multiplex every lane through one signal trace, so no per-scenario \
                 waveform exists to monitor — use run()",
            ));
        }

        let scenarios = spec.scenarios();
        let n = scenarios.len();
        let n_metrics = metrics.len();
        let n_bundles = n.div_ceil(lanes);
        let mut lint_warnings = 0usize;
        let iterations = self.iterations;
        let tracing = self.trace;

        let mut shard = run_sharded(
            n_bundles,
            lanes * n_metrics,
            workers,
            tracing,
            self.hooks.as_ref(),
            |slot, _items| {
                let (mut graph, model) = build(slot);
                if slot == 0 {
                    let report = graph.lint();
                    if !self.lint.denied(&report).is_empty() {
                        return Err(SweepError::Lint(report));
                    }
                    lint_warnings = self.lint.warned(&report).len();
                    for d in self.lint.warned(&report) {
                        eprintln!("[{}] warning: {d}", self.context);
                    }
                }
                let mut cluster = graph.elaborate()?;
                if tracing {
                    cluster.set_tracing(true);
                }
                Ok((cluster, model))
            },
            |(cluster, model): &mut (Cluster, M), item, tracer: &mut Tracer| {
                let start = item * lanes;
                let used = lanes.min(n - start);
                let bundle = &scenarios[start..start + used];
                let first = bundle[0].index();
                cluster.reset();
                model.apply(bundle);
                if tracer.is_enabled() {
                    tracer.begin_with(
                        SpanKind::Scenario,
                        first as u64,
                        scenario_arg(first as u64, lanes),
                    );
                }
                cluster
                    .run_standalone(iterations)
                    .map_err(|e| SweepError::scenario(first, e))?;
                let mut rows = vec![vec![f64::NAN; n_metrics]; used];
                model.metrics(cluster, &mut rows);
                if tracer.is_enabled() {
                    for (_, events) in cluster.take_traces() {
                        tracer.extend(events);
                    }
                    tracer.end_with(
                        SpanKind::Scenario,
                        bundle[used - 1].index() as u64 + 1,
                        scenario_arg(first as u64, lanes),
                    );
                }
                // Pad dropped lanes with NaN so every ring row has the
                // same width; the unpack below never reads the padding.
                let mut flat: Vec<f64> = rows.into_iter().flatten().collect();
                flat.resize(lanes * n_metrics, f64::NAN);
                Ok((flat, cluster.stats()))
            },
        )?;

        let mut results = Vec::with_capacity(n);
        for (i, sc) in scenarios.iter().enumerate() {
            let (b, l) = (i / lanes, i % lanes);
            results.push(ScenarioResult {
                index: sc.index(),
                label: sc.label(),
                metrics: shard.metrics[b][l * n_metrics..(l + 1) * n_metrics].to_vec(),
                stats: shard.stats[b],
                verdicts: Vec::new(),
            });
        }

        let mut exec = ExecStats {
            windows: n as u64,
            barriers: shard.shards as u64,
            ring_high_water: shard.ring_high_water,
            compute_wall: shard.compute_wall,
            sync_wall: shard.sync_wall,
            lint_warnings,
            ..ExecStats::default()
        };
        for r in &results {
            exec.clusters.push((r.label.clone(), r.stats));
        }
        for h in &mut shard.hooks {
            h.on_finish(&exec);
        }

        let trace = if self.trace {
            let mut t = ScopeTrace::new();
            for (s, events) in shard.traces.into_iter().enumerate() {
                if !events.is_empty() {
                    t.add_track(format!("shard-{s}"), "scenarios", events);
                }
            }
            Some(t)
        } else {
            None
        };

        Ok(SweepReport {
            metric_names: metrics.iter().map(|m| (*m).to_string()).collect(),
            monitor_names: Vec::new(),
            scenarios: results,
            exec,
            trace,
            lanes,
            bundles: n_bundles,
            space_pruned: Vec::new(),
            prefix_forks: 0,
            prefix_steps: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::{CoreError, SharedSample, TdfIo, TdfModule, TdfProbe, TdfSetup};
    use ams_kernel::SimTime;

    /// `y[k] = gain · sin(2π f k Δt)` with gain injected per scenario.
    struct Osc {
        out: ams_core::TdfOut,
        gain: SharedSample,
        k: u64,
    }

    impl TdfModule for Osc {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.output(self.out);
            cfg.set_timestep(SimTime::from_us(1));
        }

        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            let t = self.k as f64 * 1e-6;
            io.write1(
                self.out,
                self.gain.get() * (2.0 * std::f64::consts::PI * 1e4 * t).sin(),
            );
            self.k += 1;
            Ok(())
        }

        fn reset(&mut self) {
            self.k = 0;
        }

        fn save_state(&self, out: &mut Vec<f64>) {
            out.push(self.k as f64);
        }

        fn restore_state(&mut self, state: &[f64]) {
            self.k = state[0] as u64;
        }
    }

    struct Model {
        gain: SharedSample,
        probe: TdfProbe,
    }

    impl SweepModel for Model {
        fn apply(&mut self, scenario: &Scenario) {
            self.gain.set(scenario.value("gain"));
        }

        fn metrics(&mut self, _cluster: &Cluster, out: &mut [f64]) {
            let peak = self
                .probe
                .values()
                .into_iter()
                .fold(0.0f64, |m, v| m.max(v.abs()));
            out[0] = peak;
        }
    }

    fn build(slot: usize) -> (TdfGraph, Model) {
        let mut g = TdfGraph::new(format!("osc{slot}"));
        let s = g.signal("y");
        let probe = g.probe(s);
        let gain = SharedSample::new(1.0);
        g.add_module(
            "osc",
            Osc {
                out: s.writer(),
                gain: gain.clone(),
                k: 0,
            },
        );
        (g, Model { gain, probe })
    }

    #[test]
    fn gain_sweep_scales_the_peak_and_reuses_elaboration() {
        let gains = [0.5, 1.0, 2.0, 4.0, 8.0];
        let spec = SweepSpec::grid(&[("gain", &gains)], 3).unwrap();
        let report = TdfSweep::new(200).run(&spec, 2, &["peak"], build).unwrap();
        let peaks = report.values("peak").unwrap();
        for (peak, gain) in peaks.iter().zip(&gains) {
            // 200 µs at 10 kHz covers two full periods: the sampled
            // peak is within one sample step of the amplitude.
            assert!((peak / gain - 1.0).abs() < 1e-2, "peak {peak} gain {gain}");
        }
        // Five scenarios ran on at most two elaborations (one per
        // worker), each 200 iterations.
        assert_eq!(report.totals().iterations, 5 * 200);
        let s = report.summary("peak").unwrap();
        assert_eq!(s.max_scenario, 4);
        assert_eq!(s.min_scenario, 0);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let spec = SweepSpec::monte_carlo(&[("gain", 0.1, 10.0)], 12, 77).unwrap();
        let base = TdfSweep::new(64).run(&spec, 1, &["peak"], build).unwrap();
        for workers in [2, 4] {
            let other = TdfSweep::new(64)
                .run(&spec, workers, &["peak"], build)
                .unwrap();
            assert_eq!(base.fingerprint(), other.fingerprint(), "workers={workers}");
        }
    }

    #[test]
    fn hook_factory_and_trace_cover_every_scenario() {
        use ams_exec::CountingHook;
        use ams_scope::Phase;
        use std::sync::{Arc, Mutex};

        let handles: Arc<Mutex<Vec<Arc<Mutex<CountingHook>>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = handles.clone();
        let factory: crate::HookFactory = Arc::new(move |_slot| {
            let h = Arc::new(Mutex::new(CountingHook::default()));
            sink.lock().unwrap().push(h.clone());
            Box::new(h)
        });

        let gains = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
        let spec = SweepSpec::grid(&[("gain", &gains)], 3).unwrap();
        let report = TdfSweep::new(50)
            .trace(true)
            .hooks(factory)
            .run(&spec, 2, &["peak"], build)
            .unwrap();

        // One hook per shard: windows sum to the scenario count, one
        // barrier and exactly one finish each.
        let handles = handles.lock().unwrap();
        assert_eq!(handles.len(), 2);
        let windows: u64 = handles.iter().map(|h| h.lock().unwrap().windows).sum();
        assert_eq!(windows, gains.len() as u64);
        for h in handles.iter() {
            let h = h.lock().unwrap();
            assert_eq!(h.barriers, 1);
            assert_eq!(h.finishes, 1);
        }

        // The trace carries one Scenario span per scenario, tagged with
        // its index, on shard tracks, plus the cluster's iteration spans.
        let trace = report.trace.as_ref().expect("trace enabled");
        assert!(trace
            .tracks
            .iter()
            .all(|t| t.process.starts_with("shard-") && t.thread == "scenarios"));
        let mut indices: Vec<u64> = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == SpanKind::Scenario && e.phase == Phase::Begin)
            .map(|e| e.arg)
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
        assert!(trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .any(|e| e.kind == SpanKind::ClusterIteration));

        // Tracing off (the default) leaves the report trace-free.
        let plain = TdfSweep::new(50).run(&spec, 2, &["peak"], build).unwrap();
        assert!(plain.trace.is_none());
    }

    /// Lane model for the same oscillator: the cluster runs at unit
    /// gain once per bundle; each lane's peak is its gain times the
    /// shared unit peak. Scaling a positive factor through `max(|·|)`
    /// commutes bit-exactly, so values match the scalar sweep.
    struct LaneModel {
        gains: Vec<f64>,
        probe: TdfProbe,
    }

    impl LaneSweepModel for LaneModel {
        fn apply(&mut self, scenarios: &[Scenario]) {
            self.gains = scenarios.iter().map(|s| s.value("gain")).collect();
        }

        fn metrics(&mut self, _cluster: &Cluster, out: &mut [Vec<f64>]) {
            let unit = self
                .probe
                .values()
                .into_iter()
                .fold(0.0f64, |m, v| m.max(v.abs()));
            for (row, g) in out.iter_mut().zip(&self.gains) {
                row[0] = g * unit;
            }
        }
    }

    fn build_lane(slot: usize) -> (TdfGraph, LaneModel) {
        let mut g = TdfGraph::new(format!("osc{slot}"));
        let s = g.signal("y");
        let probe = g.probe(s);
        g.add_module(
            "osc",
            Osc {
                out: s.writer(),
                gain: SharedSample::new(1.0),
                k: 0,
            },
        );
        (
            g,
            LaneModel {
                gains: Vec::new(),
                probe,
            },
        )
    }

    #[test]
    fn lane_sweep_matches_scalar_values_with_a_short_final_bundle() {
        let gains = [0.5, 1.0, 2.0, 4.0, 8.0];
        let spec = SweepSpec::grid(&[("gain", &gains)], 3).unwrap();
        let scalar = TdfSweep::new(200).run(&spec, 2, &["peak"], build).unwrap();
        let lane = TdfSweep::new(200)
            .run_lanes(&spec, 1, &["peak"], 4, build_lane)
            .unwrap();
        assert_eq!(lane.lanes, 4);
        assert_eq!(lane.bundles, 2); // 4 + 1: the last bundle is short
        assert_eq!(scalar.values("peak").unwrap(), lane.values("peak").unwrap());
        // Counters are bundle-shared: every scenario reports its
        // bundle's 200 iterations even though only 2 runs happened.
        assert_eq!(lane.totals().iterations, 5 * 200);
    }

    #[test]
    fn lane_sweep_is_worker_deterministic() {
        let spec = SweepSpec::monte_carlo(&[("gain", 0.1, 10.0)], 13, 77).unwrap();
        let base = TdfSweep::new(64)
            .run_lanes(&spec, 1, &["peak"], 4, build_lane)
            .unwrap();
        for workers in [2, 4] {
            let other = TdfSweep::new(64)
                .run_lanes(&spec, workers, &["peak"], 4, build_lane)
                .unwrap();
            assert_eq!(base.fingerprint(), other.fingerprint(), "workers={workers}");
        }
        assert!(matches!(
            TdfSweep::new(64).run_lanes(&spec, 1, &["peak"], 0, build_lane),
            Err(SweepError::Invalid(_))
        ));
    }

    /// A gain that only acts in `metrics` (post-scaling, LaneModel
    /// style): the cluster's trajectory is scenario-invariant, which is
    /// exactly the prefix-sharing contract.
    struct PostModel {
        gain: f64,
        probe: TdfProbe,
    }

    impl SweepModel for PostModel {
        fn apply(&mut self, scenario: &Scenario) {
            self.gain = scenario.value("gain");
        }

        fn metrics(&mut self, _cluster: &Cluster, out: &mut [f64]) {
            let unit = self
                .probe
                .values()
                .into_iter()
                .fold(0.0f64, |m, v| m.max(v.abs()));
            out[0] = self.gain * unit;
        }
    }

    fn build_post(slot: usize) -> (TdfGraph, PostModel) {
        let mut g = TdfGraph::new(format!("osc{slot}"));
        let s = g.signal("y");
        let probe = g.probe(s);
        g.add_module(
            "osc",
            Osc {
                out: s.writer(),
                gain: SharedSample::new(1.0),
                k: 0,
            },
        );
        (g, PostModel { gain: 1.0, probe })
    }

    #[test]
    fn prefix_fork_matches_run_from_zero_bit_for_bit() {
        let gains = [0.5, 1.0, 2.0, 4.0, 8.0];
        let spec = SweepSpec::grid(&[("gain", &gains)], 3).unwrap();
        let plain = TdfSweep::new(200)
            .run(&spec, 2, &["peak"], build_post)
            .unwrap();
        assert_eq!(plain.prefix_forks, 0);
        for workers in [1, 2, 4] {
            let shared = TdfSweep::new(200)
                .prefix(64)
                .run(&spec, workers, &["peak"], build_post)
                .unwrap();
            assert_eq!(
                plain.fingerprint(),
                shared.fingerprint(),
                "workers={workers}"
            );
            assert_eq!(shared.prefix_forks, 5);
            assert_eq!(shared.prefix_steps, 64);
            // Restored counters continue from the checkpoint's: totals
            // accumulate to run-from-zero work per scenario.
            assert_eq!(shared.totals().iterations, 5 * 200);
        }
    }

    #[test]
    fn prefix_fork_restores_module_and_probe_state() {
        use ams_scope::Phase;
        // The oscillator's phase counter `k` lives in module state: a
        // fork that failed to restore it would resume mid-waveform and
        // shift every sample of the tail. Compare actual metric values,
        // not just fingerprints.
        let gains = [0.5, 2.0, 4.0];
        let spec = SweepSpec::grid(&[("gain", &gains)], 0).unwrap();
        let plain = TdfSweep::new(100)
            .run(&spec, 1, &["peak"], build_post)
            .unwrap();
        let shared = TdfSweep::new(100)
            .prefix(30)
            .trace(true)
            .run(&spec, 2, &["peak"], build_post)
            .unwrap();
        assert_eq!(
            plain.values("peak").unwrap(),
            shared.values("peak").unwrap()
        );
        // Each fork records a Checkpoint instant inside its span.
        let trace = shared.trace.as_ref().expect("trace enabled");
        let instants: Vec<_> = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == SpanKind::Checkpoint && e.phase == Phase::Instant)
            .collect();
        assert_eq!(instants.len(), 3);
        assert!(instants.iter().all(|e| e.arg > 0));
    }

    #[test]
    fn prefix_rejects_bad_lengths_and_lane_runs() {
        let spec = SweepSpec::grid(&[("gain", &[1.0, 2.0])], 0).unwrap();
        for bad in [0, 100, 150] {
            assert!(
                matches!(
                    TdfSweep::new(100)
                        .prefix(bad)
                        .run(&spec, 1, &["peak"], build_post),
                    Err(SweepError::Invalid(_))
                ),
                "prefix = {bad}"
            );
        }
        assert!(matches!(
            TdfSweep::new(100)
                .prefix(30)
                .run_lanes(&spec, 1, &["peak"], 4, build_lane),
            Err(SweepError::Invalid(_))
        ));
    }

    #[test]
    fn lint_gate_rejects_rate_inconsistent_topologies() {
        struct TwoRate {
            a: ams_core::TdfOut,
            b: ams_core::TdfIn,
        }
        impl TdfModule for TwoRate {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output_with(self.a, 2);
                cfg.input_with(self.b, 3, 1);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, _io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                Ok(())
            }
        }
        struct NoModel;
        impl SweepModel for NoModel {
            fn apply(&mut self, _s: &Scenario) {}
            fn metrics(&mut self, _c: &Cluster, _out: &mut [f64]) {}
        }
        let spec = SweepSpec::grid(&[("x", &[1.0])], 0).unwrap();
        let err = TdfSweep::new(10)
            .run(&spec, 1, &["m"], |_slot| {
                let mut g = TdfGraph::new("bad");
                let s = g.signal("x");
                g.add_module(
                    "m",
                    TwoRate {
                        a: s.writer(),
                        b: s.reader(),
                    },
                );
                (g, NoModel)
            })
            .unwrap_err();
        assert!(matches!(err, SweepError::Lint(_)), "got {err}");
    }
}
