//! The deterministic sharded runner shared by netlist and TDF sweeps.
//!
//! Scenarios are split over workers by [`ams_exec::partition`]'s
//! longest-processing-time heuristic with uniform costs — a pure
//! function of `(scenario count, worker count)`, so the shard layout is
//! reproducible. Each worker streams its metric values back through an
//! `ams-exec` SPSC ring while the coordinator drains all rings live;
//! solver counters travel with the worker's join result. Because every
//! result is keyed by scenario index, the assembled rows are identical
//! no matter which worker ran which scenario or in what order the rings
//! drained.

use crate::SweepError;
use ams_core::ClusterStats;
use ams_exec::{partition, ring, ExecHook, RingConsumer, RingMonitor, RingProducer};
use ams_kernel::SimTime;
use ams_scope::{TraceEvent, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result-ring capacity per worker. Streaming is keyed, not windowed,
/// so capacity only bounds batching; `push_spin` waits out a full ring.
const RING_CAPACITY: usize = 256;

/// Builds one [`ExecHook`] per worker shard of a sweep. The factory is
/// invoked **on the coordinator**, once per shard in shard order (the
/// shard slot is the argument), before any worker thread spawns — so
/// hook construction is deterministic even for factories with side
/// effects. Each hook then observes its shard's items as windows
/// (`on_window` per item, in the item domain: item `k` is the window
/// `[k fs, k+1 fs)`), one `on_barrier` when the shard drains, and one
/// `on_finish` with the assembled batch statistics.
pub type HookFactory = Arc<dyn Fn(usize) -> Box<dyn ExecHook + Send> + Send + Sync>;

/// Outcome of one sharded batch over items `0..n_items`.
pub(crate) struct ShardRun {
    // `hooks` holds trait objects, so Debug is manual (below).
    /// Metric rows, one per item, in item order.
    pub metrics: Vec<Vec<f64>>,
    /// Solver counters, one per item.
    pub stats: Vec<ClusterStats>,
    /// Worker shards actually used.
    pub shards: usize,
    /// Peak occupancy across the result rings.
    pub ring_high_water: usize,
    /// Wall time from first dispatch to last worker exit.
    pub compute_wall: Duration,
    /// Wall time the coordinator spent in the final drain + join.
    pub sync_wall: Duration,
    /// Per-shard trace buffers, in shard order (empty unless tracing).
    pub traces: Vec<Vec<TraceEvent>>,
    /// Per-shard hooks handed back by the workers, in shard order, ready
    /// for the caller's `on_finish` dispatch.
    pub hooks: Vec<Box<dyn ExecHook + Send>>,
}

impl std::fmt::Debug for ShardRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRun")
            .field("items", &self.metrics.len())
            .field("shards", &self.shards)
            .field("ring_high_water", &self.ring_high_water)
            .field(
                "traced_events",
                &self.traces.iter().map(Vec::len).sum::<usize>(),
            )
            .field("hooks", &self.hooks.len())
            .finish_non_exhaustive()
    }
}

/// Runs `run_one` for every item in `0..n_items`, sharded over at most
/// `workers` threads.
///
/// `build_state` is invoked **on the coordinator**, once per shard in
/// shard order, with the shard's item list — the place to pay per-worker
/// setup (cluster elaboration, solver construction) deterministically.
/// `run_one` then executes on the worker for each of the shard's items
/// (ascending) with the shard's [`Tracer`] (enabled iff `tracing`) and
/// returns the item's metric values and counters; whatever the closure
/// records lands in [`ShardRun::traces`] under the shard's slot.
///
/// When a [`HookFactory`] is given, one hook is built per shard (on the
/// coordinator, in shard order) and observes the shard's items as
/// windows; the hooks come back in [`ShardRun::hooks`] so the caller can
/// fire `on_finish` with the assembled statistics.
///
/// The first failing item (lowest item index wins, so the error is
/// deterministic too) aborts the batch with
/// [`SweepError::Scenario`]-style context attached by the caller.
pub(crate) fn run_sharded<S, B, R>(
    n_items: usize,
    n_metrics: usize,
    workers: usize,
    tracing: bool,
    hooks: Option<&HookFactory>,
    mut build_state: B,
    run_one: R,
) -> Result<ShardRun, SweepError>
where
    S: Send,
    B: FnMut(usize, &[usize]) -> Result<S, SweepError>,
    R: Fn(&mut S, usize, &mut Tracer) -> Result<(Vec<f64>, ClusterStats), SweepError> + Sync,
{
    let mut metrics = vec![vec![f64::NAN; n_metrics]; n_items];
    let mut stats = vec![ClusterStats::default(); n_items];
    if n_items == 0 {
        return Ok(ShardRun {
            metrics,
            stats,
            shards: 0,
            ring_high_water: 0,
            compute_wall: Duration::ZERO,
            sync_wall: Duration::ZERO,
            traces: Vec::new(),
            hooks: Vec::new(),
        });
    }

    let shards_wanted = workers.max(1).min(n_items);
    let part = partition(&vec![1; n_items], &[], shards_wanted);
    let shard_items: Vec<Vec<usize>> = (0..shards_wanted)
        .map(|w| part.nodes_of(w))
        .filter(|items| !items.is_empty())
        .collect();
    let shards = shard_items.len();

    // Per-shard setup on the coordinator, in shard order.
    let mut states = Vec::with_capacity(shards);
    for (slot, items) in shard_items.iter().enumerate() {
        states.push(build_state(slot, items)?);
    }

    // Per-shard hooks, likewise built in deterministic shard order.
    let shard_hooks: Vec<Option<Box<dyn ExecHook + Send>>> =
        (0..shards).map(|s| hooks.map(|f| f(s))).collect();

    let mut producers: Vec<RingProducer> = Vec::with_capacity(shards);
    let mut consumers: Vec<RingConsumer> = Vec::with_capacity(shards);
    let mut monitors: Vec<RingMonitor> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (p, c) = ring(RING_CAPACITY);
        monitors.push(p.monitor());
        producers.push(p);
        consumers.push(c);
    }

    let finished = AtomicUsize::new(0);
    let run_one = &run_one;
    let finished_ref = &finished;
    let t0 = Instant::now();
    let mut compute_wall = Duration::ZERO;
    let mut sync_wall = Duration::ZERO;

    type ShardOut = (
        Result<Vec<(usize, ClusterStats)>, SweepError>,
        Vec<TraceEvent>,
        Option<Box<dyn ExecHook + Send>>,
    );
    type Joined = (
        Vec<Vec<(usize, ClusterStats)>>,
        Vec<Vec<TraceEvent>>,
        Vec<Box<dyn ExecHook + Send>>,
    );
    let outcome: Result<Joined, SweepError> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (((items, mut state), mut producer), mut hook) in shard_items
            .iter()
            .zip(states)
            .zip(producers)
            .zip(shard_hooks)
        {
            handles.push(scope.spawn(move || -> ShardOut {
                let mut tracer = if tracing { Tracer::on() } else { Tracer::off() };
                let mut local: Vec<(usize, ClusterStats)> = Vec::with_capacity(items.len());
                let mut failure: Option<SweepError> = None;
                for &item in items {
                    if let Some(h) = &mut hook {
                        h.on_window(
                            SimTime::from_fs(item as u64),
                            SimTime::from_fs(item as u64 + 1),
                        );
                    }
                    match run_one(&mut state, item, &mut tracer) {
                        Ok((values, st)) => {
                            debug_assert_eq!(values.len(), n_metrics);
                            for (pos, v) in values.into_iter().enumerate() {
                                // Key each sample by (item, metric):
                                // the timestamp channel carries the
                                // slot, the payload the value. The key
                                // is u64 end-to-end — computing it in
                                // usize would overflow on 32-bit
                                // targets before the cast.
                                let key = item as u64 * n_metrics as u64 + pos as u64;
                                producer.push_spin(SimTime::from_fs(key), v);
                            }
                            local.push((item, st));
                        }
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                if let Some(h) = &mut hook {
                    let last = items.last().copied().unwrap_or(0) as u64;
                    h.on_barrier(SimTime::from_fs(last + 1));
                }
                finished_ref.fetch_add(1, Ordering::Release);
                let result = match failure {
                    None => Ok(local),
                    Some(e) => Err(e),
                };
                (result, tracer.take_events(), hook)
            }));
        }

        // Live drain: keep the rings shallow while workers run.
        while finished.load(Ordering::Acquire) < shards {
            let mut drained = false;
            for c in &mut consumers {
                while let Some((key, v)) = c.try_pop() {
                    // Split the u64 key before narrowing: `as usize`
                    // on the raw key truncates on 32-bit targets.
                    let (key, n) = (key.as_fs(), n_metrics.max(1) as u64);
                    metrics[(key / n) as usize][(key % n) as usize] = v;
                    drained = true;
                }
            }
            if !drained {
                std::thread::yield_now();
            }
        }
        compute_wall = t0.elapsed();

        // Final drain after the last worker exited, then join.
        let t1 = Instant::now();
        for c in &mut consumers {
            while let Some((key, v)) = c.try_pop() {
                let (key, n) = (key.as_fs(), n_metrics.max(1) as u64);
                metrics[(key / n) as usize][(key % n) as usize] = v;
            }
        }
        let mut all = Vec::with_capacity(shards);
        let mut traces = Vec::with_capacity(shards);
        let mut out_hooks = Vec::with_capacity(shards);
        let mut first_err: Option<(usize, SweepError)> = None;
        for h in handles {
            match h.join() {
                Ok((result, events, hook)) => {
                    // Traces and hooks come back in shard order
                    // because the handles were spawned in shard
                    // order — the merge never depends on timing.
                    traces.push(events);
                    if let Some(hk) = hook {
                        out_hooks.push(hk);
                    }
                    match result {
                        Ok(local) => all.push(local),
                        Err(e) => {
                            // Keep the error of the lowest failing
                            // item so the reported failure does not
                            // depend on shard scheduling.
                            let item = match &e {
                                SweepError::Scenario { index, .. } => *index,
                                _ => usize::MAX,
                            };
                            if first_err.as_ref().is_none_or(|(i, _)| item < *i) {
                                first_err = Some((item, e));
                            }
                        }
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        sync_wall = t1.elapsed();
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok((all, traces, out_hooks)),
        }
    });

    let (per_shard, traces, out_hooks) = outcome?;
    for (item, st) in per_shard.into_iter().flatten() {
        stats[item] = st;
    }
    let ring_high_water = monitors
        .iter()
        .map(RingMonitor::high_water)
        .max()
        .unwrap_or(0);

    Ok(ShardRun {
        metrics,
        stats,
        shards,
        ring_high_water,
        compute_wall,
        sync_wall,
        traces,
        hooks: out_hooks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double_and_count(workers: usize) -> ShardRun {
        run_sharded(
            10,
            2,
            workers,
            false,
            None,
            |_slot, _items| Ok(0u64),
            |state: &mut u64, item, _tracer: &mut Tracer| {
                *state += 1;
                Ok((
                    vec![item as f64 * 2.0, item as f64 + 0.5],
                    ClusterStats {
                        iterations: item as u64,
                        ..Default::default()
                    },
                ))
            },
        )
        .unwrap()
    }

    #[test]
    fn rows_are_keyed_by_item_not_by_schedule() {
        for workers in [1, 3, 8] {
            let run = double_and_count(workers);
            for (i, row) in run.metrics.iter().enumerate() {
                assert_eq!(row[0], i as f64 * 2.0, "workers={workers}");
                assert_eq!(row[1], i as f64 + 0.5);
            }
            for (i, st) in run.stats.iter().enumerate() {
                assert_eq!(st.iterations, i as u64);
            }
            assert!(run.shards <= workers.max(1));
        }
    }

    #[test]
    fn worker_error_reports_the_lowest_failing_item() {
        let err = run_sharded(
            8,
            1,
            4,
            false,
            None,
            |_, _| Ok(()),
            |_state: &mut (), item, _tracer: &mut Tracer| {
                if item >= 3 {
                    Err(SweepError::scenario(item, "boom"))
                } else {
                    Ok((vec![0.0], ClusterStats::default()))
                }
            },
        )
        .unwrap_err();
        match err {
            SweepError::Scenario { index, .. } => assert_eq!(index, 3),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn build_failure_aborts_before_spawning() {
        let err = run_sharded(
            4,
            1,
            2,
            false,
            None,
            |slot, _| {
                if slot == 1 {
                    Err(SweepError::invalid("bad slot"))
                } else {
                    Ok(())
                }
            },
            |_: &mut (), _, _tracer: &mut Tracer| Ok((vec![0.0], ClusterStats::default())),
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::Invalid(_)));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let run = run_sharded(
            0,
            3,
            4,
            false,
            None,
            |_, _| Ok(()),
            |_: &mut (), _, _tracer: &mut Tracer| Ok((vec![0.0; 3], ClusterStats::default())),
        )
        .unwrap();
        assert!(run.metrics.is_empty());
        assert_eq!(run.shards, 0);
    }

    #[test]
    fn tracing_and_hooks_observe_every_item_per_shard() {
        use ams_exec::CountingHook;
        use ams_scope::SpanKind;
        use std::sync::Mutex;

        let handles: Arc<Mutex<Vec<Arc<Mutex<CountingHook>>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = handles.clone();
        let factory: HookFactory = Arc::new(move |_slot| {
            let h = Arc::new(Mutex::new(CountingHook::default()));
            sink.lock().unwrap().push(h.clone());
            Box::new(h)
        });

        let run = run_sharded(
            6,
            1,
            2,
            true,
            Some(&factory),
            |_, _| Ok(()),
            |_: &mut (), item, tracer: &mut Tracer| {
                let idx = item as u64;
                tracer.begin_with(SpanKind::Scenario, idx, idx);
                tracer.end_with(SpanKind::Scenario, idx + 1, idx);
                Ok((vec![item as f64], ClusterStats::default()))
            },
        )
        .unwrap();

        assert_eq!(run.shards, 2);
        assert_eq!(run.traces.len(), 2);
        assert_eq!(run.hooks.len(), 2);
        // Every item produced one begin/end span pair in its shard's
        // buffer; the union covers all six scenario indices.
        let mut seen: Vec<u64> = run
            .traces
            .iter()
            .flatten()
            .filter(|e| e.phase == ams_scope::Phase::Begin)
            .map(|e| e.arg)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        // One hook per shard, built in shard order; windows sum to the
        // item count, one barrier each, no finish (the caller owns it).
        let handles = handles.lock().unwrap();
        assert_eq!(handles.len(), 2);
        let windows: u64 = handles.iter().map(|h| h.lock().unwrap().windows).sum();
        assert_eq!(windows, 6);
        for h in handles.iter() {
            let h = h.lock().unwrap();
            assert_eq!(h.barriers, 1);
            assert_eq!(h.finishes, 0);
        }
    }
}
