//! Std-only JSON serialization for sweep specs and reports.
//!
//! The build environment has no `serde`, so this module carries a
//! minimal JSON value type ([`Json`]) with a recursive-descent parser
//! and a deterministic compact writer, plus the mappings for
//! [`SweepSpec`] and [`SweepReport`]. It is the substrate of the
//! `ams-serve` wire protocol and of examples that dump reports to disk.
//!
//! # Encoding conventions
//!
//! * `u64` fields (seeds, counters) are emitted as **decimal strings**,
//!   not JSON numbers — JSON numbers travel as `f64` and lose precision
//!   above 2⁵³, and seeds must round-trip bit-exactly.
//! * `f64` values are emitted with Rust's shortest round-trip formatting
//!   (so `parse ∘ emit` is the identity on finite values); the
//!   non-finite values JSON cannot express are encoded as the strings
//!   `"NaN"`, `"inf"` and `"-inf"`.
//! * Object keys are written in a fixed order, so emission is
//!   byte-deterministic for a given value.

use crate::report::{ScenarioResult, SweepReport};
use crate::spec::SweepSpec;
use crate::SweepError;
use ams_core::ClusterStats;
use ams_exec::ExecStats;
use ams_math::SolveStats;
use ams_monitor::{codes as mon_codes, Verdict};
use std::fmt::Write as _;
use std::time::Duration;

/// A JSON document: the usual six value kinds. Objects preserve
/// insertion order so rendering is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (later duplicates win on
    /// lookup, but the builders here never emit duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An `f64` under the conventions above: a JSON number, or one of
    /// the strings `"NaN"` / `"inf"` / `"-inf"`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// A `u64` under the conventions above: a decimal string (exact), or
    /// a JSON number with an exact integer value (convenience for
    /// hand-written requests).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Str(s) => s.parse().ok(),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// A `usize` (same lexical forms as [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Wraps an `f64` under the encoding conventions (non-finite values
    /// become strings).
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("NaN".into())
        } else if v > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }

    /// Wraps a `u64` as a decimal string (exact at any magnitude).
    pub fn from_u64(v: u64) -> Json {
        Json::Str(v.to_string())
    }

    /// Renders the value as compact JSON (no whitespace), with the
    /// fixed field order of the underlying object — byte-deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                // Shortest round-trip decimal; JSON has no Infinity/NaN
                // (those are encoded as strings by `from_f64`).
                debug_assert!(v.is_finite(), "non-finite Num: use from_f64");
                let _ = write!(out, "{v:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A rendered message with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // protocol; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape \\{} at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SweepSpec ↔ JSON
// ---------------------------------------------------------------------------

/// Serializes a spec: parameter names, base seed and every scenario's
/// `(index, seed, values)` — explicit rather than re-derivable, so
/// filtered specs ([`SweepSpec::retain`]) round-trip too.
pub fn spec_to_json(spec: &SweepSpec) -> Json {
    let scenarios = spec
        .scenarios()
        .iter()
        .map(|sc| {
            Json::Obj(vec![
                ("index".into(), Json::from_u64(sc.index() as u64)),
                ("seed".into(), Json::from_u64(sc.seed())),
                (
                    "values".into(),
                    Json::Arr(sc.values().iter().map(|&v| Json::from_f64(v)).collect()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "names".into(),
            Json::Arr(spec.names().iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        ("base_seed".into(), Json::from_u64(spec.base_seed())),
        ("scenarios".into(), Json::Arr(scenarios)),
    ])
}

fn field<'j>(value: &'j Json, key: &str) -> Result<&'j Json, SweepError> {
    value
        .get(key)
        .ok_or_else(|| SweepError::invalid(format!("missing field {key:?}")))
}

fn parse_f64(value: &Json, what: &str) -> Result<f64, SweepError> {
    value
        .as_f64()
        .ok_or_else(|| SweepError::invalid(format!("{what} is not a number")))
}

fn parse_u64(value: &Json, what: &str) -> Result<u64, SweepError> {
    value
        .as_u64()
        .ok_or_else(|| SweepError::invalid(format!("{what} is not a u64")))
}

fn parse_strings(value: &Json, what: &str) -> Result<Vec<String>, SweepError> {
    value
        .as_arr()
        .ok_or_else(|| SweepError::invalid(format!("{what} is not an array")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| SweepError::invalid(format!("{what} entry is not a string")))
        })
        .collect()
}

fn parse_f64s(value: &Json, what: &str) -> Result<Vec<f64>, SweepError> {
    value
        .as_arr()
        .ok_or_else(|| SweepError::invalid(format!("{what} is not an array")))?
        .iter()
        .map(|v| parse_f64(v, what))
        .collect()
}

/// Reconstructs a spec serialized by [`spec_to_json`].
///
/// # Errors
///
/// [`SweepError::Invalid`] for missing fields, shape mismatches or an
/// empty scenario list.
pub fn spec_from_json(value: &Json) -> Result<SweepSpec, SweepError> {
    let names = parse_strings(field(value, "names")?, "names")?;
    let base_seed = parse_u64(field(value, "base_seed")?, "base_seed")?;
    let mut parts = Vec::new();
    for sc in field(value, "scenarios")?
        .as_arr()
        .ok_or_else(|| SweepError::invalid("scenarios is not an array"))?
    {
        let index = parse_u64(field(sc, "index")?, "scenario index")? as usize;
        let seed = parse_u64(field(sc, "seed")?, "scenario seed")?;
        let values = parse_f64s(field(sc, "values")?, "scenario values")?;
        if values.len() != names.len() {
            return Err(SweepError::invalid(format!(
                "scenario #{index} has {} values for {} parameters",
                values.len(),
                names.len()
            )));
        }
        parts.push((index, seed, values));
    }
    if parts.is_empty() {
        return Err(SweepError::invalid("spec has no scenarios"));
    }
    Ok(SweepSpec::from_parts(names, base_seed, parts))
}

// ---------------------------------------------------------------------------
// SweepReport ↔ JSON
// ---------------------------------------------------------------------------

fn cluster_stats_to_json(s: &ClusterStats) -> Json {
    Json::Obj(vec![
        ("iterations".into(), Json::from_u64(s.iterations)),
        ("firings".into(), Json::from_u64(s.firings)),
        ("probe_samples".into(), Json::from_u64(s.probe_samples)),
        (
            "newton_iterations".into(),
            Json::from_u64(s.newton_iterations),
        ),
        ("factorizations".into(), Json::from_u64(s.factorizations)),
        (
            "symbolic_analyses".into(),
            Json::from_u64(s.solve.symbolic_analyses),
        ),
        (
            "numeric_refactors".into(),
            Json::from_u64(s.solve.numeric_refactors),
        ),
        ("nnz".into(), Json::from_u64(s.solve.nnz)),
        ("fill_in".into(), Json::from_u64(s.solve.fill_in)),
        (
            "jacobian_reused".into(),
            Json::from_u64(s.solve.jacobian_reused),
        ),
    ])
}

fn cluster_stats_from_json(value: &Json) -> Result<ClusterStats, SweepError> {
    Ok(ClusterStats {
        iterations: parse_u64(field(value, "iterations")?, "iterations")?,
        firings: parse_u64(field(value, "firings")?, "firings")?,
        probe_samples: parse_u64(field(value, "probe_samples")?, "probe_samples")?,
        newton_iterations: parse_u64(field(value, "newton_iterations")?, "newton_iterations")?,
        factorizations: parse_u64(field(value, "factorizations")?, "factorizations")?,
        solve: SolveStats {
            symbolic_analyses: parse_u64(field(value, "symbolic_analyses")?, "symbolic_analyses")?,
            numeric_refactors: parse_u64(field(value, "numeric_refactors")?, "numeric_refactors")?,
            nnz: parse_u64(field(value, "nnz")?, "nnz")?,
            fill_in: parse_u64(field(value, "fill_in")?, "fill_in")?,
            jacobian_reused: parse_u64(field(value, "jacobian_reused")?, "jacobian_reused")?,
        },
    })
}

/// One verdict under the wire conventions: passes and vacuous
/// outcomes are bare strings, failures carry their code and witness
/// point.
fn verdict_to_json(v: &Verdict) -> Json {
    match v {
        Verdict::Pass => Json::Str("pass".into()),
        Verdict::Vacuous => Json::Str("vacuous".into()),
        Verdict::Fail { code, t, value } => Json::Obj(vec![
            ("code".into(), Json::Str((*code).into())),
            ("t".into(), Json::from_f64(*t)),
            ("value".into(), Json::from_f64(*value)),
        ]),
    }
}

fn verdict_from_json(value: &Json) -> Result<Verdict, SweepError> {
    match value {
        Json::Str(s) if s == "pass" => Ok(Verdict::Pass),
        Json::Str(s) if s == "vacuous" => Ok(Verdict::Vacuous),
        Json::Obj(_) => {
            let code = field(value, "code")?
                .as_str()
                .ok_or_else(|| SweepError::invalid("verdict code is not a string"))?;
            // Map the parsed string back onto the static registry so
            // the verdict carries the same `&'static str` a live run
            // would (and unknown codes fail loudly).
            let code = mon_codes::code_number(code)
                .and_then(mon_codes::code_for_number)
                .ok_or_else(|| SweepError::invalid(format!("unknown monitor code {code:?}")))?;
            Ok(Verdict::Fail {
                code,
                t: parse_f64(field(value, "t")?, "verdict t")?,
                value: parse_f64(field(value, "value")?, "verdict value")?,
            })
        }
        _ => Err(SweepError::invalid("verdict is not a string or object")),
    }
}

/// Serializes a report: metric names, per-scenario rows (with solver
/// counters) and the exec-level aggregate. The trace, a measurement
/// rather than a result, is not serialized.
pub fn report_to_json(report: &SweepReport) -> Json {
    let monitored = !report.monitor_names.is_empty();
    let scenarios = report
        .scenarios
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("index".into(), Json::from_u64(r.index as u64)),
                ("label".into(), Json::Str(r.label.clone())),
                (
                    "metrics".into(),
                    Json::Arr(r.metrics.iter().map(|&v| Json::from_f64(v)).collect()),
                ),
                ("stats".into(), cluster_stats_to_json(&r.stats)),
            ];
            if monitored {
                fields.push((
                    "verdicts".into(),
                    Json::Arr(r.verdicts.iter().map(verdict_to_json).collect()),
                ));
            }
            Json::Obj(fields)
        })
        .collect();
    let exec = Json::Obj(vec![
        ("windows".into(), Json::from_u64(report.exec.windows)),
        ("barriers".into(), Json::from_u64(report.exec.barriers)),
        (
            "ring_high_water".into(),
            Json::from_u64(report.exec.ring_high_water as u64),
        ),
        (
            "compute_wall_ns".into(),
            Json::from_u64(report.exec.compute_wall.as_nanos() as u64),
        ),
        (
            "sync_wall_ns".into(),
            Json::from_u64(report.exec.sync_wall.as_nanos() as u64),
        ),
        (
            "lint_errors".into(),
            Json::from_u64(report.exec.lint_errors as u64),
        ),
        (
            "lint_warnings".into(),
            Json::from_u64(report.exec.lint_warnings as u64),
        ),
    ]);
    let mut top = vec![
        (
            "metric_names".to_string(),
            Json::Arr(
                report
                    .metric_names
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
        ("scenarios".into(), Json::Arr(scenarios)),
        ("exec".into(), exec),
        ("fingerprint".into(), Json::from_u64(report.fingerprint())),
    ];
    // Lane-batched runs record their shape; scalar documents stay
    // byte-identical to pre-lane serializations.
    if report.lanes > 1 {
        top.push(("lanes".into(), Json::from_u64(report.lanes as u64)));
        top.push(("bundles".into(), Json::from_u64(report.bundles as u64)));
    }
    // Space-gated runs record what was pruned; ungated documents stay
    // byte-identical to pre-space serializations.
    if !report.space_pruned.is_empty() {
        let pruned = report
            .space_pruned
            .iter()
            .map(|(i, code)| {
                Json::Obj(vec![
                    ("index".into(), Json::from_u64(*i as u64)),
                    ("code".into(), Json::Str(code.clone())),
                ])
            })
            .collect();
        top.push(("space_pruned".into(), Json::Arr(pruned)));
    }
    // Prefix-shared runs record the sharing; run-from-zero documents
    // stay byte-identical to pre-checkpoint serializations.
    if report.prefix_forks > 0 {
        top.push(("prefix_forks".into(), Json::from_u64(report.prefix_forks)));
        top.push(("prefix_steps".into(), Json::from_u64(report.prefix_steps)));
    }
    // Monitored runs record their property names; unmonitored documents
    // stay byte-identical to pre-monitor serializations.
    if monitored {
        top.push((
            "monitor_names".into(),
            Json::Arr(
                report
                    .monitor_names
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ));
    }
    Json::Obj(top)
}

/// Reconstructs a report serialized by [`report_to_json`].
///
/// The exec aggregate loses its per-cluster entries (they duplicate the
/// scenario rows) and the trace is always `None`. The fingerprint of
/// the parsed report equals the original's — and when the serialized
/// `"fingerprint"` field disagrees (a corrupted or hand-edited
/// document), parsing fails.
///
/// # Errors
///
/// [`SweepError::Invalid`] for structural violations or a fingerprint
/// mismatch.
pub fn report_from_json(value: &Json) -> Result<SweepReport, SweepError> {
    let metric_names = parse_strings(field(value, "metric_names")?, "metric_names")?;
    let monitor_names = match value.get("monitor_names") {
        Some(v) => parse_strings(v, "monitor_names")?,
        None => Vec::new(),
    };
    let mut scenarios = Vec::new();
    for sc in field(value, "scenarios")?
        .as_arr()
        .ok_or_else(|| SweepError::invalid("scenarios is not an array"))?
    {
        let metrics = parse_f64s(field(sc, "metrics")?, "metrics")?;
        if metrics.len() != metric_names.len() {
            return Err(SweepError::invalid("metric row shape mismatch"));
        }
        let verdicts = if monitor_names.is_empty() {
            Vec::new()
        } else {
            let vs: Vec<Verdict> = field(sc, "verdicts")?
                .as_arr()
                .ok_or_else(|| SweepError::invalid("verdicts is not an array"))?
                .iter()
                .map(verdict_from_json)
                .collect::<Result<_, _>>()?;
            if vs.len() != monitor_names.len() {
                return Err(SweepError::invalid("verdict row shape mismatch"));
            }
            vs
        };
        scenarios.push(ScenarioResult {
            index: parse_u64(field(sc, "index")?, "index")? as usize,
            label: field(sc, "label")?
                .as_str()
                .ok_or_else(|| SweepError::invalid("label is not a string"))?
                .to_string(),
            metrics,
            stats: cluster_stats_from_json(field(sc, "stats")?)?,
            verdicts,
        });
    }
    let ex = field(value, "exec")?;
    let mut exec = ExecStats {
        windows: parse_u64(field(ex, "windows")?, "windows")?,
        barriers: parse_u64(field(ex, "barriers")?, "barriers")?,
        ring_high_water: parse_u64(field(ex, "ring_high_water")?, "ring_high_water")? as usize,
        compute_wall: Duration::from_nanos(parse_u64(
            field(ex, "compute_wall_ns")?,
            "compute_wall_ns",
        )?),
        sync_wall: Duration::from_nanos(parse_u64(field(ex, "sync_wall_ns")?, "sync_wall_ns")?),
        lint_errors: parse_u64(field(ex, "lint_errors")?, "lint_errors")? as usize,
        lint_warnings: parse_u64(field(ex, "lint_warnings")?, "lint_warnings")? as usize,
        ..ExecStats::default()
    };
    for r in &scenarios {
        exec.clusters.push((r.label.clone(), r.stats));
    }
    let lanes = match value.get("lanes") {
        Some(v) => parse_u64(v, "lanes")? as usize,
        None => 1,
    };
    let bundles = match value.get("bundles") {
        Some(v) => parse_u64(v, "bundles")? as usize,
        None => 0,
    };
    let mut space_pruned = Vec::new();
    if let Some(v) = value.get("space_pruned") {
        for entry in v
            .as_arr()
            .ok_or_else(|| SweepError::invalid("space_pruned is not an array"))?
        {
            space_pruned.push((
                parse_u64(field(entry, "index")?, "index")? as usize,
                field(entry, "code")?
                    .as_str()
                    .ok_or_else(|| SweepError::invalid("space_pruned code is not a string"))?
                    .to_string(),
            ));
        }
    }
    let prefix_forks = match value.get("prefix_forks") {
        Some(v) => parse_u64(v, "prefix_forks")?,
        None => 0,
    };
    let prefix_steps = match value.get("prefix_steps") {
        Some(v) => parse_u64(v, "prefix_steps")?,
        None => 0,
    };
    let report = SweepReport {
        metric_names,
        monitor_names,
        scenarios,
        exec,
        trace: None,
        lanes,
        bundles,
        space_pruned,
        prefix_forks,
        prefix_steps,
    };
    if let Some(fp) = value.get("fingerprint") {
        let expected = parse_u64(fp, "fingerprint")?;
        if report.fingerprint() != expected {
            return Err(SweepError::invalid(format!(
                "fingerprint mismatch: document says {expected}, content hashes to {}",
                report.fingerprint()
            )));
        }
    }
    Ok(report)
}

/// Serializes a full [`MetricsRegistry`] — every counter, gauge and
/// histogram — grouped by kind, in registry (name) order, so the
/// rendering is byte-deterministic for a given registry. Histograms
/// expand to `{count, min, max, mean, p50, p95}` objects (empty ones
/// keep the stable key set, with `count` 0 and `"NaN"` statistics);
/// counters follow the module's decimal-string convention for `u64`.
pub fn metrics_to_json(metrics: &ams_scope::MetricsRegistry) -> Json {
    use ams_scope::Metric;
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, metric) in metrics.iter() {
        match metric {
            Metric::Counter(v) => counters.push((name.to_string(), Json::from_u64(*v))),
            Metric::Gauge(v) => gauges.push((name.to_string(), Json::from_f64(*v))),
            Metric::Histogram(h) => histograms.push((
                name.to_string(),
                Json::Obj(vec![
                    ("count".into(), Json::from_u64(h.count())),
                    ("min".into(), Json::from_f64(h.min())),
                    ("max".into(), Json::from_f64(h.max())),
                    ("mean".into(), Json::from_f64(h.mean())),
                    ("p50".into(), Json::from_f64(h.percentile(50.0))),
                    ("p95".into(), Json::from_f64(h.percentile(95.0))),
                ]),
            )),
        }
    }
    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_value_round_trips() {
        let doc = r#"{"a":[1,2.5,-3e-7],"b":"x\"\\\nA","c":true,"d":null,"e":{}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"\\\nA"));
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"k" 1}"#).is_err());
    }

    #[test]
    fn f64_encoding_is_bit_exact_including_non_finite() {
        for v in [
            0.0,
            -0.0,
            1.5e-300,
            std::f64::consts::PI,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let j = Json::from_f64(v);
            let back = parse(&j.render()).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v}");
        }
        assert_eq!(
            Json::from_u64(u64::MAX).render(),
            "\"18446744073709551615\""
        );
        assert_eq!(
            parse("\"18446744073709551615\"").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn spec_round_trips_including_retained_subsets() {
        let mut spec =
            SweepSpec::monte_carlo(&[("r", 0.5, 2.0), ("c", 1e-9, 2e-9)], 16, 0xDEAD_BEEF).unwrap();
        spec.retain(|sc| sc.index() % 3 != 1);
        let json = spec_to_json(&spec);
        let back = spec_from_json(&json).unwrap();
        assert_eq!(back.names(), spec.names());
        assert_eq!(back.base_seed(), spec.base_seed());
        assert_eq!(back.scenarios(), spec.scenarios());
        // Rendering is deterministic.
        assert_eq!(json.render(), spec_to_json(&back).render());
    }

    #[test]
    fn spec_rejects_malformed_documents() {
        let spec = SweepSpec::grid(&[("r", &[1.0, 2.0])], 7).unwrap();
        let mut json = spec_to_json(&spec);
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "base_seed");
        }
        assert!(matches!(spec_from_json(&json), Err(SweepError::Invalid(_))));
        assert!(spec_from_json(
            &parse("{\"names\":[],\"base_seed\":\"0\",\"scenarios\":[]}").unwrap()
        )
        .is_err());
    }

    #[test]
    fn report_round_trips_and_verifies_fingerprint() {
        use ams_core::ClusterStats;
        let report = SweepReport {
            metric_names: vec!["v".into(), "t".into()],
            monitor_names: Vec::new(),
            scenarios: (0..4)
                .map(|i| ScenarioResult {
                    index: i,
                    label: format!("#{i}"),
                    metrics: vec![i as f64 * 1.25, if i == 2 { f64::NAN } else { -1.0 }],
                    verdicts: Vec::new(),
                    stats: ClusterStats {
                        iterations: 100 + i as u64,
                        firings: i as u64,
                        probe_samples: 7,
                        newton_iterations: 3,
                        factorizations: 2,
                        solve: SolveStats {
                            symbolic_analyses: u64::from(i == 0),
                            numeric_refactors: 1,
                            nnz: 33,
                            fill_in: 4,
                            jacobian_reused: 9,
                        },
                    },
                })
                .collect(),
            exec: ExecStats {
                windows: 4,
                barriers: 2,
                ring_high_water: 11,
                compute_wall: Duration::from_nanos(123_456_789),
                sync_wall: Duration::from_nanos(42),
                lint_warnings: 1,
                ..ExecStats::default()
            },
            trace: None,
            lanes: 8,
            bundles: 1,
            space_pruned: vec![(5, "SPC001".into())],
            prefix_forks: 4,
            prefix_steps: 64,
        };

        let doc = report_to_json(&report).render();
        let back = report_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(back.fingerprint(), report.fingerprint());
        // The lane shape round-trips; scalar documents omit the keys
        // and parse back to the scalar defaults.
        assert_eq!(back.lanes, 8);
        assert_eq!(back.bundles, 1);
        assert_eq!(back.space_pruned, report.space_pruned);
        assert_eq!(back.prefix_forks, 4);
        assert_eq!(back.prefix_steps, 64);
        let mut scalar = report.clone();
        scalar.lanes = 1;
        scalar.bundles = 0;
        scalar.space_pruned.clear();
        scalar.prefix_forks = 0;
        scalar.prefix_steps = 0;
        let scalar_doc = report_to_json(&scalar).render();
        assert!(!scalar_doc.contains("lanes"), "{scalar_doc}");
        assert!(!scalar_doc.contains("space_pruned"), "{scalar_doc}");
        assert!(!scalar_doc.contains("prefix_forks"), "{scalar_doc}");
        let scalar_back = report_from_json(&parse(&scalar_doc).unwrap()).unwrap();
        assert_eq!(scalar_back.lanes, 1);
        assert_eq!(scalar_back.bundles, 0);
        assert!(scalar_back.space_pruned.is_empty());
        assert_eq!(scalar_back.prefix_forks, 0);
        assert_eq!(back.metric_names, report.metric_names);
        assert_eq!(back.scenarios.len(), report.scenarios.len());
        for (a, b) in report.scenarios.iter().zip(&back.scenarios) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.metrics.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.metrics.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(back.exec.windows, 4);
        assert_eq!(back.exec.compute_wall, Duration::from_nanos(123_456_789));

        // A tampered metric fails the embedded fingerprint check.
        let tampered = doc.replace("1.25", "1.26");
        assert!(report_from_json(&parse(&tampered).unwrap()).is_err());

        // Without monitors the document never mentions them.
        assert!(!doc.contains("verdicts"), "{doc}");
        assert!(!doc.contains("monitor_names"), "{doc}");
    }

    #[test]
    fn monitor_verdicts_round_trip_with_their_fingerprint() {
        use ams_core::ClusterStats;
        let mut report = SweepReport {
            metric_names: vec!["v".into()],
            monitor_names: vec!["settled".into(), "bounded".into()],
            scenarios: (0..3)
                .map(|i| ScenarioResult {
                    index: i,
                    label: format!("#{i}"),
                    metrics: vec![i as f64],
                    verdicts: vec![
                        if i == 1 {
                            Verdict::Fail {
                                code: mon_codes::MON001,
                                t: 2.5e-6,
                                value: 0.71,
                            }
                        } else {
                            Verdict::Pass
                        },
                        Verdict::Vacuous,
                    ],
                    stats: ClusterStats::default(),
                })
                .collect(),
            exec: ExecStats::default(),
            trace: None,
            lanes: 1,
            bundles: 0,
            space_pruned: Vec::new(),
            prefix_forks: 0,
            prefix_steps: 0,
        };

        let doc = report_to_json(&report).render();
        assert!(doc.contains("\"monitor_names\""), "{doc}");
        assert!(doc.contains("\"MON001\""), "{doc}");
        let back = report_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(back.fingerprint(), report.fingerprint());
        assert_eq!(back.monitor_names, report.monitor_names);
        for (a, b) in report.scenarios.iter().zip(&back.scenarios) {
            assert_eq!(a.verdicts, b.verdicts);
        }

        // A tampered verdict fails the embedded fingerprint check, and
        // an unknown code is rejected before hashing.
        let flipped = doc.replace("\"pass\"", "\"vacuous\"");
        assert!(report_from_json(&parse(&flipped).unwrap()).is_err());
        let unknown = doc.replace("MON001", "MON999");
        assert!(report_from_json(&parse(&unknown).unwrap()).is_err());

        // A verdict row that disagrees with the property count is a
        // shape error.
        report.scenarios[0].verdicts.pop();
        let short = report_to_json(&report).render();
        assert!(report_from_json(&parse(&short).unwrap()).is_err());
    }
}
