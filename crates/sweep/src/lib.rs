//! Batched multi-scenario simulation: parameter sweeps, corner
//! analysis and Monte Carlo over one AMS model.
//!
//! The DATE 2003 paper motivates SystemC-AMS with *simulation speed*:
//! analog verification is dominated not by one long run but by **many
//! short variants** of the same model — process corners, component
//! tolerances, stimulus variations. This crate turns that workload into
//! a first-class batch job:
//!
//! * [`SweepSpec`] enumerates scenarios — full-factorial grids
//!   ([`SweepSpec::grid`]), explicit rows ([`SweepSpec::list`]) or
//!   Monte-Carlo samples ([`SweepSpec::monte_carlo`]) — each with a
//!   deterministic per-scenario PRNG seed derived only from the base
//!   seed and the scenario index;
//! * [`NetlistSweep`] runs transient analyses of value-variants of one
//!   [`Circuit`](ams_net::Circuit). Scenarios share the topology, so
//!   the sparse **symbolic analysis is paid once** and adopted by every
//!   sibling solver ([`TransientSolver::adopt_symbolic_factor`]
//!   (ams_net::TransientSolver::adopt_symbolic_factor)) — per-scenario
//!   cost drops to numeric refactorization;
//! * [`TdfSweep`] runs variants of one TDF cluster, elaborating the
//!   graph **once per worker** and replaying scenarios through
//!   [`Cluster::reset`](ams_core::Cluster::reset) instead of
//!   re-elaborating;
//! * the `ams-lint` gate runs **once per topology**, not per scenario;
//! * results stream back through the `ams-exec` SPSC rings into a
//!   [`SweepReport`]: per-scenario metric rows, min/max/mean/percentile
//!   summaries, worst-case scenario identification, and aggregated
//!   solver counters.
//!
//! # Determinism
//!
//! Scenario seeds, scheduling (via [`ams_exec::partition`]) and the
//! shared symbolic factor are all computed on the coordinator from the
//! spec alone. The same spec therefore produces a **bit-identical**
//! [`SweepReport`] (compare [`SweepReport::fingerprint`]) regardless of
//! the worker count.
//!
//! # Example
//!
//! ```
//! use ams_net::{Circuit, IntegrationMethod};
//! use ams_sweep::{NetlistSweep, SweepSpec};
//!
//! // RC low-pass template; sweep R over a 3x corner grid.
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.voltage_source("V", inp, Circuit::GROUND, 1.0).unwrap();
//! let r = ckt.resistor("R", inp, out, 1e3).unwrap();
//! ckt.capacitor("C", out, Circuit::GROUND, 1e-9).unwrap();
//!
//! let spec = SweepSpec::grid(&[("r", &[0.5e3, 1e3, 2e3])], 42).unwrap();
//! let report = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
//!     .fixed_step(5e-6, 1e-8)
//!     .run(
//!         &spec,
//!         2,
//!         &["v_out"],
//!         |ckt, sc| ckt.set_resistance(r, sc.value("r")),
//!         |tr, m| m[0] = tr.voltage(out),
//!     )
//!     .unwrap();
//! let s = report.summary("v_out").unwrap();
//! assert_eq!(s.count, 3);
//! assert!(s.min > 0.99); // all corners settle near 1 V
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod json;
pub mod netlist;
pub mod report;
pub mod spec;
pub mod tdf;

pub use engine::HookFactory;
pub use netlist::{FactorSink, NetlistSweep, ProgressFn, RunMode};
// Re-exported because it appears in the public surface twice over:
// [`ScenarioResult::stats`] and the [`ProgressFn`] callback signature.
pub use ams_core::ClusterStats;
// Re-exported because monitor specs and verdicts appear in the sweep
// builder and report surfaces.
pub use ams_monitor::{MonitorSpec, Verdict};
pub use report::{MetricSummary, MonitorSummary, ScenarioResult, SweepReport};
pub use spec::{Scenario, SweepSpec};
pub use tdf::{LaneSweepModel, SweepModel, TdfSweep};

use ams_lint::LintReport;
use ams_net::NetError;
use std::fmt;
// Under the `loom` feature the token is rebuilt on model-checked
// atomics so `tests/loom_cancel.rs` can explore its interleavings.
#[cfg(feature = "loom")]
use loom::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "loom")]
use loom::sync::Arc;
#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(feature = "loom"))]
use std::sync::Arc;

/// A cooperative cancellation flag shared between a sweep run and its
/// controller (another thread, a service scheduler, a signal handler).
///
/// Sweeps check the token **at scenario boundaries**: a cancelled run
/// finishes the scenarios currently in flight (at most one per worker),
/// skips everything else and returns [`SweepError::Cancelled`]. The
/// token is one atomic flag — clone it freely, set it from anywhere.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Errors surfaced by a sweep run.
#[derive(Debug)]
pub enum SweepError {
    /// The topology failed the pre-sweep lint gate (policy-denied
    /// diagnostics). The whole batch is rejected before any scenario
    /// runs.
    Lint(LintReport),
    /// A scenario's simulation failed; the payload says which one.
    Scenario {
        /// Index of the failing scenario.
        index: usize,
        /// The underlying failure, rendered.
        reason: String,
    },
    /// A netlist-level failure outside any single scenario (template
    /// validation, DC operating point of the shared topology, …).
    Net(NetError),
    /// A TDF-level failure outside any single scenario (elaboration of
    /// the shared graph).
    Core(ams_core::CoreError),
    /// The sweep specification itself was malformed.
    Invalid(String),
    /// The run was cancelled through its [`CancelToken`] before every
    /// scenario completed. Scenarios already finished are discarded;
    /// cancellation is a control-flow outcome, not a partial report.
    Cancelled,
}

impl SweepError {
    pub(crate) fn invalid(msg: impl Into<String>) -> SweepError {
        SweepError::Invalid(msg.into())
    }

    pub(crate) fn scenario(index: usize, err: impl fmt::Display) -> SweepError {
        SweepError::Scenario {
            index,
            reason: err.to_string(),
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Lint(report) => write!(
                f,
                "sweep topology rejected by lint ({} error(s)):\n{}",
                report.error_count(),
                report.render()
            ),
            SweepError::Scenario { index, reason } => {
                write!(f, "scenario #{index} failed: {reason}")
            }
            SweepError::Net(e) => write!(f, "netlist error: {e}"),
            SweepError::Core(e) => write!(f, "TDF error: {e}"),
            SweepError::Invalid(msg) => write!(f, "invalid sweep: {msg}"),
            SweepError::Cancelled => write!(f, "sweep cancelled"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<NetError> for SweepError {
    fn from(e: NetError) -> Self {
        SweepError::Net(e)
    }
}

impl From<ams_core::CoreError> for SweepError {
    fn from(e: ams_core::CoreError) -> Self {
        SweepError::Core(e)
    }
}
