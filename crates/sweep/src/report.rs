//! Sweep results: per-scenario metric rows, statistical summaries and
//! worst-case identification.

use ams_core::ClusterStats;
use ams_exec::ExecStats;
use ams_monitor::Verdict;

/// One scenario's outcome: its metric values (in the order of
/// [`SweepReport::metric_names`]) and the solver counters it spent.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario index (row of the spec).
    pub index: usize,
    /// Human-readable scenario label (`"#3 r=1.2000e3"`).
    pub label: String,
    /// Extracted metric values, one per metric.
    pub metrics: Vec<f64>,
    /// Solver counters of this scenario (transient steps map to
    /// `iterations`; the sparse symbolic/numeric split is in `solve`).
    pub stats: ClusterStats,
    /// Monitor verdicts, one per property in the order of
    /// [`SweepReport::monitor_names`]. Empty when the sweep ran without
    /// monitors.
    pub verdicts: Vec<Verdict>,
}

impl ScenarioResult {
    /// `true` when no monitor failed on this scenario (vacuous verdicts
    /// don't fail — they carry no evidence either way).
    pub fn monitors_passed(&self) -> bool {
        !self.verdicts.iter().any(Verdict::is_fail)
    }
}

/// Per-property aggregate of monitor verdicts across all scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSummary {
    /// Property name (from [`SweepReport::monitor_names`]).
    pub name: String,
    /// Scenarios on which the property passed.
    pub pass: usize,
    /// Scenarios on which the property failed.
    pub fail: usize,
    /// Scenarios on which the property was vacuous.
    pub vacuous: usize,
    /// The lowest-index failing scenario, with its violation code and
    /// witness point: `(scenario index, code, t, value)`.
    pub first_fail: Option<(usize, &'static str, f64, f64)>,
}

/// Distribution summary of one metric across all scenarios.
///
/// When **every** scenario's value is NaN (`count == 0`) the summary is
/// degenerate: `min`, `max` and `mean` are all NaN and the scenario
/// indices hold the sentinel [`MetricSummary::NO_SCENARIO`] — there is
/// no scenario that produced an extreme.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Metric name.
    pub name: String,
    /// Scenarios contributing (NaN values are excluded and counted in
    /// [`MetricSummary::nan_count`]).
    pub count: usize,
    /// Scenarios whose value was NaN.
    pub nan_count: usize,
    /// Smallest value; NaN when no scenario contributed.
    pub min: f64,
    /// Scenario index of `min`, or [`MetricSummary::NO_SCENARIO`] when
    /// no scenario contributed.
    pub min_scenario: usize,
    /// Largest value; NaN when no scenario contributed.
    pub max: f64,
    /// Scenario index of `max`, or [`MetricSummary::NO_SCENARIO`] when
    /// no scenario contributed.
    pub max_scenario: usize,
    /// Arithmetic mean; NaN when no scenario contributed.
    pub mean: f64,
}

impl MetricSummary {
    /// Sentinel for [`MetricSummary::min_scenario`] /
    /// [`MetricSummary::max_scenario`] when `count == 0`: no scenario
    /// produced the (nonexistent) extreme.
    pub const NO_SCENARIO: usize = usize::MAX;
}

/// Aggregated result of a sweep run.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Metric names, shared by every [`ScenarioResult::metrics`] row.
    pub metric_names: Vec<String>,
    /// Per-scenario results, in scenario-index order.
    pub scenarios: Vec<ScenarioResult>,
    /// Execution-level statistics: `windows` counts scenarios,
    /// `barriers` counts workers, `clusters` holds one entry per
    /// scenario, `ring_high_water` is the peak occupancy of the result
    /// rings, and the wall clocks time the whole batch. Wall times and
    /// high-water marks are *measurements*, not results — they are
    /// excluded from [`SweepReport::fingerprint`].
    pub exec: ExecStats,
    /// The merged span trace when the sweep ran with tracing enabled
    /// (`.trace(true)` on the sweep builder), `None` otherwise. Tracks
    /// carry scenario spans per worker shard in deterministic shard
    /// order; export with [`ams_scope::chrome::export`]. Like the wall
    /// clocks, the trace is a measurement and excluded from
    /// [`SweepReport::fingerprint`] — but its simulated-time content is
    /// itself deterministic for a fixed `(spec, workers)` pair.
    pub trace: Option<ams_scope::ScopeTrace>,
    /// Lane width the run was batched at: 1 for a scalar run, `K` when
    /// scenarios were packed into `F64xK` bundles. Batching *policy*,
    /// not a simulation result — excluded from
    /// [`SweepReport::fingerprint`].
    pub lanes: usize,
    /// Number of lane bundles executed (0 for a scalar run). Like
    /// [`SweepReport::lanes`], excluded from the fingerprint.
    pub bundles: usize,
    /// Scenarios the sweep-space gate removed before any transient ran:
    /// `(scenario index, SPC code)` pairs, in scenario order. Empty when
    /// no [`space spec`](crate::NetlistSweep::space) was installed or
    /// nothing was doomed. Gate *policy*, not a simulation result — the
    /// surviving scenarios must fingerprint identically to a run over a
    /// hand-filtered spec, so this field is excluded from
    /// [`SweepReport::fingerprint`] (lanes/bundles precedent).
    pub space_pruned: Vec<(usize, String)>,
    /// Number of scenarios forked from a shared-prefix checkpoint
    /// (0 when the sweep ran every scenario from `t = 0`). Sharing
    /// *policy*, not a simulation result — a prefix-shared run must
    /// fingerprint identically to a run-from-zero sweep, so this field
    /// is excluded from [`SweepReport::fingerprint`] (lanes/bundles
    /// precedent).
    pub prefix_forks: u64,
    /// Solver steps (or TDF iterations) spent in the shared prefix run,
    /// counted once however many scenarios forked from it. Excluded
    /// from the fingerprint like [`SweepReport::prefix_forks`].
    pub prefix_steps: u64,
    /// Monitor property names, shared by every
    /// [`ScenarioResult::verdicts`] row. Empty when the sweep ran
    /// without monitors — and only then are verdicts excluded from
    /// [`SweepReport::fingerprint`], so pre-monitor reports hash
    /// exactly as before.
    pub monitor_names: Vec<String>,
}

impl SweepReport {
    /// Position of `metric` in the metric rows.
    pub fn metric_index(&self, metric: &str) -> Option<usize> {
        self.metric_names.iter().position(|n| n == metric)
    }

    /// All values of one metric, in scenario order.
    pub fn values(&self, metric: &str) -> Option<Vec<f64>> {
        let j = self.metric_index(metric)?;
        Some(self.scenarios.iter().map(|s| s.metrics[j]).collect())
    }

    /// Min/max/mean summary of one metric, with the scenario indices
    /// that produced the extremes. When every value is NaN the summary
    /// is degenerate: NaN extremes and mean,
    /// [`MetricSummary::NO_SCENARIO`] indices.
    pub fn summary(&self, metric: &str) -> Option<MetricSummary> {
        let j = self.metric_index(metric)?;
        let mut s = MetricSummary {
            name: metric.to_string(),
            count: 0,
            nan_count: 0,
            min: f64::INFINITY,
            min_scenario: MetricSummary::NO_SCENARIO,
            max: f64::NEG_INFINITY,
            max_scenario: MetricSummary::NO_SCENARIO,
            mean: f64::NAN,
        };
        let mut sum = 0.0;
        for r in &self.scenarios {
            let v = r.metrics[j];
            if v.is_nan() {
                s.nan_count += 1;
                continue;
            }
            s.count += 1;
            sum += v;
            if v < s.min {
                s.min = v;
                s.min_scenario = r.index;
            }
            if v > s.max {
                s.max = v;
                s.max_scenario = r.index;
            }
        }
        if s.count > 0 {
            s.mean = sum / s.count as f64;
        } else {
            // All-NaN metric: ±inf "extremes" would be fabrications —
            // no scenario produced them — so report NaN throughout.
            s.min = f64::NAN;
            s.max = f64::NAN;
        }
        Some(s)
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`) of one metric. NaN
    /// values are excluded.
    pub fn percentile(&self, metric: &str, p: f64) -> Option<f64> {
        let mut vals: Vec<f64> = self.values(metric)?;
        vals.retain(|v| !v.is_nan());
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * vals.len() as f64).ceil() as usize;
        Some(vals[rank.saturating_sub(1)])
    }

    /// The scenario with the largest `|value|` of `metric` — the
    /// worst case for error- or overshoot-style metrics.
    pub fn worst_case(&self, metric: &str) -> Option<&ScenarioResult> {
        let j = self.metric_index(metric)?;
        self.scenarios
            .iter()
            .filter(|s| !s.metrics[j].is_nan())
            .max_by(|a, b| {
                a.metrics[j]
                    .abs()
                    .partial_cmp(&b.metrics[j].abs())
                    .expect("NaN filtered")
            })
    }

    /// Sum of the per-scenario solver counters.
    pub fn totals(&self) -> ClusterStats {
        let mut t = ClusterStats::default();
        for s in &self.scenarios {
            t.merge(&s.stats);
        }
        t
    }

    /// An order-sensitive FNV-1a hash of the report's *simulation
    /// results*: scenario indices, metric bit patterns, and the
    /// step-level counters (accepted/rejected steps, Newton
    /// iterations). Two classes of fields are deliberately excluded:
    ///
    /// * wall clocks and ring high-water marks — measurements that vary
    ///   with machine load, so the same spec must fingerprint
    ///   identically no matter the worker count;
    /// * solver-*policy* counters (factorization counts, the sparse
    ///   symbolic/numeric split, Jacobian reuse) — bookkeeping that
    ///   varies with factor caching (an `ams-serve` warm-cache run pays
    ///   zero symbolic analyses yet computes bit-identical waveforms,
    ///   and must fingerprint identically to a cold run).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for name in &self.metric_names {
            h.bytes(name.as_bytes());
        }
        // Monitors fold in only when attached, so a monitor-free run
        // hashes exactly as it did before monitors existed.
        let monitored = !self.monitor_names.is_empty();
        if monitored {
            for name in &self.monitor_names {
                h.bytes(name.as_bytes());
            }
        }
        for s in &self.scenarios {
            h.u64(s.index as u64);
            for v in &s.metrics {
                h.u64(v.to_bits());
            }
            h.u64(s.stats.iterations);
            h.u64(s.stats.firings);
            h.u64(s.stats.newton_iterations);
            if monitored {
                for v in &s.verdicts {
                    v.fold_bits(|b| h.u64(b));
                }
            }
        }
        h.finish()
    }

    /// Per-property pass/fail/vacuous tallies across all scenarios,
    /// with the first failing witness each. Empty when the sweep ran
    /// without monitors.
    pub fn monitor_summary(&self) -> Vec<MonitorSummary> {
        self.monitor_names
            .iter()
            .enumerate()
            .map(|(j, name)| {
                let mut s = MonitorSummary {
                    name: name.clone(),
                    pass: 0,
                    fail: 0,
                    vacuous: 0,
                    first_fail: None,
                };
                for r in &self.scenarios {
                    match r.verdicts[j] {
                        Verdict::Pass => s.pass += 1,
                        Verdict::Vacuous => s.vacuous += 1,
                        Verdict::Fail { code, t, value } => {
                            s.fail += 1;
                            if s.first_fail.is_none() {
                                s.first_fail = Some((r.index, code, t, value));
                            }
                        }
                    }
                }
                s
            })
            .collect()
    }

    /// Scenarios on which every monitor held (no failing verdict), i.e.
    /// the sweep's yield numerator. Equals the scenario count when no
    /// monitors were attached.
    pub fn passing_scenarios(&self) -> usize {
        self.scenarios
            .iter()
            .filter(|s| s.monitors_passed())
            .count()
    }

    /// Exports the run's execution shape as `ams-scope` metrics under
    /// the `sweep.*` namespace: scenario count, lane width and bundle
    /// count (`sweep.lanes` is 1 and `sweep.bundles` 0 for scalar
    /// runs), plus the folded step/Newton counters. Merge into a
    /// service-level [`MetricsRegistry`](ams_scope::MetricsRegistry)
    /// with [`MetricsRegistry::merge`](ams_scope::MetricsRegistry::merge).
    pub fn scope_metrics(&self) -> ams_scope::MetricsRegistry {
        let mut m = ams_scope::MetricsRegistry::new();
        m.counter_add("sweep.scenarios", self.scenarios.len() as u64);
        m.gauge_set("sweep.lanes", self.lanes.max(1) as f64);
        m.counter_add("sweep.bundles", self.bundles as u64);
        let t = self.totals();
        m.counter_add("sweep.steps", t.iterations);
        m.counter_add("sweep.steps_rejected", t.firings);
        m.counter_add("sweep.newton_iterations", t.newton_iterations);
        m.counter_add("sweep.factorizations", t.factorizations);
        m.counter_add("sweep.space_pruned", self.space_pruned.len() as u64);
        for (_, code) in &self.space_pruned {
            m.counter_add(&format!("lint.space.{code}"), 1);
        }
        m.counter_add("sweep.prefix.forks", self.prefix_forks);
        m.counter_add("sweep.prefix.steps", self.prefix_steps);
        if !self.monitor_names.is_empty() {
            m.counter_add("monitor.properties", self.monitor_names.len() as u64);
            let mut pass = 0u64;
            let mut fail = 0u64;
            let mut vacuous = 0u64;
            for s in &self.scenarios {
                for v in &s.verdicts {
                    match v {
                        Verdict::Pass => pass += 1,
                        Verdict::Vacuous => vacuous += 1,
                        Verdict::Fail { code, .. } => {
                            fail += 1;
                            m.counter_add(&format!("monitor.{code}"), 1);
                        }
                    }
                }
            }
            m.counter_add("monitor.pass", pass);
            m.counter_add("monitor.fail", fail);
            m.counter_add("monitor.vacuous", vacuous);
            m.counter_add("monitor.scenarios_passed", self.passing_scenarios() as u64);
        }
        m
    }

    /// A compact human-readable table of all metric summaries.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "sweep: {} scenarios, {} metrics\n",
            self.scenarios.len(),
            self.metric_names.len()
        );
        if self.lanes > 1 {
            let _ = writeln!(
                out,
                "  lane-batched: {} bundles x {} lanes",
                self.bundles, self.lanes
            );
        }
        if !self.space_pruned.is_empty() {
            let _ = writeln!(
                out,
                "  space-pruned: {} scenario(s) proved doomed before running",
                self.space_pruned.len()
            );
        }
        if self.prefix_forks > 0 {
            let _ = writeln!(
                out,
                "  prefix-shared: {} fork(s) from a {}-step common prefix",
                self.prefix_forks, self.prefix_steps
            );
        }
        for name in &self.metric_names {
            if let Some(s) = self.summary(name) {
                if s.count == 0 {
                    let _ = writeln!(out, "  {name}: all {} value(s) NaN", s.nan_count);
                } else {
                    let _ = writeln!(
                        out,
                        "  {name}: min {:.6e} (#{}) | mean {:.6e} | max {:.6e} (#{})",
                        s.min, s.min_scenario, s.mean, s.max, s.max_scenario
                    );
                }
            }
        }
        if !self.monitor_names.is_empty() {
            let passed = self.passing_scenarios();
            let total = self.scenarios.len();
            let pct = if total > 0 {
                100.0 * passed as f64 / total as f64
            } else {
                100.0
            };
            let _ = writeln!(
                out,
                "  monitors: {} propertie(s), yield {passed}/{total} ({pct:.1}%)",
                self.monitor_names.len()
            );
            for s in self.monitor_summary() {
                let _ = write!(
                    out,
                    "    {}: {} pass, {} fail, {} vacuous",
                    s.name, s.pass, s.fail, s.vacuous
                );
                if let Some((idx, code, t, value)) = s.first_fail {
                    let _ = write!(
                        out,
                        " | first fail #{idx} {code} at t={t:.6e} v={value:.6e}"
                    );
                }
                out.push('\n');
            }
        }
        let t = self.totals();
        let _ = writeln!(
            out,
            "  solver: {} steps, {} factorizations ({} symbolic, {} numeric refactors)",
            t.iterations, t.factorizations, t.solve.symbolic_analyses, t.solve.numeric_refactors
        );
        out
    }
}

/// Minimal FNV-1a, enough to fingerprint a report without pulling in a
/// hashing dependency.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(values: &[f64]) -> SweepReport {
        SweepReport {
            metric_names: vec!["m".into()],
            scenarios: values
                .iter()
                .enumerate()
                .map(|(i, &v)| ScenarioResult {
                    index: i,
                    label: format!("#{i}"),
                    metrics: vec![v],
                    stats: ClusterStats {
                        iterations: 10 + i as u64,
                        ..Default::default()
                    },
                    verdicts: Vec::new(),
                })
                .collect(),
            exec: ExecStats::default(),
            trace: None,
            lanes: 1,
            bundles: 0,
            space_pruned: Vec::new(),
            prefix_forks: 0,
            prefix_steps: 0,
            monitor_names: Vec::new(),
        }
    }

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let r = report(&[3.0, -1.0, 7.0, 5.0]);
        let s = r.summary("m").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.min_scenario, 1);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.max_scenario, 2);
        assert!((s.mean - 3.5).abs() < 1e-12);
        assert!(r.summary("nope").is_none());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let r = report(&[15.0, 20.0, 35.0, 40.0, 50.0]);
        assert_eq!(r.percentile("m", 0.0).unwrap(), 15.0);
        assert_eq!(r.percentile("m", 30.0).unwrap(), 20.0);
        assert_eq!(r.percentile("m", 40.0).unwrap(), 20.0);
        assert_eq!(r.percentile("m", 50.0).unwrap(), 35.0);
        assert_eq!(r.percentile("m", 100.0).unwrap(), 50.0);
    }

    #[test]
    fn worst_case_uses_absolute_value_and_skips_nan() {
        let r = report(&[3.0, -9.0, f64::NAN, 5.0]);
        assert_eq!(r.worst_case("m").unwrap().index, 1);
        let s = r.summary("m").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.nan_count, 1);
    }

    #[test]
    fn all_nan_metric_summarizes_as_nan_not_inf() {
        // Regression: the summary used to report min:+inf / max:-inf
        // with a fabricated min_scenario of 0 and a 0.0/0 mean.
        let r = report(&[f64::NAN, f64::NAN, f64::NAN]);
        let s = r.summary("m").unwrap();
        assert_eq!(s.count, 0);
        assert_eq!(s.nan_count, 3);
        assert!(s.min.is_nan(), "min must be NaN, got {}", s.min);
        assert!(s.max.is_nan(), "max must be NaN, got {}", s.max);
        assert!(s.mean.is_nan(), "mean must be NaN, got {}", s.mean);
        assert_eq!(s.min_scenario, MetricSummary::NO_SCENARIO);
        assert_eq!(s.max_scenario, MetricSummary::NO_SCENARIO);
        // render() must not print the sentinel as a scenario number.
        let text = r.render();
        assert!(text.contains("all 3 value(s) NaN"), "{text}");
        assert!(!text.contains("18446744073709551615"), "{text}");
        // A single finite value still wins both extremes.
        let r = report(&[f64::NAN, 2.5]);
        let s = r.summary("m").unwrap();
        assert_eq!((s.min, s.max, s.mean), (2.5, 2.5, 2.5));
        assert_eq!((s.min_scenario, s.max_scenario), (1, 1));
    }

    #[test]
    fn fingerprint_is_stable_and_value_sensitive() {
        let a = report(&[1.0, 2.0]);
        let b = report(&[1.0, 2.0]);
        let c = report(&[1.0, 2.0 + 1e-15]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Wall clocks do not perturb the fingerprint.
        let mut d = report(&[1.0, 2.0]);
        d.exec.compute_wall = std::time::Duration::from_secs(5);
        d.exec.ring_high_water = 99;
        assert_eq!(a.fingerprint(), d.fingerprint());
        // Neither do solver-policy counters: a warm-cache run that pays
        // no symbolic analysis fingerprints like a cold run.
        let mut e = report(&[1.0, 2.0]);
        e.scenarios[0].stats.factorizations = 7;
        e.scenarios[0].stats.solve.symbolic_analyses = 1;
        e.scenarios[0].stats.solve.numeric_refactors = 3;
        assert_eq!(a.fingerprint(), e.fingerprint());
        // Step-level counters do: a different step sequence is a
        // different result.
        let mut f = report(&[1.0, 2.0]);
        f.scenarios[0].stats.iterations += 1;
        assert_ne!(a.fingerprint(), f.fingerprint());
    }

    #[test]
    fn totals_fold_scenario_stats() {
        let r = report(&[1.0, 2.0, 3.0]);
        assert_eq!(r.totals().iterations, 10 + 11 + 12);
    }

    #[test]
    fn lane_shape_is_reported_but_not_fingerprinted() {
        let scalar = report(&[1.0, 2.0]);
        let mut lane = report(&[1.0, 2.0]);
        lane.lanes = 8;
        lane.bundles = 1;
        // Batching policy never perturbs the result hash.
        assert_eq!(scalar.fingerprint(), lane.fingerprint());

        let m = lane.scope_metrics();
        assert_eq!(m.gauge("sweep.lanes"), Some(8.0));
        assert_eq!(m.counter("sweep.bundles"), 1);
        assert_eq!(m.counter("sweep.scenarios"), 2);
        assert_eq!(m.counter("sweep.steps"), 10 + 11);
        let s = scalar.scope_metrics();
        assert_eq!(s.gauge("sweep.lanes"), Some(1.0));
        assert_eq!(s.counter("sweep.bundles"), 0);
        assert!(lane.render().contains("1 bundles x 8 lanes"));
        assert!(!scalar.render().contains("lane-batched"));
    }

    #[test]
    fn prefix_sharing_is_reported_but_not_fingerprinted() {
        let plain = report(&[1.0, 2.0]);
        let mut shared = report(&[1.0, 2.0]);
        shared.prefix_forks = 2;
        shared.prefix_steps = 64;
        // Sharing policy never perturbs the result hash: a forked sweep
        // must match a run-from-zero sweep bit for bit.
        assert_eq!(plain.fingerprint(), shared.fingerprint());
        let m = shared.scope_metrics();
        assert_eq!(m.counter("sweep.prefix.forks"), 2);
        assert_eq!(m.counter("sweep.prefix.steps"), 64);
        assert!(shared.render().contains("2 fork(s) from a 64-step"));
        assert!(!plain.render().contains("prefix-shared"));
    }

    #[test]
    fn monitor_verdicts_fingerprint_only_when_attached() {
        // Without monitors: verdicts (there are none) leave the hash
        // exactly as the pre-monitor format.
        let plain = report(&[1.0, 2.0]);
        let mut with_empty_names = report(&[1.0, 2.0]);
        with_empty_names.scenarios[0].verdicts = Vec::new();
        assert_eq!(plain.fingerprint(), with_empty_names.fingerprint());

        let monitored = |verdicts: Vec<Vec<Verdict>>| {
            let mut r = report(&[1.0, 2.0]);
            r.monitor_names = vec!["settled".into(), "no_over".into()];
            for (s, v) in r.scenarios.iter_mut().zip(verdicts) {
                s.verdicts = v;
            }
            r
        };
        let all_pass = monitored(vec![
            vec![Verdict::Pass, Verdict::Pass],
            vec![Verdict::Pass, Verdict::Pass],
        ]);
        let one_fail = monitored(vec![
            vec![Verdict::Pass, Verdict::Pass],
            vec![
                Verdict::Fail {
                    code: "MON002",
                    t: 1e-3,
                    value: 1.4,
                },
                Verdict::Vacuous,
            ],
        ]);
        assert_ne!(plain.fingerprint(), all_pass.fingerprint());
        assert_ne!(all_pass.fingerprint(), one_fail.fingerprint());
        // Same verdicts → same hash (worker-count invariance relies on
        // this being purely value-determined).
        assert_eq!(
            one_fail.fingerprint(),
            monitored(vec![
                vec![Verdict::Pass, Verdict::Pass],
                vec![
                    Verdict::Fail {
                        code: "MON002",
                        t: 1e-3,
                        value: 1.4
                    },
                    Verdict::Vacuous,
                ],
            ])
            .fingerprint()
        );

        // Summary, yield and metrics.
        assert_eq!(one_fail.passing_scenarios(), 1);
        assert!(one_fail.scenarios[0].monitors_passed());
        assert!(!one_fail.scenarios[1].monitors_passed());
        let sums = one_fail.monitor_summary();
        assert_eq!(sums[0].name, "settled");
        assert_eq!((sums[0].pass, sums[0].fail, sums[0].vacuous), (1, 1, 0));
        assert_eq!(sums[0].first_fail, Some((1, "MON002", 1e-3, 1.4)));
        assert_eq!((sums[1].pass, sums[1].fail, sums[1].vacuous), (1, 0, 1));
        let m = one_fail.scope_metrics();
        assert_eq!(m.counter("monitor.properties"), 2);
        assert_eq!(m.counter("monitor.pass"), 2);
        assert_eq!(m.counter("monitor.fail"), 1);
        assert_eq!(m.counter("monitor.vacuous"), 1);
        assert_eq!(m.counter("monitor.MON002"), 1);
        assert_eq!(m.counter("monitor.scenarios_passed"), 1);
        assert_eq!(plain.scope_metrics().counter("monitor.properties"), 0);
        let text = one_fail.render();
        assert!(text.contains("yield 1/2 (50.0%)"), "{text}");
        assert!(text.contains("first fail #1 MON002"), "{text}");
        assert!(!plain.render().contains("monitors:"));
    }

    #[test]
    fn space_pruning_is_reported_but_not_fingerprinted() {
        let plain = report(&[1.0, 2.0]);
        let mut pruned = report(&[1.0, 2.0]);
        pruned.space_pruned = vec![(7, "SPC001".into()), (9, "SPC002".into())];
        // Gate policy never perturbs the result hash: survivors match a
        // run over a hand-filtered spec bit for bit.
        assert_eq!(plain.fingerprint(), pruned.fingerprint());
        let m = pruned.scope_metrics();
        assert_eq!(m.counter("sweep.space_pruned"), 2);
        assert_eq!(m.counter("lint.space.SPC001"), 1);
        assert_eq!(m.counter("lint.space.SPC002"), 1);
        assert!(pruned.render().contains("space-pruned: 2"));
        assert!(!plain.render().contains("space-pruned"));
    }
}
