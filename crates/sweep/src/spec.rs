//! Scenario enumeration: parameter grids, explicit lists and Monte
//! Carlo samples, each with a deterministic per-scenario seed.
//!
//! Every scenario is self-describing — `(index, seed, parameter
//! values)` — and its seed depends only on the sweep's base seed and
//! the scenario index, never on which worker runs it or in what order.
//! That property is what makes a parallel sweep bit-identical to a
//! serial one.

use crate::SweepError;
use rand::prelude::{Rng, SeedableRng, StdRng};
use std::sync::Arc;

/// One point of a sweep: an index into the scenario list, a private
/// PRNG seed, and one value per sweep parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    index: usize,
    seed: u64,
    values: Vec<f64>,
    names: Arc<Vec<String>>,
}

impl Scenario {
    /// Position in the scenario list (also the report row).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The scenario's private seed, derived from `(base_seed, index)`
    /// with a SplitMix64 mix — stable across worker counts and
    /// scheduling order.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Parameter values, in the order of [`Scenario::names`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Parameter names shared by every scenario of the sweep.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The value of parameter `name`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no such parameter.
    pub fn value(&self, name: &str) -> f64 {
        match self.names.iter().position(|n| n == name) {
            Some(i) => self.values[i],
            None => panic!("sweep has no parameter named {name:?}"),
        }
    }

    /// A fresh deterministic PRNG seeded from [`Scenario::seed`] — for
    /// stimulus variants (noise waveforms, jitter) beyond the swept
    /// parameters. Every call returns an identical stream.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// `"#12 r=1e3 c=2.2e-9"` — for report rows and diagnostics.
    pub fn label(&self) -> String {
        use std::fmt::Write;
        let mut s = format!("#{}", self.index);
        for (n, v) in self.names.iter().zip(&self.values) {
            let _ = write!(s, " {n}={v:.4e}");
        }
        s
    }
}

/// SplitMix64 finalizer: decorrelates consecutive indices into
/// statistically independent seeds.
fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An enumerated scenario list: the input of every sweep run.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    names: Arc<Vec<String>>,
    scenarios: Vec<Scenario>,
    base_seed: u64,
}

impl SweepSpec {
    /// Full-factorial grid over `params`: every combination of every
    /// listed value, in lexicographic order (last parameter fastest).
    ///
    /// # Errors
    ///
    /// [`SweepError::Invalid`] for an empty parameter list or a
    /// parameter with no values.
    pub fn grid(params: &[(&str, &[f64])], base_seed: u64) -> Result<SweepSpec, SweepError> {
        if params.is_empty() {
            return Err(SweepError::invalid(
                "grid sweep needs at least one parameter",
            ));
        }
        for (name, values) in params {
            if values.is_empty() {
                return Err(SweepError::invalid(format!(
                    "grid parameter {name:?} has no values"
                )));
            }
        }
        let names: Vec<String> = params.iter().map(|(n, _)| (*n).to_string()).collect();
        let total: usize = params.iter().map(|(_, v)| v.len()).product();
        let rows = (0..total).map(|mut k| {
            let mut row = vec![0.0; params.len()];
            for (j, (_, values)) in params.iter().enumerate().rev() {
                row[j] = values[k % values.len()];
                k /= values.len();
            }
            row
        });
        Ok(SweepSpec::from_rows(names, rows.collect(), base_seed))
    }

    /// Explicit scenario rows: one value per parameter per row.
    ///
    /// # Errors
    ///
    /// [`SweepError::Invalid`] when a row's length does not match the
    /// parameter list, or the list/rows are empty.
    pub fn list(
        names: &[&str],
        rows: Vec<Vec<f64>>,
        base_seed: u64,
    ) -> Result<SweepSpec, SweepError> {
        if names.is_empty() || rows.is_empty() {
            return Err(SweepError::invalid("list sweep needs parameters and rows"));
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != names.len() {
                return Err(SweepError::invalid(format!(
                    "row {i} has {} values for {} parameters",
                    row.len(),
                    names.len()
                )));
            }
        }
        let names: Vec<String> = names.iter().map(|n| (*n).to_string()).collect();
        Ok(SweepSpec::from_rows(names, rows, base_seed))
    }

    /// `n` Monte-Carlo samples, each parameter drawn uniformly from its
    /// `(name, lo, hi)` range by the scenario's private PRNG. Sample
    /// `k` depends only on `(base_seed, k)`, so any subset of scenarios
    /// can be re-run in isolation and reproduce exactly.
    ///
    /// # Errors
    ///
    /// [`SweepError::Invalid`] for `n = 0`, an empty parameter list, or
    /// a range with `lo >= hi` or non-finite bounds.
    pub fn monte_carlo(
        params: &[(&str, f64, f64)],
        n: usize,
        base_seed: u64,
    ) -> Result<SweepSpec, SweepError> {
        if n == 0 || params.is_empty() {
            return Err(SweepError::invalid(
                "monte carlo sweep needs samples and parameters",
            ));
        }
        for (name, lo, hi) in params {
            if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                return Err(SweepError::invalid(format!(
                    "monte carlo range for {name:?} must satisfy lo < hi, got [{lo}, {hi})"
                )));
            }
        }
        let names: Vec<String> = params.iter().map(|(n, _, _)| (*n).to_string()).collect();
        let rows = (0..n)
            .map(|k| {
                let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, k as u64));
                params
                    .iter()
                    .map(|(_, lo, hi)| lo + (hi - lo) * rng.gen::<f64>())
                    .collect()
            })
            .collect();
        Ok(SweepSpec::from_rows(names, rows, base_seed))
    }

    /// Rebuilds a spec from explicit `(index, seed, values)` parts — the
    /// deserialization path of [`crate::json`], which must reproduce
    /// retained subsets whose seeds are no longer derivable from a
    /// contiguous index range.
    pub(crate) fn from_parts(
        names: Vec<String>,
        base_seed: u64,
        parts: Vec<(usize, u64, Vec<f64>)>,
    ) -> SweepSpec {
        let names = Arc::new(names);
        let scenarios = parts
            .into_iter()
            .map(|(index, seed, values)| Scenario {
                index,
                seed,
                values,
                names: names.clone(),
            })
            .collect();
        SweepSpec {
            names,
            scenarios,
            base_seed,
        }
    }

    fn from_rows(names: Vec<String>, rows: Vec<Vec<f64>>, base_seed: u64) -> SweepSpec {
        let names = Arc::new(names);
        let scenarios = rows
            .into_iter()
            .enumerate()
            .map(|(index, values)| Scenario {
                index,
                seed: mix_seed(base_seed, index as u64),
                values,
                names: names.clone(),
            })
            .collect();
        SweepSpec {
            names,
            scenarios,
            base_seed,
        }
    }

    /// The scenarios, in index order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` for an empty sweep (builders reject this, but a spec can
    /// be filtered).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Parameter names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The base seed the per-scenario seeds are derived from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Keeps only the scenarios for which `keep` is true, preserving
    /// their original indices and seeds (so a filtered re-run is
    /// bit-compatible with the full sweep).
    pub fn retain(&mut self, mut keep: impl FnMut(&Scenario) -> bool) {
        self.scenarios.retain(|s| keep(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_the_full_cartesian_product() {
        let spec = SweepSpec::grid(&[("r", &[1.0, 2.0]), ("c", &[10.0, 20.0, 30.0])], 7).unwrap();
        assert_eq!(spec.len(), 6);
        let rows: Vec<Vec<f64>> = spec
            .scenarios()
            .iter()
            .map(|s| s.values().to_vec())
            .collect();
        assert_eq!(rows[0], vec![1.0, 10.0]);
        assert_eq!(rows[1], vec![1.0, 20.0]);
        assert_eq!(rows[2], vec![1.0, 30.0]);
        assert_eq!(rows[3], vec![2.0, 10.0]);
        assert_eq!(rows[5], vec![2.0, 30.0]);
        assert_eq!(spec.scenarios()[4].value("c"), 20.0);
    }

    #[test]
    fn monte_carlo_is_deterministic_and_in_range() {
        let params = [("a", -1.0, 1.0), ("b", 10.0, 20.0)];
        let s1 = SweepSpec::monte_carlo(&params, 64, 42).unwrap();
        let s2 = SweepSpec::monte_carlo(&params, 64, 42).unwrap();
        let s3 = SweepSpec::monte_carlo(&params, 64, 43).unwrap();
        assert_eq!(s1.scenarios(), s2.scenarios());
        assert_ne!(s1.scenarios(), s3.scenarios());
        for s in s1.scenarios() {
            assert!((-1.0..1.0).contains(&s.value("a")));
            assert!((10.0..20.0).contains(&s.value("b")));
        }
        // Sample k is independent of the other samples: a shorter run
        // reproduces the same prefix.
        let short = SweepSpec::monte_carlo(&params, 8, 42).unwrap();
        assert_eq!(short.scenarios(), &s1.scenarios()[..8]);
    }

    #[test]
    fn scenario_rng_streams_are_reproducible_and_distinct() {
        let spec = SweepSpec::monte_carlo(&[("x", 0.0, 1.0)], 4, 9).unwrap();
        let a: f64 = spec.scenarios()[0].rng().gen();
        let b: f64 = spec.scenarios()[0].rng().gen();
        let c: f64 = spec.scenarios()[1].rng().gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn list_validates_row_shape() {
        assert!(SweepSpec::list(&["a"], vec![vec![1.0, 2.0]], 0).is_err());
        assert!(SweepSpec::list(&["a"], vec![], 0).is_err());
        let spec = SweepSpec::list(&["a", "b"], vec![vec![1.0, 2.0], vec![3.0, 4.0]], 0).unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.scenarios()[1].label(), "#1 a=3.0000e0 b=4.0000e0");
    }

    #[test]
    fn retain_preserves_indices_and_seeds() {
        let mut spec = SweepSpec::grid(&[("r", &[1.0, 2.0, 3.0])], 5).unwrap();
        let seed2 = spec.scenarios()[2].seed();
        spec.retain(|s| s.value("r") > 2.5);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.scenarios()[0].index(), 2);
        assert_eq!(spec.scenarios()[0].seed(), seed2);
    }
}
