pub fn placeholder() {}
