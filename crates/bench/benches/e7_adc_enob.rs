//! E7 — behavioural ADC accuracy vs the analytic reference (seed \[2\]).
//!
//! Paper claim (§4): behavioural mixed-signal simulation achieves
//! "comparable accuracy to MATLAB" for pipelined-ADC architecture
//! exploration. Our independent gold model is the analytic ideal
//! quantizer: SNR = 6.02·N + 1.76 dB.
//!
//! Measured: ENOB vs stage count (ideal pipelines track the analytic
//! line), ENOB under comparator offset with/without digital correction,
//! and the simulation throughput (samples/s) that makes the exploration
//! practical.

use ams_blocks::{ideal_sine_snr_db, PipelinedAdc, SineSource, StageErrors};
use ams_core::TdfGraph;
use ams_kernel::SimTime;
use ams_math::fft::Window;
use ams_wave::analyze_sine;
use criterion::{criterion_group, criterion_main, Criterion};

const N_FFT: u64 = 8192;

fn measure_enob(stages: usize, errors: &[StageErrors], correction: bool) -> f64 {
    let mut g = TdfGraph::new("adc");
    let analog = g.signal("analog");
    let code = g.signal("code");
    let probe = g.probe(code);
    let fs = 1.0e6;
    let f_in = 389.0 * fs / N_FFT as f64;
    g.add_module(
        "src",
        SineSource::new(analog.writer(), f_in, 0.95, Some(SimTime::from_us(1))),
    );
    g.add_module(
        "adc",
        PipelinedAdc::new(analog.reader(), code.writer(), stages, 1.0)
            .with_errors(errors)
            .with_correction(correction),
    );
    let mut c = g.elaborate().unwrap();
    c.run_standalone(N_FFT).unwrap();
    analyze_sine(&probe.values(), fs, Window::Blackman)
        .unwrap()
        .enob
}

fn bench(c: &mut Criterion) {
    println!("\n=== E7: pipelined ADC ENOB vs the analytic ideal quantizer ===");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "stages", "analytic bits", "measured ENOB", "delta"
    );
    for &stages in &[5usize, 7, 9, 11] {
        let ideal = vec![StageErrors::default(); stages];
        let enob = measure_enob(stages, &ideal, true);
        let bits = (stages + 1) as f64;
        println!(
            "{stages:>8} {bits:>14.1} {enob:>14.2} {:>12.2}",
            enob - bits
        );
    }
    println!(
        "(analytic line: SNR = 6.02·N + 1.76 dB, e.g. N=10 → {:.1} dB)",
        ideal_sine_snr_db(10)
    );

    println!("\ncomparator-offset tolerance (9 stages):");
    println!(
        "{:>12} {:>16} {:>18}",
        "offset/Vref", "ENOB corrected", "ENOB uncorrected"
    );
    for &off in &[0.0, 0.05, 0.10, 0.20] {
        let errors = vec![
            StageErrors {
                comparator_offset: off,
                ..Default::default()
            };
            9
        ];
        println!(
            "{off:>12.2} {:>16.2} {:>18.2}",
            measure_enob(9, &errors, true),
            measure_enob(9, &errors, false)
        );
    }
    println!();

    let ideal = vec![StageErrors::default(); 9];
    let mut group = c.benchmark_group("e7_adc");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(N_FFT));
    group.bench_function("simulate_and_analyze_8192_samples", |b| {
        b.iter(|| measure_enob(9, &ideal, true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
