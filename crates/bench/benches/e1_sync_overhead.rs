//! E1 — DE↔SDF synchronization overhead.
//!
//! Paper claim (§2/§4[2], §3-O6): scheduling continuous/dataflow blocks
//! as statically scheduled clusters avoids "needless executions of these
//! blocks due to the SystemC simulation kernel"; SDF↔CT coupling with a
//! fixed step is "the most natural and easy way".
//!
//! Measured: wall time to push 10⁵ samples through an 8-stage gain/filter
//! chain (a) as one TDF cluster activated per sample period vs (b) as
//! per-block DE processes chained through kernel signals. Reported series:
//! wall time per configuration + kernel activation counts.

use ams_blocks::{Gain, SineSource};
use ams_core::{AmsSimulator, TdfGraph};
use ams_kernel::{Kernel, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

const SAMPLES: u64 = 100_000;
const DEPTH: usize = 8;

fn run_tdf() -> u64 {
    let mut sim = AmsSimulator::new();
    let out_de = sim.kernel_mut().signal("out", 0.0f64);
    let mut g = TdfGraph::new("chain");
    let mut sigs = vec![g.signal("s0")];
    g.add_module(
        "src",
        SineSource::new(sigs[0].writer(), 1000.0, 1.0, Some(SimTime::from_us(1))),
    );
    for i in 0..DEPTH {
        let next = g.signal(format!("s{}", i + 1));
        g.add_module(
            format!("g{i}"),
            Gain::new(sigs[i].reader(), next.writer(), 1.0001),
        );
        sigs.push(next);
    }
    g.to_de("out", sigs[DEPTH], out_de);
    sim.add_cluster(g).unwrap();
    sim.run_until(SimTime::from_us(SAMPLES)).unwrap();
    sim.kernel().stats().activations
}

fn run_de() -> u64 {
    let mut k = Kernel::new();
    let mut chain = vec![k.signal("a0", 0.0f64)];
    for i in 0..DEPTH {
        chain.push(k.signal(format!("a{}", i + 1), 0.0f64));
    }
    k.add_process("src", {
        let a = chain[0];
        move |ctx| {
            let t = ctx.now().to_seconds();
            ctx.write(a, (2.0 * std::f64::consts::PI * 1000.0 * t).sin());
            ctx.next_trigger_in(SimTime::from_us(1));
        }
    });
    for i in 0..DEPTH {
        let (src, dst) = (chain[i], chain[i + 1]);
        let p = k.add_process(format!("g{i}"), move |ctx| {
            let v = ctx.read(src);
            ctx.write(dst, 1.0001 * v);
        });
        k.make_sensitive(p, k.signal_event(src));
    }
    k.run_until(SimTime::from_us(SAMPLES)).unwrap();
    k.stats().activations
}

fn bench(c: &mut Criterion) {
    // Report the activation counts once (the paper's "needless
    // executions" metric).
    let tdf_act = run_tdf();
    let de_act = run_de();
    println!("\n=== E1: kernel activations for {SAMPLES} samples, {DEPTH}-block chain ===");
    println!(
        "tdf-cluster : {tdf_act:>10} activations ({:.2}/sample)",
        tdf_act as f64 / SAMPLES as f64
    );
    println!(
        "de-processes: {de_act:>10} activations ({:.2}/sample)",
        de_act as f64 / SAMPLES as f64
    );
    println!("ratio       : {:.2}x\n", de_act as f64 / tdf_act as f64);

    let mut group = c.benchmark_group("e1_sync_overhead");
    group.sample_size(10);
    group.bench_function("tdf_cluster_100k_samples", |b| b.iter(run_tdf));
    group.bench_function("de_processes_100k_samples", |b| b.iter(run_de));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
