//! E6 — multi-domain conservative systems (paper phase 3).
//!
//! Paper claim (§2, §5 phase 3): automotive systems are multi-domain and
//! stiff; conservative-law models must cover non-electrical disciplines.
//!
//! Measured: the electro-mechanical DC motor (electrical τ = 2 ms,
//! mechanical τ ≈ 100 ms) solved with backward Euler, trapezoidal and
//! variable-step — steady-state accuracy vs the analytic speed plus wall
//! time; and a thermal RC co-simulated with the electrical loss.

use ams_net::{
    AdaptiveOptions, Circuit, IntegrationMethod, Multiphysics, TransientSolver, Waveform,
};
use criterion::{criterion_group, criterion_main, Criterion};

const R: f64 = 1.0;
const L: f64 = 2e-3;
const K: f64 = 0.05;
const J: f64 = 1e-4;
const B: f64 = 1e-3;
const V: f64 = 10.0;

fn motor() -> (Circuit, ams_net::InputId, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let vdrv = ckt.node("vdrv");
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    let n3 = ckt.node("n3");
    let shaft = ckt.rot_node("shaft");
    let drive = ckt.external_input();
    ckt.voltage_source_wave("V", vdrv, Circuit::GROUND, Waveform::External(drive))
        .unwrap();
    ckt.resistor("Ra", vdrv, n1, R).unwrap();
    ckt.inductor("La", n1, n2, L).unwrap();
    let sense = ckt.voltage_source("Is", n2, n3, 0.0).unwrap();
    ckt.inertia("J", shaft, J).unwrap();
    ckt.rot_damper("B", shaft, Circuit::rot_ground(), B)
        .unwrap();
    ckt.dc_machine("M", sense, n3, Circuit::GROUND, shaft, K)
        .unwrap();
    (ckt, drive, shaft.0)
}

fn run_fixed(method: IntegrationMethod, h: f64) -> (u64, f64) {
    let (ckt, drive, shaft) = motor();
    let mut tr = TransientSolver::new(&ckt, method).unwrap();
    tr.set_input(drive, V);
    tr.initialize_dc().unwrap();
    tr.run(1.0, h, |_| {}).unwrap();
    (tr.stats().steps, tr.voltage(shaft))
}

fn run_adaptive() -> (u64, f64) {
    let (ckt, drive, shaft) = motor();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.set_input(drive, V);
    tr.initialize_dc().unwrap();
    tr.run_adaptive(
        1.0,
        &AdaptiveOptions {
            rel_tol: 1e-5,
            abs_tol: 1e-8,
            initial_step: 1e-6,
            max_step: 0.02,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    (tr.stats().steps, tr.voltage(shaft))
}

fn thermal_cosim() -> f64 {
    // Motor copper loss heats a thermal RC: P = i²R at steady state.
    let i_ss = V * B / (K * K + R * B);
    let p_loss = i_ss * i_ss * R;
    let mut ckt = Circuit::new();
    let die = ckt.thermal_node("winding");
    ckt.thermal_capacity("Cth", die, 5.0).unwrap();
    ckt.thermal_resistance("Rth", die, Circuit::thermal_ground(), 8.0)
        .unwrap();
    ckt.heat_source("P", die, p_loss).unwrap();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::BackwardEuler).unwrap();
    tr.initialize_with_ic().unwrap();
    tr.run(400.0, 0.5, |_| {}).unwrap();
    tr.voltage(die.0) // ΔT above ambient
}

fn bench(c: &mut Criterion) {
    let omega_ref = K * V / (K * K + R * B);
    println!("\n=== E6: DC motor to 1 s, analytic ω∞ = {omega_ref:.4} rad/s ===");
    println!(
        "{:>24} {:>10} {:>12} {:>12}",
        "method", "steps", "ω(1s)", "rel err"
    );
    for (name, method, h) in [
        (
            "backward euler h=1ms",
            IntegrationMethod::BackwardEuler,
            1e-3,
        ),
        ("trapezoidal h=1ms", IntegrationMethod::Trapezoidal, 1e-3),
        ("trapezoidal h=50µs", IntegrationMethod::Trapezoidal, 50e-6),
    ] {
        let (steps, w) = run_fixed(method, h);
        println!(
            "{name:>24} {steps:>10} {w:>12.4} {:>12.2e}",
            (w - omega_ref).abs() / omega_ref
        );
    }
    let (steps, w) = run_adaptive();
    println!(
        "{:>24} {steps:>10} {w:>12.4} {:>12.2e}",
        "adaptive",
        (w - omega_ref).abs() / omega_ref
    );
    let dt = thermal_cosim();
    let i_ss = V * B / (K * K + R * B);
    println!(
        "\nthermal: winding ΔT = {dt:.2} K (analytic P·Rth = {:.2} K)\n",
        i_ss * i_ss * R * 8.0
    );

    let mut group = c.benchmark_group("e6_multidomain");
    group.sample_size(10);
    group.bench_function("trap_50us", |b| {
        b.iter(|| run_fixed(IntegrationMethod::Trapezoidal, 50e-6))
    });
    group.bench_function("adaptive", |b| b.iter(run_adaptive));
    group.bench_function("thermal_cosim", |b| b.iter(thermal_cosim));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
