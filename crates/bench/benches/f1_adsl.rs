//! F1 — the paper's only figure: the ADSL subscriber-line interface.
//!
//! Measured: end-to-end wall time per simulated millisecond of the full
//! heterogeneous model (DE controller + TDF chain + Σ∆/CIC multirate +
//! embedded MNA line network), and the in-band SNR the chain delivers —
//! the two numbers that justify the paper's claim that system-level
//! mixed-signal exploration is practical in such a framework.

use ams_blocks::{CicDecimator, FirFilter, LtiFilter, SigmaDelta2, SineSource, TanhAmp};
use ams_core::{AmsSimulator, CtModule, NetlistCtSolver, TdfGraph, TdfProbe};
use ams_kernel::SimTime;
use ams_math::fft::Window;
use ams_net::{Circuit, IntegrationMethod, Waveform};
use ams_wave::{analyze_sine, largest_pow2_len};
use criterion::{criterion_group, criterion_main, Criterion};

fn build_sim() -> (AmsSimulator, TdfProbe) {
    let mut sim = AmsSimulator::new();

    let mut g = TdfGraph::new("slic");
    let tone = g.signal("tone");
    let driven = g.signal("driven");
    let line_out = g.signal("line_out");
    let anti_alias = g.signal("anti_alias");
    let bitstream = g.signal("bitstream");
    let decimated = g.signal("decimated");
    let digital = g.signal("digital");
    let probe = g.probe(digital);

    let fs = SimTime::from_us(1);
    g.add_module(
        "tone",
        SineSource::new(tone.writer(), 5_000.0, 0.1, Some(fs)),
    );
    g.add_module(
        "hv",
        TanhAmp::new(tone.reader(), driven.writer(), 4.0, 12.0),
    );

    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    let line = ckt.node("line");
    let sub = ckt.node("sub");
    let input = ckt.external_input();
    ckt.voltage_source_wave("Vd", drive, Circuit::GROUND, Waveform::External(input))
        .unwrap();
    ckt.resistor("Rp", drive, line, 50.0).unwrap();
    ckt.capacitor("Cl", line, Circuit::GROUND, 20e-9).unwrap();
    ckt.resistor("Rl", line, sub, 130.0).unwrap();
    ckt.resistor("Rs", sub, Circuit::GROUND, 600.0).unwrap();
    ckt.capacitor("Cs", sub, Circuit::GROUND, 10e-9).unwrap();
    let solver =
        NetlistCtSolver::new(&ckt, IntegrationMethod::Trapezoidal, vec![input], vec![sub]).unwrap();
    g.add_module(
        "line",
        CtModule::new(
            "line",
            Box::new(solver),
            vec![driven.reader()],
            vec![line_out.writer()],
            None,
        ),
    );
    g.add_module(
        "aa",
        LtiFilter::biquad_low_pass(
            line_out.reader(),
            anti_alias.writer(),
            20_000.0,
            0.707,
            None,
        )
        .unwrap(),
    );
    g.add_module(
        "sd",
        SigmaDelta2::new(anti_alias.reader(), bitstream.writer()),
    );
    g.add_module(
        "cic",
        CicDecimator::new(bitstream.reader(), decimated.writer(), 16, 2),
    );
    g.add_module(
        "fir",
        FirFilter::lowpass_design(decimated.reader(), digital.writer(), 63, 0.16),
    );
    sim.add_cluster(g).unwrap();
    (sim, probe)
}

fn run_ms(ms: u64) -> usize {
    let (mut sim, probe) = build_sim();
    sim.run_until(SimTime::from_ms(ms)).unwrap();
    probe.len()
}

fn bench(c: &mut Criterion) {
    // One long run for the quality figure.
    let (mut sim, probe) = build_sim();
    sim.run_until(SimTime::from_ms(60)).unwrap();
    let v = probe.values();
    let tail = &v[v.len() / 2..];
    let n = largest_pow2_len(tail.len());
    let m = analyze_sine(&tail[tail.len() - n..], 62_500.0, Window::Blackman).unwrap();
    println!("\n=== F1: ADSL subscriber-line interface (Figure 1) ===");
    println!("digital output over the last {n} samples:");
    println!("  fundamental : {:.0} Hz (5 kHz tone)", m.fundamental_hz);
    println!("  SNR         : {:.1} dB", m.snr_db);
    println!("  SINAD       : {:.1} dB", m.sinad_db);
    println!("  ENOB        : {:.1} bits\n", m.enob);

    let mut group = c.benchmark_group("f1_adsl");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(10_000)); // 1 MHz × 10 ms
    group.bench_function("simulate_10ms", |b| b.iter(|| run_ms(10)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
