//! E5 — "efficient dedicated algorithms" for linear networks.
//!
//! Paper claim (§3-O5, seed \[8\]): linear network macromodels "can be
//! simulated using efficient dedicated algorithms". For a fixed timestep
//! the MNA matrix is constant, so the dedicated linear path factors once
//! and re-solves per step; the generic path refactors every step.
//!
//! Measured: transient wall time vs ladder size N for both paths, and
//! the speedup factor (expected to grow with N, since factorization is
//! O(N³) and the resolve is O(N²)).
//!
//! Extended for the sparse backend: the same ladder assembled as a
//! [`CsrMat`] is factored with [`SparseLu`] (symbolic + numeric),
//! numerically refactored over the cached pivot order, and re-solved —
//! against the dense [`Lu`] reference. An RC ladder's MNA matrix is
//! tridiagonal-plus-border, so nnz is O(N) and fill-in is near zero;
//! dense factorization is O(N³). The crossover is expected early and
//! the gap to grow without bound.

use ams_math::{CsrMat, DMat, DVec, Lu, SparseLu, Triplets};
use ams_net::{Circuit, IntegrationMethod, SolverBackend, TransientSolver, Waveform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ladder(n: usize) -> (Circuit, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source_wave(
        "V",
        prev,
        Circuit::GROUND,
        Waveform::Sine {
            offset: 0.0,
            ampl: 1.0,
            freq: 10e3,
            phase: 0.0,
        },
    )
    .unwrap();
    for i in 0..n {
        let node = ckt.node(format!("n{i}"));
        ckt.resistor(format!("R{i}"), prev, node, 100.0).unwrap();
        ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
            .unwrap();
        prev = node;
    }
    (ckt, prev)
}

fn run(n: usize, backend: SolverBackend, reuse: bool, steps: u32) -> f64 {
    let (ckt, out) = ladder(n);
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.backend = backend;
    tr.reuse_factorization = reuse;
    tr.initialize_dc().unwrap();
    for _ in 0..steps {
        tr.step(1e-7).unwrap();
    }
    tr.voltage(out)
}

/// The companion-model MNA matrix of the N-stage RC ladder at a fixed
/// timestep: tridiagonal conductances plus the voltage-source border
/// row/column — the same structure the transient solver assembles.
fn ladder_matrix(n: usize) -> CsrMat<f64> {
    let g = 1.0 / 100.0; // 100 Ω series
    let gc = 2.0 * 1e-9 / 1e-7; // trapezoidal companion of 1 nF at h = 100 ns
    let dim = n + 2; // n internal nodes + input node + branch current
    let mut t = Triplets::new(dim, dim);
    // Input node (index 0) with the source branch (index n + 1).
    t.push(0, 0, g);
    t.push(0, n + 1, 1.0);
    t.push(n + 1, 0, 1.0);
    for i in 0..n {
        let v = i + 1;
        let prev = if i == 0 { 0 } else { i };
        t.push(v, v, g + gc + if i + 1 < n { g } else { 0.0 });
        t.push(v, prev, -g);
        t.push(prev, v, -g);
    }
    t.build()
}

fn bench_math_kernels(c: &mut Criterion) {
    println!("\n=== E5b: ladder MNA kernels — dense LU vs sparse (symbolic-reuse) LU ===");
    println!("  N     nnz  fill-in");
    for &n in &[32usize, 128, 512, 1024, 2048] {
        let a = ladder_matrix(n);
        let lu = SparseLu::factor(&a).unwrap();
        println!("  {:<5} {:<4} {}", n + 2, a.nnz(), lu.fill_in());
    }

    let mut group = c.benchmark_group("e5_kernels");
    group.sample_size(10);
    for &n in &[32usize, 128, 512, 1024, 2048] {
        let a = ladder_matrix(n);
        let b = DVec::from(vec![1.0; n + 2]);
        // Dense factor: O(N³); skip the largest size to keep the run short.
        if n <= 1024 {
            let ad: DMat<f64> = a.to_dense();
            group.bench_with_input(BenchmarkId::new("dense_factor", n), &n, |bch, _| {
                bch.iter(|| Lu::factor(&ad).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("sparse_factor", n), &n, |bch, _| {
            bch.iter(|| SparseLu::factor(&a).unwrap())
        });
        let mut lu = SparseLu::factor(&a).unwrap();
        group.bench_with_input(BenchmarkId::new("sparse_refactor", n), &n, |bch, _| {
            bch.iter(|| lu.refactor(&a).unwrap())
        });
        let lu = SparseLu::factor(&a).unwrap();
        group.bench_with_input(BenchmarkId::new("sparse_solve", n), &n, |bch, _| {
            bch.iter(|| lu.solve(&b).unwrap())
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    println!("\n=== E5: RC ladder transient, 200 steps — factor-once vs refactor-every-step ===");
    println!("(both paths produce bit-identical trajectories; see test e5)");

    let mut group = c.benchmark_group("e5_mna_scaling");
    group.sample_size(10);
    for &n in &[8usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("factor_once", n), &n, |b, &n| {
            b.iter(|| run(n, SolverBackend::Dense, true, 200))
        });
        group.bench_with_input(BenchmarkId::new("refactor_each_step", n), &n, |b, &n| {
            b.iter(|| run(n, SolverBackend::Dense, false, 200))
        });
        group.bench_with_input(BenchmarkId::new("sparse_factor_once", n), &n, |b, &n| {
            b.iter(|| run(n, SolverBackend::Sparse, true, 200))
        });
        group.bench_with_input(
            BenchmarkId::new("sparse_refactor_each_step", n),
            &n,
            |b, &n| b.iter(|| run(n, SolverBackend::Sparse, false, 200)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench, bench_math_kernels);
criterion_main!(benches);
