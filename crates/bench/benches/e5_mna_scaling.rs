//! E5 — "efficient dedicated algorithms" for linear networks.
//!
//! Paper claim (§3-O5, seed \[8\]): linear network macromodels "can be
//! simulated using efficient dedicated algorithms". For a fixed timestep
//! the MNA matrix is constant, so the dedicated linear path factors once
//! and re-solves per step; the generic path refactors every step.
//!
//! Measured: transient wall time vs ladder size N for both paths, and
//! the speedup factor (expected to grow with N, since factorization is
//! O(N³) and the resolve is O(N²)).

use ams_net::{Circuit, IntegrationMethod, TransientSolver, Waveform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ladder(n: usize) -> (Circuit, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source_wave(
        "V",
        prev,
        Circuit::GROUND,
        Waveform::Sine {
            offset: 0.0,
            ampl: 1.0,
            freq: 10e3,
            phase: 0.0,
        },
    )
    .unwrap();
    for i in 0..n {
        let node = ckt.node(format!("n{i}"));
        ckt.resistor(format!("R{i}"), prev, node, 100.0).unwrap();
        ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
            .unwrap();
        prev = node;
    }
    (ckt, prev)
}

fn run(n: usize, reuse: bool, steps: u32) -> f64 {
    let (ckt, out) = ladder(n);
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.reuse_factorization = reuse;
    tr.initialize_dc().unwrap();
    for _ in 0..steps {
        tr.step(1e-7).unwrap();
    }
    tr.voltage(out)
}

fn bench(c: &mut Criterion) {
    println!("\n=== E5: RC ladder transient, 200 steps — factor-once vs refactor-every-step ===");
    println!("(both paths produce bit-identical trajectories; see test e5)");

    let mut group = c.benchmark_group("e5_mna_scaling");
    group.sample_size(10);
    for &n in &[8usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("factor_once", n), &n, |b, &n| {
            b.iter(|| run(n, true, 200))
        });
        group.bench_with_input(BenchmarkId::new("refactor_each_step", n), &n, |b, &n| {
            b.iter(|| run(n, false, 200))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
