//! E10 — batched-sweep throughput: amortizing the symbolic analysis.
//!
//! Analog verification is dominated by many short variants of one model
//! (corners, tolerances, Monte Carlo), not one long run. All variants
//! share the netlist *topology*, so the sparse symbolic LU analysis
//! (ordering, pivot sequence, fill pattern) is a per-topology cost, not
//! a per-scenario one: `ams-sweep` runs the first scenario, exports its
//! [`SymbolicFactor`](ams_net::SymbolicFactor), and every sibling
//! adopts it — paying only a numeric refactorization per scenario.
//!
//! Measured: wall time per 256-scenario Monte-Carlo sweep of an RC
//! ladder (sparse backend), shared-symbolic vs fresh-factorization, at
//! two ladder sizes; plus the per-scenario solver counters proving the
//! amortization (0 symbolic analyses on the shared path after scenario
//! 0). The short horizon keeps the per-scenario step count low, the
//! regime where factorization setup dominates and sharing pays most —
//! exactly the corner-sweep workload.

use ams_net::{Circuit, ElementId, IntegrationMethod, SolverBackend};
use ams_sweep::{NetlistSweep, SweepSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SCENARIOS: usize = 256;
const WORKERS: usize = 4;

fn ladder(n: usize) -> (Circuit, Vec<ElementId>, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    let mut resistors = Vec::new();
    for i in 0..n {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, 100.0).unwrap());
        ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
            .unwrap();
        prev = node;
    }
    (ckt, resistors, prev)
}

fn sweep(n: usize, share: bool, scenarios: usize) -> ams_sweep::SweepReport {
    let (ckt, resistors, out) = ladder(n);
    let spec = SweepSpec::monte_carlo(&[("tol", -0.2, 0.2)], scenarios, 0xE10).unwrap();
    NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(2e-8, 1e-9)
        .share_symbolic(share)
        .run(
            &spec,
            WORKERS,
            &["v_out"],
            |c, sc| {
                // Every resistor off its nominal by the scenario's
                // tolerance draw: values change, topology does not.
                for r in &resistors {
                    c.set_resistance(*r, 100.0 * (1.0 + sc.value("tol")))?;
                }
                Ok(())
            },
            |tr, m| m[0] = tr.voltage(out),
        )
        .unwrap()
}

fn bench_sweep_throughput(c: &mut Criterion) {
    // Print the amortization evidence once, outside the timed loop.
    for &n in &[64usize, 192] {
        let shared = sweep(n, true, SCENARIOS);
        let fresh = sweep(n, false, SCENARIOS);
        let (ts, tf) = (shared.totals(), fresh.totals());
        println!(
            "e10 n={n}: shared {} symbolic + {} numeric refactors | \
             fresh {} symbolic + {} numeric refactors | {} scenarios",
            ts.solve.symbolic_analyses,
            ts.solve.numeric_refactors,
            tf.solve.symbolic_analyses,
            tf.solve.numeric_refactors,
            SCENARIOS
        );
        assert_eq!(
            ts.solve.symbolic_analyses, 1,
            "shared sweep must pay exactly one symbolic analysis"
        );
        assert_eq!(tf.solve.symbolic_analyses, SCENARIOS as u64);
        // Same answers either way (to factorization rounding): sharing
        // is a pure optimization.
        let worst = shared
            .values("v_out")
            .unwrap()
            .iter()
            .zip(fresh.values("v_out").unwrap())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-9, "shared vs fresh diverged by {worst}");
    }

    let mut group = c.benchmark_group("e10_sweep_throughput");
    group.sample_size(10);
    for &n in &[64usize, 192] {
        group.bench_with_input(BenchmarkId::new("shared_symbolic", n), &n, |b, &n| {
            b.iter(|| sweep(n, true, SCENARIOS));
        });
        group.bench_with_input(BenchmarkId::new("fresh_factorization", n), &n, |b, &n| {
            b.iter(|| sweep(n, false, SCENARIOS));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
