//! E9 — cost of the pre-elaboration static analysis (`ams-lint`).
//!
//! The lint gate runs on every `add_cluster` / `NetlistCtSolver::new` /
//! `ParallelSim::elaborate`, so it must be cheap relative to the work it
//! fronts. Measured on the paper's Figure 1 front end (the `f1_adsl`
//! model: tone → HV driver → MNA subscriber line → anti-alias biquad →
//! Σ∆ → CIC → FIR):
//!
//! * `lint/f1_tdf_graph` — `TdfGraph::lint` on the full 7-module chain
//!   (setup pass, balance equations, SCC, port audit).
//! * `lint/f1_netlist` — `lint_circuit` on the subscriber line
//!   (reachability, V-loop union-find, structural rank).
//! * `elaborate/f1_tdf_graph` — full `TdfGraph::elaborate` (schedule,
//!   FIFO allocation, timestep propagation), graph rebuilt per
//!   iteration via `iter_batched`.
//! * `elaborate/f1_netlist` — `TransientSolver::new` + first step (DC
//!   operating point, symbolic analysis, first factorization —
//!   construction alone is lazy).
//!
//! EXPERIMENTS.md quotes the lint/elaborate ratio from this bench.

use ams_blocks::{CicDecimator, FirFilter, LtiFilter, SigmaDelta2, SineSource, TanhAmp};
use ams_core::{CtModule, NetlistCtSolver, TdfGraph};
use ams_kernel::SimTime;
use ams_net::{Circuit, IntegrationMethod, TransientSolver, Waveform};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// The Figure 1 subscriber-line network (same topology as `f1_adsl`).
fn f1_line() -> (Circuit, ams_net::InputId, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    let line = ckt.node("line");
    let sub = ckt.node("sub");
    let input = ckt.external_input();
    ckt.voltage_source_wave("Vd", drive, Circuit::GROUND, Waveform::External(input))
        .unwrap();
    ckt.resistor("Rp", drive, line, 50.0).unwrap();
    ckt.capacitor("Cl", line, Circuit::GROUND, 20e-9).unwrap();
    ckt.resistor("Rl", line, sub, 130.0).unwrap();
    ckt.resistor("Rs", sub, Circuit::GROUND, 600.0).unwrap();
    ckt.capacitor("Cs", sub, Circuit::GROUND, 10e-9).unwrap();
    (ckt, input, sub)
}

/// The full Figure 1 TDF front end, as in the `f1_adsl` bench.
fn f1_graph() -> TdfGraph {
    let mut g = TdfGraph::new("slic");
    let tone = g.signal("tone");
    let driven = g.signal("driven");
    let line_out = g.signal("line_out");
    let anti_alias = g.signal("anti_alias");
    let bitstream = g.signal("bitstream");
    let decimated = g.signal("decimated");
    let digital = g.signal("digital");
    let _probe = g.probe(digital);

    let fs = SimTime::from_us(1);
    g.add_module(
        "tone",
        SineSource::new(tone.writer(), 5_000.0, 0.1, Some(fs)),
    );
    g.add_module(
        "hv",
        TanhAmp::new(tone.reader(), driven.writer(), 4.0, 12.0),
    );
    let (ckt, input, sub) = f1_line();
    let solver =
        NetlistCtSolver::new(&ckt, IntegrationMethod::Trapezoidal, vec![input], vec![sub]).unwrap();
    g.add_module(
        "line",
        CtModule::new(
            "line",
            Box::new(solver),
            vec![driven.reader()],
            vec![line_out.writer()],
            None,
        ),
    );
    g.add_module(
        "aa",
        LtiFilter::biquad_low_pass(
            line_out.reader(),
            anti_alias.writer(),
            20_000.0,
            0.707,
            None,
        )
        .unwrap(),
    );
    g.add_module(
        "sd",
        SigmaDelta2::new(anti_alias.reader(), bitstream.writer()),
    );
    g.add_module(
        "cic",
        CicDecimator::new(bitstream.reader(), decimated.writer(), 16, 2),
    );
    g.add_module(
        "fir",
        FirFilter::lowpass_design(decimated.reader(), digital.writer(), 63, 0.16),
    );
    g
}

fn bench_lint_overhead(c: &mut Criterion) {
    let (ckt, _, _) = f1_line();
    let mut g = f1_graph();

    c.bench_function("lint/f1_tdf_graph", |b| b.iter(|| g.lint()));
    c.bench_function("lint/f1_netlist", |b| {
        b.iter(|| ams_lint::lint_circuit("f1", &ckt))
    });
    c.bench_function("elaborate/f1_tdf_graph", |b| {
        b.iter_batched(f1_graph, |g| g.elaborate().unwrap(), BatchSize::SmallInput)
    });
    c.bench_function("elaborate/f1_netlist", |b| {
        b.iter(|| {
            let mut s = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
            s.step(1e-6).unwrap();
            s
        })
    });
}

criterion_group!(benches, bench_lint_overhead);
criterion_main!(benches);
