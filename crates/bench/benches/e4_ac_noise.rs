//! E4 — frequency-domain analysis derived from the time-domain model.
//!
//! Paper claim (§3-O3): "SystemC-AMS will also have to support at least
//! small-signal linear frequency-domain analysis … the frequency-domain
//! model can be derived from the time-domain description" — no extra
//! language elements.
//!
//! Measured: (a) accuracy of the AC sweep of an RLC band-pass netlist vs
//! the analytic transfer function, (b) the same filter's response through
//! the TDF-graph AC analysis, (c) noise analysis vs the kT/C law, and the
//! wall-time cost per sweep.

use ams_blocks::{LtiFilter, SineSource};
use ams_core::TdfGraph;
use ams_kernel::SimTime;
use ams_lti::TransferFunction;
use ams_net::{Circuit, BOLTZMANN, NOISE_TEMP};
use criterion::{criterion_group, criterion_main, Criterion};

/// Series RLC band-pass: R = 50 Ω, L = 1 mH, C = 253.3 nF → f₀ ≈ 10 kHz.
fn bandpass() -> (Circuit, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let out = ckt.node("out");
    ckt.voltage_source_ac("V", a, Circuit::GROUND, 0.0, 1.0)
        .unwrap();
    ckt.inductor("L", a, b, 1e-3).unwrap();
    ckt.capacitor("C", b, out, 253.3e-9).unwrap();
    ckt.resistor("R", out, Circuit::GROUND, 50.0).unwrap();
    (ckt, out)
}

fn netlist_sweep(freqs: &[f64]) -> Vec<f64> {
    let (ckt, out) = bandpass();
    let op = ckt.dc_operating_point().unwrap();
    ckt.ac_transfer(&op, out, freqs)
        .unwrap()
        .iter()
        .map(|h| h.abs())
        .collect()
}

fn analytic_sweep(freqs: &[f64]) -> Vec<f64> {
    // |H| of the series RLC with output across R:
    // H(s) = sRC' / (s²LC' + sRC' + 1), C' = 253.3 nF.
    let tf = TransferFunction::new(
        vec![0.0, 50.0 * 253.3e-9],
        vec![1.0, 50.0 * 253.3e-9, 1e-3 * 253.3e-9],
    )
    .unwrap();
    freqs
        .iter()
        .map(|&f| tf.freq_response(2.0 * std::f64::consts::PI * f).abs())
        .collect()
}

fn tdf_sweep(freqs: &[f64]) -> Vec<f64> {
    let mut g = TdfGraph::new("bp");
    let x = g.signal("x");
    let y = g.signal("y");
    g.add_module(
        "src",
        SineSource::new(x.writer(), 1.0, 0.0, Some(SimTime::from_us(1))).with_ac_magnitude(1.0),
    );
    g.add_module(
        "bp",
        LtiFilter::biquad_band_pass(x.reader(), y.writer(), 10_000.0, 4.0, None).unwrap(),
    );
    let mut c = g.elaborate().unwrap();
    let ac = c.ac_analysis(freqs).unwrap();
    ac.response(y).iter().map(|h| h.abs()).collect()
}

fn noise_rms() -> f64 {
    // RC filter noise integrates to √(kT/C).
    let mut ckt = Circuit::new();
    let out = ckt.node("out");
    ckt.resistor("R", out, Circuit::GROUND, 10e3).unwrap();
    ckt.capacitor("C", out, Circuit::GROUND, 10e-12).unwrap();
    let op = ckt.dc_operating_point().unwrap();
    let freqs: Vec<f64> = (0..1500).map(|i| 100.0 * 1.02f64.powi(i)).collect();
    ckt.noise_analysis(&op, out, &freqs)
        .unwrap()
        .integrated_rms()
}

fn bench(c: &mut Criterion) {
    let freqs: Vec<f64> = ams_lti::log_space(100.0, 1e6, 41).unwrap();
    let net = netlist_sweep(&freqs);
    let ana = analytic_sweep(&freqs);
    println!("\n=== E4: RLC band-pass |H(f)| — netlist AC vs analytic ===");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "f (Hz)", "netlist", "analytic", "rel err"
    );
    let mut max_err = 0.0f64;
    for i in (0..freqs.len()).step_by(8) {
        let err = (net[i] - ana[i]).abs() / ana[i].max(1e-12);
        max_err = max_err.max(err);
        println!(
            "{:>12.0} {:>12.5} {:>12.5} {:>12.2e}",
            freqs[i], net[i], ana[i], err
        );
    }
    println!("max relative error over sweep: {max_err:.2e}");

    let rms = noise_rms();
    let ktc = (BOLTZMANN * NOISE_TEMP / 10e-12).sqrt();
    println!(
        "\nnoise: integrated RC output noise = {:.3} µV vs √(kT/C) = {:.3} µV\n",
        rms * 1e6,
        ktc * 1e6
    );

    let mut group = c.benchmark_group("e4_frequency_domain");
    group.sample_size(20);
    group.bench_function("netlist_ac_41pts", |b| b.iter(|| netlist_sweep(&freqs)));
    group.bench_function("tdf_graph_ac_41pts", |b| b.iter(|| tdf_sweep(&freqs)));
    group.bench_function("noise_1500pts", |b| b.iter(noise_rms));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
