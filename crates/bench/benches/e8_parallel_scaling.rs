//! E8 — parallel execution scaling (`ams-exec`).
//!
//! The paper motivates statically scheduled dataflow clusters with
//! simulation efficiency: clusters synchronize with the DE kernel only
//! at cluster-period boundaries, so between two synchronization points
//! they are independent work. `ams-exec` exploits that and runs them on
//! worker threads.
//!
//! Measured: wall time to simulate N independent ADSL-style clusters
//! (source → tanh line driver → embedded MNA line network → anti-alias
//! biquad → Σ∆ modulator → CIC decimator → FIR) serially with
//! `AmsSimulator` and in parallel with `ParallelSim` at 1/2/4/8
//! workers. Reported series: wall time per configuration and the
//! speedup over serial. A correctness gate first asserts the parallel
//! probe waveforms are bit-identical to the serial ones.
//!
//! Note: speedup tracks the physical core count; on a single-core
//! machine every configuration degenerates to ~1×.

use std::time::Instant;

use ams_blocks::{CicDecimator, FirFilter, LtiFilter, SigmaDelta2, SineSource, TanhAmp};
use ams_core::{AmsSimulator, CtModule, NetlistCtSolver, TdfGraph, TdfProbe};
use ams_exec::ParallelSim;
use ams_kernel::SimTime;
use ams_net::{Circuit, IntegrationMethod, Waveform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const CLUSTERS: usize = 8;

/// One ADSL-style subscriber-line cluster; `i` detunes the tone so every
/// cluster computes a distinct waveform.
fn build_graph(i: usize) -> (TdfGraph, TdfProbe) {
    let mut g = TdfGraph::new(format!("slic{i}"));
    let tone = g.signal("tone");
    let driven = g.signal("driven");
    let line_out = g.signal("line_out");
    let anti_alias = g.signal("anti_alias");
    let bitstream = g.signal("bitstream");
    let decimated = g.signal("decimated");
    let digital = g.signal("digital");
    let probe = g.probe(digital);

    let fs = SimTime::from_us(1);
    let freq = 4_000.0 + 500.0 * i as f64;
    g.add_module("tone", SineSource::new(tone.writer(), freq, 0.1, Some(fs)));
    g.add_module(
        "hv",
        TanhAmp::new(tone.reader(), driven.writer(), 4.0, 12.0),
    );

    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    let line = ckt.node("line");
    let sub = ckt.node("sub");
    let input = ckt.external_input();
    ckt.voltage_source_wave("Vd", drive, Circuit::GROUND, Waveform::External(input))
        .unwrap();
    ckt.resistor("Rp", drive, line, 50.0).unwrap();
    ckt.capacitor("Cl", line, Circuit::GROUND, 20e-9).unwrap();
    ckt.resistor("Rl", line, sub, 130.0).unwrap();
    ckt.resistor("Rs", sub, Circuit::GROUND, 600.0).unwrap();
    ckt.capacitor("Cs", sub, Circuit::GROUND, 10e-9).unwrap();
    let solver =
        NetlistCtSolver::new(&ckt, IntegrationMethod::Trapezoidal, vec![input], vec![sub]).unwrap();
    g.add_module(
        "line",
        CtModule::new(
            "line",
            Box::new(solver),
            vec![driven.reader()],
            vec![line_out.writer()],
            None,
        ),
    );
    g.add_module(
        "aa",
        LtiFilter::biquad_low_pass(
            line_out.reader(),
            anti_alias.writer(),
            20_000.0,
            0.707,
            None,
        )
        .unwrap(),
    );
    g.add_module(
        "sd",
        SigmaDelta2::new(anti_alias.reader(), bitstream.writer()),
    );
    g.add_module(
        "cic",
        CicDecimator::new(bitstream.reader(), decimated.writer(), 16, 2),
    );
    g.add_module(
        "fir",
        FirFilter::lowpass_design(decimated.reader(), digital.writer(), 63, 0.16),
    );
    (g, probe)
}

fn run_serial(ms: u64) -> Vec<Vec<(f64, f64)>> {
    let mut sim = AmsSimulator::new();
    let mut probes = Vec::new();
    for i in 0..CLUSTERS {
        let (g, p) = build_graph(i);
        sim.add_cluster(g).unwrap();
        probes.push(p);
    }
    sim.run_until(SimTime::from_ms(ms)).unwrap();
    probes.iter().map(|p| p.samples()).collect()
}

fn run_parallel(ms: u64, workers: usize) -> Vec<Vec<(f64, f64)>> {
    let mut sim = ParallelSim::new(workers);
    let mut probes = Vec::new();
    for i in 0..CLUSTERS {
        let (g, p) = build_graph(i);
        sim.add_graph(g);
        probes.push(p);
    }
    sim.run_until(SimTime::from_ms(ms)).unwrap();
    probes.iter().map(|p| p.samples()).collect()
}

fn bench(c: &mut Criterion) {
    // Correctness gate: parallel output must be bit-identical to serial.
    let reference = run_serial(2);
    for workers in [1, 2, 4, 8] {
        let par = run_parallel(2, workers);
        assert_eq!(
            reference, par,
            "parallel probes diverged from serial at {workers} workers"
        );
    }

    // One-shot speedup table over a longer horizon, outside criterion's
    // repetition so the summary is easy to read in the bench log.
    const MS: u64 = 5;
    let t0 = Instant::now();
    let _ = run_serial(MS);
    let serial = t0.elapsed();
    println!("\n=== E8: parallel scaling, {CLUSTERS} ADSL-style clusters, {MS} ms ===");
    println!(
        "  serial (AmsSimulator) : {:>9.1} ms   1.00x",
        serial.as_secs_f64() * 1e3
    );
    for workers in [1, 2, 4, 8] {
        let t0 = Instant::now();
        let _ = run_parallel(MS, workers);
        let par = t0.elapsed();
        println!(
            "  parallel, {workers} worker(s) : {:>9.1} ms   {:.2}x",
            par.as_secs_f64() * 1e3,
            serial.as_secs_f64() / par.as_secs_f64()
        );
    }
    println!(
        "  ({} physical CPUs visible to this run)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut group = c.benchmark_group("e8_parallel_scaling");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| run_serial(2)));
    for workers in [1, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("parallel", workers), |b| {
            b.iter(|| run_parallel(2, workers))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
