//! E11 — cost of the `ams-scope` observability layer.
//!
//! The tracing hooks are compiled unconditionally (no feature gate), so
//! the design contract is that a *disabled* tracer costs one predictable
//! branch per hook site. This bench pins that contract down:
//!
//! * `scope/tracer_disabled` / `scope/tracer_enabled` — the raw cost of
//!   one begin/end span pair on a [`Tracer`] in each state. Disabled
//!   must be in the no-op range (a load + branch); enabled pays the
//!   wall-clock read and two buffer pushes.
//! * `scope/tdf_off` / `scope/tdf_on` — a 3-module TDF cluster run for
//!   1000 iterations with tracing off vs on. The *off* number is the
//!   one EXPERIMENTS.md compares against the pre-scope baseline: the
//!   acceptance bar is < 2 % overhead for the disabled hooks.
//! * `scope/net_off` / `scope/net_on` — 1000 fixed transient steps of
//!   an RC ladder with the MNA assemble/factor/solve spans off vs on.
//! * `scope/metrics_counter` — one `MetricsRegistry::counter_add`
//!   (BTreeMap lookup), the unit cost of post-run stats folding.
//!
//! EXPERIMENTS.md quotes the off/on ratios from this bench.

use ams_blocks::{Gain, LtiFilter, SineSource};
use ams_core::TdfGraph;
use ams_kernel::SimTime;
use ams_net::{Circuit, IntegrationMethod, TransientSolver};
use ams_scope::{MetricsRegistry, SpanKind, Tracer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A small sine → gain → low-pass TDF chain (per-iteration work is a
/// few dozen flops, so the per-hook cost is visible, not drowned).
fn tdf_chain() -> TdfGraph {
    let mut g = TdfGraph::new("chain");
    let raw = g.signal("raw");
    let scaled = g.signal("scaled");
    let filtered = g.signal("filtered");
    g.add_module(
        "src",
        SineSource::new(raw.writer(), 1_000.0, 1.0, Some(SimTime::from_us(1))),
    );
    g.add_module("gain", Gain::new(raw.reader(), scaled.writer(), 0.5));
    g.add_module(
        "lp",
        LtiFilter::low_pass1(scaled.reader(), filtered.writer(), 5_000.0, None).unwrap(),
    );
    g
}

/// A 4-stage RC ladder behind a DC source.
fn rc_ladder() -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    for i in 0..4 {
        let node = ckt.node(format!("n{i}"));
        ckt.resistor(format!("R{i}"), prev, node, 1e3).unwrap();
        ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
            .unwrap();
        prev = node;
    }
    ckt
}

fn bench_scope_overhead(c: &mut Criterion) {
    // Raw hook cost: one span pair through a disabled vs enabled tracer.
    let mut off = Tracer::off();
    c.bench_function("scope/tracer_disabled", |b| {
        b.iter(|| {
            if off.is_enabled() {
                off.begin(SpanKind::Custom, black_box(1));
            }
            if off.is_enabled() {
                off.end(SpanKind::Custom, black_box(2));
            }
        })
    });
    let mut on = Tracer::on();
    c.bench_function("scope/tracer_enabled", |b| {
        b.iter(|| {
            if on.is_enabled() {
                on.begin(SpanKind::Custom, black_box(1));
            }
            if on.is_enabled() {
                on.end(SpanKind::Custom, black_box(2));
            }
            // Keep the buffer bounded across iterations.
            if on.is_enabled() {
                black_box(on.take_events());
            }
        })
    });

    // Whole-cluster overhead, hooks disabled vs enabled.
    let mut cluster_off = tdf_chain().elaborate().unwrap();
    c.bench_function("scope/tdf_off", |b| {
        b.iter(|| cluster_off.run_standalone(1000).unwrap())
    });
    let mut cluster_on = tdf_chain().elaborate().unwrap();
    cluster_on.set_tracing(true);
    c.bench_function("scope/tdf_on", |b| {
        b.iter(|| {
            cluster_on.run_standalone(1000).unwrap();
            black_box(cluster_on.take_traces());
        })
    });

    // Transient solver: MNA assemble/factor/solve spans off vs on.
    let ckt = rc_ladder();
    let mut tr_off = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    c.bench_function("scope/net_off", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                tr_off.step(1e-7).unwrap();
            }
        })
    });
    let mut tr_on = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr_on.set_tracing(true);
    c.bench_function("scope/net_on", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                tr_on.step(1e-7).unwrap();
            }
            black_box(tr_on.take_trace_events());
        })
    });

    // Metrics registry unit cost.
    let mut reg = MetricsRegistry::new();
    c.bench_function("scope/metrics_counter", |b| {
        b.iter(|| reg.counter_add(black_box("exec.windows"), 1))
    });
}

criterion_group!(benches, bench_scope_overhead);
criterion_main!(benches);
