//! Ablation benches for design choices DESIGN.md calls out:
//!
//! 1. **Discretization rule** for the embedded LTI solver (backward Euler
//!    vs bilinear vs exact ZOH): accuracy at the TDF sample rate and cost
//!    per step. ZOH was chosen as the default recommendation for
//!    converter-port-driven (piecewise-constant) inputs.
//! 2. **Newton damping** in the nonlinear solver: the backtracking line
//!    search costs extra residual evaluations per iteration but rescues
//!    exponential-device solves that diverge undamped — the reason
//!    damping is always on.

use ams_lti::{Discretization, LtiSolver, TransferFunction};
use ams_math::newton::{self, NewtonOptions, NonlinearSystem};
use criterion::{criterion_group, criterion_main, Criterion};

fn lti_error(method: Discretization, h: f64) -> f64 {
    // Biquad step response vs its own ZOH-exact solution at fine steps.
    let w0 = 2.0 * std::f64::consts::PI * 1000.0;
    let tf = TransferFunction::low_pass2(w0, 2.0).unwrap();
    let steps = (5e-3 / h).round() as usize;

    let run = |m: Discretization, hh: f64, n: usize| {
        let mut s = LtiSolver::from_transfer_function(&tf, hh, m).unwrap();
        let mut y = 0.0;
        for _ in 0..n {
            y = s.step(&[1.0])[0];
        }
        y
    };
    let reference = run(Discretization::Zoh, h / 64.0, steps * 64);
    (run(method, h, steps) - reference).abs()
}

struct DiodeLoop;
impl NonlinearSystem for DiodeLoop {
    fn dim(&self) -> usize {
        1
    }
    fn residual(&mut self, x: &[f64], out: &mut [f64]) {
        // Diode + resistor loop: e^{40v} − 1 = (5 − v)·10.
        out[0] = (40.0 * x[0]).exp() - 1.0 - (5.0 - x[0]) * 10.0;
    }
}

fn newton_convergence(damping: bool) -> (usize, bool) {
    // Start at v = −2: the full Newton step overshoots to v ≈ +3, where
    // e^{120} overflows — undamped Newton dies, backtracking survives.
    let mut x = [-2.0];
    let opts = NewtonOptions {
        damping,
        max_iter: 200,
        ..Default::default()
    };
    match newton::solve(&mut DiodeLoop, &mut x, &opts) {
        Ok(rep) => (rep.iterations, true),
        Err(_) => (200, false),
    }
}

fn bench(c: &mut Criterion) {
    println!("\n=== ablation 1: LTI discretization rule (biquad, 5 ms horizon) ===");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "h", "backward-euler", "bilinear", "zoh"
    );
    for &h in &[100e-6, 20e-6, 5e-6] {
        println!(
            "{h:>12.0e} {:>14.3e} {:>14.3e} {:>14.3e}",
            lti_error(Discretization::BackwardEuler, h),
            lti_error(Discretization::Bilinear, h),
            lti_error(Discretization::Zoh, h),
        );
    }
    println!("(ZOH is exact for the sampled-and-held inputs converter ports deliver)");

    println!("\n=== ablation 2: Newton damping on an exponential device ===");
    let (it_damped, ok_damped) = newton_convergence(true);
    let (it_undamped, ok_undamped) = newton_convergence(false);
    println!("damped   : converged = {ok_damped}, iterations = {it_damped}");
    println!("undamped : converged = {ok_undamped}, iterations = {it_undamped}");
    assert!(ok_damped, "damped newton must converge");
    assert!(!ok_undamped, "undamped newton should fail from this start");
    println!();

    let mut group = c.benchmark_group("ablation_discretization_cost");
    group.sample_size(20);
    for (name, m) in [
        ("backward_euler", Discretization::BackwardEuler),
        ("bilinear", Discretization::Bilinear),
        ("zoh", Discretization::Zoh),
    ] {
        group.bench_function(name, |b| {
            let tf = TransferFunction::low_pass2(6283.0, 2.0).unwrap();
            let mut s = LtiSolver::from_transfer_function(&tf, 1e-5, m).unwrap();
            b.iter(|| {
                for _ in 0..100 {
                    s.step(&[1.0]);
                }
                s.state()[0]
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_newton");
    group.sample_size(30);
    group.bench_function("damped_diode_loop", |b| b.iter(|| newton_convergence(true)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
