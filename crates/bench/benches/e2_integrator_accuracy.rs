//! E2 — fixed-step integrator accuracy/cost trade-off.
//!
//! Paper claim (§3-O3): linear ODEs are discretized with explicit or
//! implicit formulas and "solved without iterations" at a fixed step
//! synchronized with the SDF rate. The choice of formula sets the
//! error-per-cost ratio.
//!
//! Measured: global error vs. step size (convergence-order table printed
//! once) and wall time per simulated second for each method on an RLC
//! resonator.

use ams_math::implicit::{ImplicitMethod, ImplicitStepper};
use ams_math::ode::{FixedStep, OdeMethod};
use criterion::{criterion_group, criterion_main, Criterion};

/// Series RLC resonator as a 2-state system (ω₀ = 1 rad/s, ζ = 0.1):
/// x'' + 0.2 x' + x = 0, x(0) = 1. Analytic solution known.
fn rlc(_t: f64, x: &[f64], dx: &mut [f64]) {
    dx[0] = x[1];
    dx[1] = -x[0] - 0.2 * x[1];
}

fn analytic(t: f64) -> f64 {
    // x(t) = e^{−ζω t}(cos ω_d t + ζω/ω_d sin ω_d t), ζω = 0.1,
    // ω_d = √(1−0.01).
    let wd = (1.0f64 - 0.01).sqrt();
    (-0.1 * t).exp() * ((wd * t).cos() + 0.1 / wd * (wd * t).sin())
}

fn explicit_error(method: OdeMethod, h: f64) -> f64 {
    let mut x = vec![1.0, 0.0];
    let mut s = FixedStep::new(method, h);
    s.integrate(&mut rlc, 0.0, 10.0, &mut x);
    (x[0] - analytic(10.0)).abs()
}

fn implicit_error(method: ImplicitMethod, h: f64) -> f64 {
    let mut x = vec![1.0, 0.0];
    let mut s = ImplicitStepper::new(method, h);
    s.integrate(&mut rlc, 0.0, 10.0, &mut x).unwrap();
    (x[0] - analytic(10.0)).abs()
}

fn bench(c: &mut Criterion) {
    println!("\n=== E2: global error at t = 10 s vs step size (RLC resonator) ===");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "h", "euler", "heun", "rk4", "be", "trapezoid"
    );
    for &h in &[0.1, 0.05, 0.025, 0.0125] {
        println!(
            "{h:>10} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e}",
            explicit_error(OdeMethod::Euler, h),
            explicit_error(OdeMethod::Heun, h),
            explicit_error(OdeMethod::Rk4, h),
            implicit_error(ImplicitMethod::BackwardEuler, h),
            implicit_error(ImplicitMethod::Trapezoidal, h),
        );
    }
    println!("(expect halving h → error ÷2 for order 1, ÷4 for order 2, ÷16 for order 4)\n");

    let mut group = c.benchmark_group("e2_integrator_cost");
    group.sample_size(20);
    let h = 0.01;
    group.bench_function("euler", |b| b.iter(|| explicit_error(OdeMethod::Euler, h)));
    group.bench_function("heun", |b| b.iter(|| explicit_error(OdeMethod::Heun, h)));
    group.bench_function("rk4", |b| b.iter(|| explicit_error(OdeMethod::Rk4, h)));
    group.bench_function("backward_euler", |b| {
        b.iter(|| implicit_error(ImplicitMethod::BackwardEuler, h))
    });
    group.bench_function("trapezoidal", |b| {
        b.iter(|| implicit_error(ImplicitMethod::Trapezoidal, h))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
