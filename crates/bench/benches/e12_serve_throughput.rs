//! E12 — service throughput: what the warm topology cache is worth.
//!
//! The daemon's whole value proposition is amortization across *jobs*
//! (where `ams-sweep` amortizes across scenarios within one job): a
//! repeat job over a known topology skips elaboration, the lint gate,
//! and the sparse symbolic analysis. Measured: end-to-end latency of
//! one Monte-Carlo job through [`ServeHandle`] submit→wait, cold
//! (fresh service per iteration, cache empty) vs warm (persistent
//! service, cache hit), plus the direct in-process run as the no-service
//! baseline — the service tax itself (tokens, queuing, streaming) is
//! the warm-vs-direct gap.

use ams_serve::{
    BindTarget, CircuitSpec, ElementKindSpec, ElementSpec, JobSpec, MetricSpec, ParamBind,
    ProbeKind, ServeConfig, ServeHandle, SweepDecl, TenantConfig, WaveSpec,
};
use criterion::{criterion_group, criterion_main, Criterion};

const STAGES: usize = 192;
const SCENARIOS: usize = 4;
const SEED: u64 = 0xE12;

/// A wide RC ladder: `STAGES` stages ≈ 2·`STAGES` MNA unknowns, enough
/// that the sparse symbolic analysis (the thing the cache amortizes)
/// is a visible slice of a short job. Scenario count is kept small for
/// the same reason — E10 already covers the many-scenario regime.
fn ladder_job() -> JobSpec {
    let mut elements = vec![ElementSpec {
        name: "Vin".into(),
        p: "n0".into(),
        n: "0".into(),
        kind: ElementKindSpec::VoltageSource(WaveSpec::Dc(1.0)),
    }];
    for k in 0..STAGES {
        elements.push(ElementSpec {
            name: format!("R{k}"),
            p: format!("n{k}"),
            n: format!("n{}", k + 1),
            kind: ElementKindSpec::Resistor(100.0),
        });
        elements.push(ElementSpec {
            name: format!("C{k}"),
            p: format!("n{}", k + 1),
            n: "0".into(),
            kind: ElementKindSpec::Capacitor(1e-9),
        });
    }
    JobSpec {
        circuit: CircuitSpec { elements },
        binds: vec![ParamBind {
            param: "dr".into(),
            element: "R0".into(),
            target: BindTarget::Resistance,
            relative: true,
        }],
        metrics: vec![MetricSpec {
            name: "v_out".into(),
            node: format!("n{STAGES}"),
            probe: ProbeKind::Last,
        }],
        sweep: SweepDecl::MonteCarlo {
            params: vec![("dr".into(), -0.05, 0.05)],
            n: SCENARIOS,
            seed: SEED,
        },
        t_end: 2e-6,
        h: 10e-9,
        trapezoidal: true,
        workers: 2,
        monitors: None,
    }
}

fn service() -> (ServeHandle, String) {
    let handle = ServeHandle::start(ServeConfig {
        workers: 4,
        tenants: vec![TenantConfig::named("bench")],
        ..ServeConfig::default()
    });
    let tenant = handle.tenant_token("bench").expect("tenant registered");
    (handle, tenant)
}

fn run_one(handle: &ServeHandle, tenant: &str, job: &JobSpec) -> u64 {
    let token = handle.submit(tenant, job.clone()).expect("submit");
    handle
        .wait(tenant, &token)
        .expect("job completes")
        .fingerprint()
}

fn bench(c: &mut Criterion) {
    let job = ladder_job();
    let mut group = c.benchmark_group("e12_serve_throughput");

    group.bench_function("direct", |b| {
        b.iter(|| job.direct_run(2).expect("direct run").fingerprint());
    });

    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            // A fresh service per iteration: every job pays
            // elaboration + lint + symbolic analysis.
            let (handle, tenant) = service();
            let fp = run_one(&handle, &tenant, &job);
            handle.shutdown();
            handle.join();
            fp
        });
    });

    let (handle, tenant) = service();
    // Populate the cache once; every measured iteration hits it.
    let reference = run_one(&handle, &tenant, &job);
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            let fp = run_one(&handle, &tenant, &job);
            assert_eq!(fp, reference, "warm runs must be bit-identical");
            fp
        });
    });
    group.finish();

    let metrics = handle.metrics();
    eprintln!(
        "e12: cache hits {} misses {} | symbolic analyses {} | lint runs {}",
        metrics.counter("serve.cache.hits"),
        metrics.counter("serve.cache.misses"),
        metrics.counter("serve.lu.symbolic_analyses"),
        metrics.counter("serve.lint.runs"),
    );
    handle.shutdown();
    handle.join();
}

criterion_group!(benches, bench);
criterion_main!(benches);
