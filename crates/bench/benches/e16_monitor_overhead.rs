//! E16 — cost of the `ams-monitor` runtime-verification layer.
//!
//! Monitors attach at the sweep layer: after every accepted solver
//! step the probed node samples are fed through the per-property
//! automata. Each automaton is O(1) state and O(1) work per sample
//! (DESIGN.md §6j), and an *unmonitored* sweep pays only an emptiness
//! branch per step — the acceptance bar from EXPERIMENTS.md E16 is
//! that the unmonitored path stays within 2 % of the pre-monitor
//! baseline (E10/E13 numbers for the same workload).
//!
//! * `monitor/parse` — compiling the 5-property demo spec. One-time,
//!   per job; amortised over every scenario of a sweep.
//! * `monitor/feed` — one sample through a 5-property bank: the raw
//!   per-sample hook cost when monitoring is *enabled*.
//! * `monitor/feed_fmask` — one sample through the streaming-Goertzel
//!   frequency-mask automaton, the most expensive property kind (one
//!   real rotation per sample, no FFT buffer).
//! * `e16/sweep_off` / `e16/sweep_on` — the monte_carlo_filter
//!   workload (16-corner Monte-Carlo, 4-stage pulse-driven RC ladder,
//!   sparse backend, 1000 trapezoidal steps per scenario) without and
//!   with the 5-property bank attached. EXPERIMENTS.md quotes the
//!   off/on ratio and compares *off* against the pre-monitor baseline.
//!
//! A one-shot wall-clock comparison is printed before the criterion
//! groups run, so `cargo bench --bench e16_monitor_overhead` shows the
//! headline overhead percentage without waiting for full sampling.

use ams_monitor::{MonitorBank, MonitorSpec};
use ams_net::{
    Circuit, ElementId, IntegrationMethod, NodeId, SolverBackend, TransientSolver, Waveform,
};
use ams_sweep::{NetlistSweep, SweepReport, SweepSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SCENARIOS: usize = 16;
const WORKERS: usize = 1;

/// The 4-stage RC ladder driven by a 0 → 1 V pulse (τ = 1 µs per
/// stage). A DC source would start the transient at the settled
/// operating point; the pulse keeps the settle/rise properties real.
fn ladder() -> (Circuit, Vec<ElementId>, Vec<ElementId>, NodeId) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source_wave(
        "V",
        prev,
        Circuit::GROUND,
        Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-6,
            fall: 1e-6,
            width: 1.0,
            period: 0.0,
        },
    )
    .unwrap();
    let mut resistors = Vec::new();
    let mut caps = Vec::new();
    for i in 0..4 {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, 1e3).unwrap());
        caps.push(
            ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
                .unwrap(),
        );
        prev = node;
    }
    (ckt, resistors, caps, prev)
}

/// Same 5-property mix as the determinism suite: two always-pass, one
/// vacuous, one armed-or-not, one that splits the tolerance box.
fn five_properties() -> MonitorSpec {
    MonitorSpec::parse(
        "env:envelope(lo=-0.1,hi=1.25)@n3;\
         fin:finite()@n3;\
         late:settle(lo=0.9,hi=1.1,by=1.0)@n3;\
         rise:rise(lo=0.1,hi=0.9,within=2.0e-5)@n3;\
         tight:settle(lo=0.95,hi=1.05,by=3.2e-5)@n3",
    )
    .unwrap()
}

fn sweep(monitored: bool) -> SweepReport {
    let (ckt, resistors, caps, out) = ladder();
    let spec =
        SweepSpec::monte_carlo(&[("dr", -0.2, 0.2), ("dc", -0.2, 0.2)], SCENARIOS, 0x30A7).unwrap();
    let mut sweep = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(5e-5, 5e-8);
    if monitored {
        sweep = sweep.monitors(five_properties());
    }
    sweep
        .run(
            &spec,
            WORKERS,
            &["v_out"],
            |c, sc| {
                for r in &resistors {
                    c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                }
                for cap in &caps {
                    c.set_capacitance(*cap, 1e-9 * (1.0 + sc.value("dc")))?;
                }
                Ok(())
            },
            |tr: &TransientSolver, m| m[0] = tr.voltage(out),
        )
        .unwrap()
}

fn bench_monitor_overhead(c: &mut Criterion) {
    // Headline number once, outside criterion sampling: three
    // alternating off/on pairs, best-of to damp warmup noise.
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let t = std::time::Instant::now();
        black_box(sweep(false));
        best_off = best_off.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        black_box(sweep(true));
        best_on = best_on.min(t.elapsed().as_secs_f64());
    }
    let report = sweep(true);
    println!(
        "e16: {SCENARIOS}-scenario sweep off {:.1} ms | on (5 props) {:.1} ms | \
         enabled overhead {:+.1}% | yield {}/{}",
        best_off * 1e3,
        best_on * 1e3,
        (best_on / best_off - 1.0) * 100.0,
        report.passing_scenarios(),
        report.scenarios.len(),
    );

    // Spec compilation: one-time, per job.
    let text = five_properties().render();
    c.bench_function("monitor/parse", |b| {
        b.iter(|| MonitorSpec::parse(black_box(&text)).unwrap())
    });

    // Raw per-sample hook cost with monitoring enabled. Time must be
    // monotonic for the deadline automata, so a counter drives it.
    let spec = five_properties();
    let mut bank = MonitorBank::new(&spec);
    let mut i = 0u64;
    c.bench_function("monitor/feed", |b| {
        b.iter(|| {
            i += 1;
            bank.feed(0, i as f64 * 1e-9, black_box(0.97));
        })
    });

    // The most expensive automaton: streaming Goertzel (fmask).
    let spec = MonitorSpec::parse("h:fmask(f=1e3,max=0.2)@x").unwrap();
    let mut bank = MonitorBank::new(&spec);
    let mut i = 0u64;
    c.bench_function("monitor/feed_fmask", |b| {
        b.iter(|| {
            i += 1;
            let t = i as f64 * 1e-6;
            bank.feed(0, t, black_box((t * 6.28e3).sin() * 0.05));
        })
    });

    // The sweep pair EXPERIMENTS.md quotes.
    let mut group = c.benchmark_group("e16_monitor_overhead");
    group.sample_size(10);
    group.bench_function("sweep_off", |b| b.iter(|| sweep(false)));
    group.bench_function("sweep_on", |b| b.iter(|| sweep(true)));
    group.finish();
}

criterion_group!(benches, bench_monitor_overhead);
criterion_main!(benches);
