//! E15 — checkpoint prefix sharing (`NetlistSweep::prefix`).
//!
//! Verification sweeps often agree on a long settling prefix: every
//! scenario plays the same stimulus until a parameterized event (a
//! pulse edge, a load switch) fires late in the run. The checkpoint
//! layer integrates that common prefix **once** on the coordinator,
//! snapshots the solver, and forks every scenario from the snapshot —
//! bit-identical to running each scenario from `t = 0` (the sweep
//! tests prove fingerprint equality; this bench re-asserts it before
//! timing anything), but the prefix is paid once instead of `N` times.
//!
//! Measured on the monte_carlo_filter 4-stage RC ladder driven by a
//! pulse whose delay is the fork point, at three divergence depths
//! (the pulse fires 25 %, 50 % or 87.5 % into a 4096-step horizon):
//!
//! * `prefix/zero/<depth>` — every scenario integrates from `t = 0`
//!   (the baseline; cost is flat in the depth).
//! * `prefix/fork/<depth>` — one shared prefix to the pulse delay,
//!   then per-scenario continuation runs.
//!
//! The fork speedup grows with the divergence depth: at 87.5 % the
//! sweep only pays `N × 12.5 %` of the transient work plus one shared
//! prefix. EXPERIMENTS.md quotes the zero/fork ratios per depth.

use ams_net::{Circuit, ElementId, IntegrationMethod, NodeId, SolverBackend, Waveform};
use ams_sweep::{NetlistSweep, SweepSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const STAGES: usize = 4;
const R_NOM: f64 = 1.6e3;
const C_NOM: f64 = 10e-9;
/// Power-of-two step so every partial sum of `h` is exact and the
/// fixed-step fork is bit-identical to the zero-based run.
const H: f64 = 1.0 / (1 << 20) as f64;
const STEPS: u64 = 4096;
const N_SCENARIOS: usize = 24;
const WORKERS: usize = 2;

/// Pulse whose leading edge sits at `delay`: identical to the DC
/// baseline `v1 = 1` before it, scenario-dependent after — the
/// prefix-sharing contract by construction.
fn pulse(v2: f64, delay: f64) -> Waveform {
    Waveform::Pulse {
        v1: 1.0,
        v2,
        delay,
        rise: 8.0 * H,
        fall: 8.0 * H,
        width: 2.0 * STEPS as f64 * H,
        period: 0.0,
    }
}

/// The monte_carlo_filter ladder: pulse source → 4 RC sections.
fn ladder(delay: f64) -> (Circuit, ElementId, NodeId) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    let v = ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    ckt.set_source_waveform(v, pulse(1.0, delay)).unwrap();
    for i in 0..STAGES {
        let node = ckt.node(format!("n{i}"));
        ckt.resistor(format!("R{i}"), prev, node, R_NOM).unwrap();
        ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, C_NOM)
            .unwrap();
        prev = node;
    }
    (ckt, v, prev)
}

fn run_sweep(depth_steps: u64, fork: bool) -> u64 {
    let t_end = STEPS as f64 * H;
    let delay = depth_steps as f64 * H;
    let (ckt, v, out) = ladder(delay);
    let spec = SweepSpec::monte_carlo(&[("v2", 1.5, 3.0)], N_SCENARIOS, 0xE15).unwrap();
    let mut sweep = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
        .fixed_step(t_end, H)
        .backend(SolverBackend::Sparse)
        .context("e15");
    if fork {
        sweep = sweep.prefix(delay);
    }
    let report = sweep
        .run(
            &spec,
            WORKERS,
            &["v_end", "v_max"],
            |c, sc| c.set_source_waveform(v, pulse(sc.value("v2"), delay)),
            |tr, m| {
                let x = tr.voltage(out);
                m[0] = x;
                m[1] = m[1].max(x);
            },
        )
        .unwrap();
    report.fingerprint()
}

fn bench_prefix_sharing(c: &mut Criterion) {
    // Depths as fractions of the horizon: the later the scenarios
    // diverge, the more transient work the shared prefix absorbs.
    for (label, depth) in [
        ("25%", STEPS / 4),
        ("50%", STEPS / 2),
        ("87.5%", STEPS * 7 / 8),
    ] {
        // Fork-vs-zero equivalence before timing anything: the bench
        // must measure two ways of computing the *same* result.
        assert_eq!(run_sweep(depth, false), run_sweep(depth, true));
        let mut g = c.benchmark_group("prefix");
        g.throughput(Throughput::Elements(N_SCENARIOS as u64));
        g.bench_with_input(BenchmarkId::new("zero", label), &depth, |b, &d| {
            b.iter(|| run_sweep(d, false))
        });
        g.bench_with_input(BenchmarkId::new("fork", label), &depth, |b, &d| {
            b.iter(|| run_sweep(d, true))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_prefix_sharing);
criterion_main!(benches);
