//! E13 — lane-bundled batch transient: scenarios per second vs lane
//! width.
//!
//! The corner-sweep workload of E10 leaves per-scenario *instruction*
//! overhead on the table: 256 variants of one topology execute 256
//! copies of the same assembly / LU / solve instruction stream, each
//! over a single f64. Lane bundling ([`ams_math::F64xK`]) packs K
//! scenarios into one structure-of-arrays solver so every instruction
//! is issued once per bundle and the inner loops autovectorize over the
//! K lanes — no intrinsics, plain arrays.
//!
//! Measured: wall time for the monte_carlo_filter workload (256-corner
//! Monte-Carlo sweep of the 4-stage RC anti-alias ladder, sparse
//! backend, 1000 trapezoidal steps per scenario) at lane widths
//! K ∈ {1, 4, 8, 16}, one worker thread so the curve isolates the lane
//! effect from thread scaling. Printed: the scenarios-per-second curve
//! and the speedup over the scalar engine (K = 1), plus a lane-vs-
//! scalar parity check (≤ 1e-9 relative) proving the speedup does not
//! buy different answers.

use ams_net::{Circuit, ElementId, IntegrationMethod, ScenarioProbe, SolverBackend};
use ams_sweep::{NetlistSweep, SweepSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SCENARIOS: usize = 256;
const WORKERS: usize = 1;
const STAGES: usize = 4;
const R_NOM: f64 = 1.6e3;
const C_NOM: f64 = 10e-9;

fn filter() -> (Circuit, Vec<ElementId>, Vec<ElementId>, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    let mut resistors = Vec::new();
    let mut caps = Vec::new();
    for i in 0..STAGES {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, R_NOM).unwrap());
        caps.push(
            ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, C_NOM)
                .unwrap(),
        );
        prev = node;
    }
    (ckt, resistors, caps, prev)
}

fn sweep(lanes: usize, scenarios: usize) -> ams_sweep::SweepReport {
    let (ckt, resistors, caps, out) = filter();
    let spec =
        SweepSpec::monte_carlo(&[("dr", -0.1, 0.1), ("dc", -0.1, 0.1)], scenarios, 0xE13).unwrap();
    NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(1e-3, 1e-6)
        .lanes(lanes)
        .run_lanes(
            &spec,
            WORKERS,
            &["v_settle"],
            |c, sc| {
                for r in &resistors {
                    c.set_resistance(*r, R_NOM * (1.0 + sc.value("dr")))?;
                }
                for cap in &caps {
                    c.set_capacitance(*cap, C_NOM * (1.0 + sc.value("dc")))?;
                }
                Ok(())
            },
            |tr: &dyn ScenarioProbe, m| m[0] = tr.voltage(out),
        )
        .unwrap()
}

fn bench_lane_throughput(c: &mut Criterion) {
    // The curve and the parity evidence, once, outside the timed loop.
    let scalar = sweep(1, SCENARIOS);
    let scalar_vals = scalar.values("v_settle").unwrap();
    let mut t1 = 0.0f64;
    for &lanes in &[1usize, 4, 8, 16] {
        let start = std::time::Instant::now();
        let report = sweep(lanes, SCENARIOS);
        let dt = start.elapsed().as_secs_f64();
        if lanes == 1 {
            t1 = dt;
        }
        let worst = report
            .values("v_settle")
            .unwrap()
            .iter()
            .zip(&scalar_vals)
            .map(|(a, b)| ((a - b) / b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= 1e-9, "lanes={lanes} diverged by {worst}");
        println!(
            "e13 lanes={lanes:2}: {:8.0} scenarios/s | {:5.2}x over scalar | \
             {} bundles | worst rel dev {worst:.2e}",
            SCENARIOS as f64 / dt,
            t1 / dt,
            report.bundles.max(1),
        );
    }

    let mut group = c.benchmark_group("e13_lane_throughput");
    group.sample_size(10);
    for &lanes in &[1usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("lanes", lanes), &lanes, |b, &lanes| {
            b.iter(|| sweep(lanes, SCENARIOS));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lane_throughput);
criterion_main!(benches);
