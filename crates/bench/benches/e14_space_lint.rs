//! E14 — cost of the sweep-space abstract interpretation (`ams-lint::space`).
//!
//! The space pass fronts whole batches (`NetlistSweep::space`) and
//! every `ams-serve` submission, so its cost must vanish against the
//! sweep it gates (E10/E13 measure that sweep at tens of
//! milliseconds). Measured on the monte_carlo_filter workload's
//! 4-stage RC ladder:
//!
//! * `space/prove_safe` — `lint_space` over the example's real ±12 %
//!   tolerance box: every check proves safe (the common, whole-batch
//!   admission cost).
//! * `space/refute_doomed` — `lint_space` over a box whose corner
//!   drives the resistances negative: bisection isolates a witness
//!   sub-box (the rejection path, paid before any transient).
//! * `space/classify_point` — the concrete per-scenario classifier the
//!   sweep gate uses to prune exactly the doomed scenarios.
//!
//! EXPERIMENTS.md quotes the proof-vs-sweep ratio from this bench and
//! the E10 sweep numbers.

use ams_lint::{classify_point, lint_space, ParamRange, SpaceBind, SpaceSpec, SpaceTarget};
use ams_net::Circuit;
use criterion::{criterion_group, criterion_main, Criterion};

const STAGES: usize = 4;
const R_NOM: f64 = 1.6e3;
const C_NOM: f64 = 10e-9;

/// The monte_carlo_filter ladder: step source → 4 RC sections.
fn ladder() -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    for i in 0..STAGES {
        let node = ckt.node(format!("n{i}"));
        ckt.resistor(format!("R{i}"), prev, node, R_NOM).unwrap();
        ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, C_NOM)
            .unwrap();
        prev = node;
    }
    ckt
}

fn spec(dr: (f64, f64), dc: (f64, f64)) -> SpaceSpec {
    let mut binds = Vec::new();
    for i in 0..STAGES {
        binds.push(SpaceBind {
            param: "dr".into(),
            element: format!("R{i}"),
            target: SpaceTarget::Resistance,
            relative: true,
            nominal: R_NOM,
        });
        binds.push(SpaceBind {
            param: "dc".into(),
            element: format!("C{i}"),
            target: SpaceTarget::Capacitance,
            relative: true,
            nominal: C_NOM,
        });
    }
    SpaceSpec::new(
        vec![
            ParamRange::new("dr", dr.0, dr.1),
            ParamRange::new("dc", dc.0, dc.1),
        ],
        binds,
    )
    .requested_h(1e-6)
}

fn bench_space_lint(c: &mut Criterion) {
    let ckt = ladder();
    let safe = spec((-0.12, 0.12), (-0.12, 0.12));
    let doomed = spec((-1.5, 0.12), (-0.12, 0.12));
    let names = ["dr".to_string(), "dc".to_string()];

    c.bench_function("space/prove_safe", |b| {
        b.iter(|| lint_space("e14", &ckt, &safe))
    });
    c.bench_function("space/refute_doomed", |b| {
        b.iter(|| lint_space("e14", &ckt, &doomed))
    });
    c.bench_function("space/classify_point", |b| {
        b.iter(|| classify_point(&ckt, &doomed, &names, &[-1.2, 0.0]))
    });
}

criterion_group!(benches, bench_space_lint);
criterion_main!(benches);
