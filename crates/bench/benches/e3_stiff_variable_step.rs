//! E3 — fixed vs. variable timestep on a stiff nonlinear network.
//!
//! Paper claim (§2, §5 phase 2): stiff models "impose strong numerical
//! constraints"; RF/automotive support requires "simulation using
//! variable time steps".
//!
//! Measured: steps and wall time for a diode rectifier charging a large
//! capacitor (fast diode turn-on vs slow RC discharge: time constants
//! split by ~10⁴) at matched accuracy — fixed-step trapezoidal vs the
//! LTE-controlled adaptive solver.

use ams_net::{AdaptiveOptions, Circuit, IntegrationMethod, TransientSolver, Waveform};
use criterion::{criterion_group, criterion_main, Criterion};

/// Half-wave rectifier: 50 Hz source → diode → 100 µF ∥ 10 kΩ load.
/// Fast constant: diode r_d·C ≈ µs at turn-on; slow constant: 1 s.
fn build() -> (Circuit, ams_net::NodeId) {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.voltage_source_wave(
        "V",
        src,
        Circuit::GROUND,
        Waveform::Sine {
            offset: 0.0,
            ampl: 10.0,
            freq: 50.0,
            phase: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("Rs", src, mid, 10.0).unwrap();
    ckt.diode("D", mid, out, 1e-12, 1.0).unwrap();
    ckt.capacitor("C", out, Circuit::GROUND, 100e-6).unwrap();
    ckt.resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
    (ckt, out)
}

const T_END: f64 = 0.1; // 5 mains periods

fn run_fixed(h: f64) -> (u64, f64) {
    let (ckt, out) = build();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_dc().unwrap();
    tr.run(T_END, h, |_| {}).unwrap();
    (tr.stats().steps, tr.voltage(out))
}

fn run_adaptive(rel_tol: f64) -> (u64, f64) {
    let (ckt, out) = build();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_dc().unwrap();
    tr.run_adaptive(
        T_END,
        &AdaptiveOptions {
            rel_tol,
            abs_tol: 1e-6,
            initial_step: 1e-7,
            max_step: 1e-3,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    (tr.stats().steps, tr.voltage(out))
}

fn bench(c: &mut Criterion) {
    // Reference solution from a very fine fixed run.
    let (_, v_ref) = run_fixed(0.5e-6);
    println!("\n=== E3: diode rectifier, {T_END} s, reference v_out = {v_ref:.5} V ===");
    println!(
        "{:>22} {:>10} {:>12} {:>12}",
        "configuration", "steps", "v_out", "error"
    );
    for &h in &[20e-6, 5e-6] {
        let (steps, v) = run_fixed(h);
        println!(
            "{:>22} {steps:>10} {v:>12.5} {:>12.2e}",
            format!("fixed h={h:.0e}"),
            (v - v_ref).abs()
        );
    }
    for &tol in &[1e-3, 1e-4] {
        let (steps, v) = run_adaptive(tol);
        println!(
            "{:>22} {steps:>10} {v:>12.5} {:>12.2e}",
            format!("adaptive tol={tol:.0e}"),
            (v - v_ref).abs()
        );
    }
    println!("(adaptive concentrates steps in the diode turn-on; fixed pays everywhere)\n");

    let mut group = c.benchmark_group("e3_stiff");
    group.sample_size(10);
    group.bench_function("fixed_5us", |b| b.iter(|| run_fixed(5e-6)));
    group.bench_function("adaptive_1e-4", |b| b.iter(|| run_adaptive(1e-4)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
