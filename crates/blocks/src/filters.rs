//! Filter blocks: continuous-time LTI filters embedded per the paper's
//! phase-1 execution model, and discrete FIR filters for the dataflow
//! (DSP) side of Figure 1.

use ams_core::{AcIo, CoreError, CtSolver, LtiCtSolver, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};
use ams_kernel::SimTime;
use ams_lti::{Discretization, TransferFunction};
use ams_math::Complex64;
use std::collections::VecDeque;

/// A continuous-time LTI filter defined by a Laplace transfer function,
/// executed with one fixed step per TDF sample (the "predefined linear
/// operator" of phase 1). Contributes its exact `H(jω)` in AC analysis.
pub struct LtiFilter {
    inp: TdfIn,
    out: TdfOut,
    tf: TransferFunction,
    solver: LtiCtSolver,
    timestep: Option<SimTime>,
}

impl LtiFilter {
    /// Creates a filter from a (proper) transfer function.
    ///
    /// # Errors
    ///
    /// Fails for improper transfer functions.
    pub fn new(
        inp: TdfIn,
        out: TdfOut,
        tf: TransferFunction,
        timestep: Option<SimTime>,
    ) -> Result<Self, CoreError> {
        let solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Bilinear)?;
        Ok(LtiFilter {
            inp,
            out,
            tf,
            solver,
            timestep,
        })
    }

    /// Convenience: first-order low-pass with cutoff `f_hz`.
    ///
    /// # Errors
    ///
    /// Fails for a non-positive cutoff.
    pub fn low_pass1(
        inp: TdfIn,
        out: TdfOut,
        f_hz: f64,
        timestep: Option<SimTime>,
    ) -> Result<Self, CoreError> {
        let tf = TransferFunction::low_pass1(2.0 * std::f64::consts::PI * f_hz)
            .map_err(|e| CoreError::solver("low_pass1", e))?;
        LtiFilter::new(inp, out, tf, timestep)
    }

    /// Convenience: second-order low-pass (biquad).
    ///
    /// # Errors
    ///
    /// Fails for non-positive parameters.
    pub fn biquad_low_pass(
        inp: TdfIn,
        out: TdfOut,
        f_hz: f64,
        q: f64,
        timestep: Option<SimTime>,
    ) -> Result<Self, CoreError> {
        let tf = TransferFunction::low_pass2(2.0 * std::f64::consts::PI * f_hz, q)
            .map_err(|e| CoreError::solver("biquad_low_pass", e))?;
        LtiFilter::new(inp, out, tf, timestep)
    }

    /// Convenience: second-order band-pass.
    ///
    /// # Errors
    ///
    /// Fails for non-positive parameters.
    pub fn biquad_band_pass(
        inp: TdfIn,
        out: TdfOut,
        f_hz: f64,
        q: f64,
        timestep: Option<SimTime>,
    ) -> Result<Self, CoreError> {
        let tf = TransferFunction::band_pass2(2.0 * std::f64::consts::PI * f_hz, q)
            .map_err(|e| CoreError::solver("biquad_band_pass", e))?;
        LtiFilter::new(inp, out, tf, timestep)
    }

    /// Convenience: Butterworth low-pass of arbitrary order.
    ///
    /// # Errors
    ///
    /// Fails for order 0 or a non-positive cutoff.
    pub fn butterworth(
        inp: TdfIn,
        out: TdfOut,
        order: usize,
        f_hz: f64,
        timestep: Option<SimTime>,
    ) -> Result<Self, CoreError> {
        let zp = ams_lti::ZeroPole::butterworth(order, 2.0 * std::f64::consts::PI * f_hz)
            .map_err(|e| CoreError::solver("butterworth", e))?;
        let tf = zp
            .to_transfer_function()
            .map_err(|e| CoreError::solver("butterworth", e))?;
        LtiFilter::new(inp, out, tf, timestep)
    }

    /// Convenience: Chebyshev type-I low-pass with `ripple_db` passband
    /// ripple.
    ///
    /// # Errors
    ///
    /// Fails for order 0, a non-positive cutoff, or non-positive ripple.
    pub fn chebyshev1(
        inp: TdfIn,
        out: TdfOut,
        order: usize,
        f_hz: f64,
        ripple_db: f64,
        timestep: Option<SimTime>,
    ) -> Result<Self, CoreError> {
        let zp = ams_lti::ZeroPole::chebyshev1(order, 2.0 * std::f64::consts::PI * f_hz, ripple_db)
            .map_err(|e| CoreError::solver("chebyshev1", e))?;
        let tf = zp
            .to_transfer_function()
            .map_err(|e| CoreError::solver("chebyshev1", e))?;
        LtiFilter::new(inp, out, tf, timestep)
    }

    /// The underlying transfer function.
    pub fn transfer_function(&self) -> &TransferFunction {
        &self.tf
    }
}

impl TdfModule for LtiFilter {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
        if let Some(ts) = self.timestep {
            cfg.set_timestep(ts);
        }
    }
    fn initialize(&mut self, _init: &mut ams_core::TdfInit<'_>) -> Result<(), CoreError> {
        self.solver.initialize(&[0.0])
    }
    fn reset(&mut self) {
        self.solver
            .initialize(&[0.0])
            .expect("lti solver re-initialization");
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let u = io.read1(self.inp);
        let mut y = [0.0];
        self.solver
            .advance_to(io.time() + io.timestep(), &[u], &mut y)?;
        io.write1(self.out, y[0]);
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        ac.set_gain(self.inp, self.out, self.tf.freq_response(ac.omega()));
    }
}

impl std::fmt::Debug for LtiFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LtiFilter({})", self.tf)
    }
}

/// A discrete-time FIR filter `y[n] = Σ taps[k]·x[n−k]` — a dataflow DSP
/// block (the "digital filters" of Figure 1).
#[derive(Debug, Clone)]
pub struct FirFilter {
    inp: TdfIn,
    out: TdfOut,
    taps: Vec<f64>,
    line: VecDeque<f64>,
}

impl FirFilter {
    /// Creates a FIR filter with the given impulse response.
    ///
    /// # Panics
    ///
    /// Panics on an empty tap list.
    pub fn new(inp: TdfIn, out: TdfOut, taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "fir filter needs at least one tap");
        let line = VecDeque::from(vec![0.0; taps.len()]);
        FirFilter {
            inp,
            out,
            taps,
            line,
        }
    }

    /// A moving-average filter of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn moving_average(inp: TdfIn, out: TdfOut, n: usize) -> Self {
        assert!(n > 0, "moving average length must be at least 1");
        FirFilter::new(inp, out, vec![1.0 / n as f64; n])
    }

    /// Windowed-sinc low-pass design: `n` taps, cutoff as a fraction of
    /// the sampling rate (0 < `fc_norm` < 0.5), Hamming window.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range parameters.
    pub fn lowpass_design(inp: TdfIn, out: TdfOut, n: usize, fc_norm: f64) -> Self {
        assert!(n >= 3, "need at least 3 taps");
        assert!(
            fc_norm > 0.0 && fc_norm < 0.5,
            "normalized cutoff must be in (0, 0.5)"
        );
        let m = (n - 1) as f64;
        let mut taps = Vec::with_capacity(n);
        for i in 0..n {
            let x = i as f64 - m / 2.0;
            let sinc = if x == 0.0 {
                2.0 * fc_norm
            } else {
                (2.0 * std::f64::consts::PI * fc_norm * x).sin() / (std::f64::consts::PI * x)
            };
            let window = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / m).cos();
            taps.push(sinc * window);
        }
        // Normalize DC gain to 1.
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        FirFilter::new(inp, out, taps)
    }

    /// The filter's impulse response.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }
}

impl TdfModule for FirFilter {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn reset(&mut self) {
        self.line.iter_mut().for_each(|v| *v = 0.0);
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        self.line.pop_back();
        self.line.push_front(x);
        let y: f64 = self
            .taps
            .iter()
            .zip(self.line.iter())
            .map(|(t, v)| t * v)
            .sum();
        io.write1(self.out, y);
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        // Discrete response at the module's sample rate is not known at
        // stamp time without the timestep; approximate with the DC gain
        // for ω → 0 only if the caller sweeps well below Nyquist. We
        // stamp the exact DTFT using the timestep captured at setup —
        // unavailable here — so we conservatively stamp the DC gain.
        let dc: f64 = self.taps.iter().sum();
        ac.set_gain(self.inp, self.out, Complex64::from_real(dc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{ConstSource, SineSource};
    use ams_core::TdfGraph;

    #[test]
    fn lti_filter_settles_to_dc_gain() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "src",
            ConstSource::new(x.writer(), 2.0, Some(SimTime::from_us(10))),
        );
        g.add_module(
            "lp",
            LtiFilter::low_pass1(x.reader(), y.writer(), 100.0, None).unwrap(),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(10_000).unwrap(); // 100 ms ≫ τ = 1.6 ms
        let last = *probe.values().last().unwrap();
        assert!((last - 2.0).abs() < 1e-6, "settled to {last}");
    }

    #[test]
    fn lti_filter_attenuates_above_cutoff() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        // 10 kHz sine through a 100 Hz low-pass: ~100× attenuation.
        g.add_module(
            "src",
            SineSource::new(x.writer(), 10_000.0, 1.0, Some(SimTime::from_us(1))),
        );
        g.add_module(
            "lp",
            LtiFilter::low_pass1(x.reader(), y.writer(), 100.0, None).unwrap(),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(20_000).unwrap(); // 20 ms
        let tail: Vec<f64> = probe.values().split_off(10_000);
        let peak = tail.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(peak < 0.02, "peak {peak}");
    }

    #[test]
    fn butterworth_ac_shape() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        g.add_module(
            "src",
            SineSource::new(x.writer(), 1.0, 1.0, Some(SimTime::from_us(1))).with_ac_magnitude(1.0),
        );
        g.add_module(
            "bw",
            LtiFilter::butterworth(x.reader(), y.writer(), 4, 1000.0, None).unwrap(),
        );
        let mut c = g.elaborate().unwrap();
        let ac = c.ac_analysis(&[100.0, 1000.0, 10_000.0]).unwrap();
        let resp = ac.response(y);
        assert!((resp[0].abs() - 1.0).abs() < 1e-3); // passband
        assert!((resp[1].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6); // cutoff
        let att_db = -20.0 * resp[2].abs().log10();
        assert!((att_db - 80.0).abs() < 1.0, "4th order: {att_db} dB/decade");
    }

    #[test]
    fn fir_moving_average_smooths() {
        struct Alt {
            out: TdfOut,
            v: f64,
        }
        impl TdfModule for Alt {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, self.v);
                self.v = -self.v;
                Ok(())
            }
        }
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "alt",
            Alt {
                out: x.writer(),
                v: 1.0,
            },
        );
        g.add_module("ma", FirFilter::moving_average(x.reader(), y.writer(), 2));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(10).unwrap();
        // After warm-up, (+1 −1)/2 = 0.
        assert!(probe.values()[2..].iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn fir_lowpass_design_dc_gain_unity() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "one",
            ConstSource::new(x.writer(), 1.0, Some(SimTime::from_us(1))),
        );
        let fir = FirFilter::lowpass_design(x.reader(), y.writer(), 31, 0.1);
        assert!((fir.taps().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        g.add_module("fir", fir);
        let mut c = g.elaborate().unwrap();
        c.run_standalone(100).unwrap();
        assert!((probe.values().last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_fir_panics() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let _ = FirFilter::new(x.reader(), y.writer(), vec![]);
    }
}
