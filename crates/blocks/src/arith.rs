//! Arithmetic and structural signal-flow blocks.

use ams_core::{AcIo, CoreError, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};
use ams_math::Complex64;

/// `out = k · in`.
#[derive(Debug, Clone)]
pub struct Gain {
    inp: TdfIn,
    out: TdfOut,
    k: f64,
}

impl Gain {
    /// Creates a gain block.
    pub fn new(inp: TdfIn, out: TdfOut, k: f64) -> Self {
        Gain { inp, out, k }
    }
}

impl TdfModule for Gain {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        io.write1(self.out, self.k * x);
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        ac.set_gain(self.inp, self.out, Complex64::from_real(self.k));
    }
}

/// `out = k1·a + k2·b` (weighted two-input sum; use negative weights for
/// subtraction).
#[derive(Debug, Clone)]
pub struct Sum {
    a: TdfIn,
    b: TdfIn,
    out: TdfOut,
    k1: f64,
    k2: f64,
}

impl Sum {
    /// Creates an unweighted adder.
    pub fn new(a: TdfIn, b: TdfIn, out: TdfOut) -> Self {
        Sum::weighted(a, b, out, 1.0, 1.0)
    }

    /// Creates `out = a − b`.
    pub fn subtract(a: TdfIn, b: TdfIn, out: TdfOut) -> Self {
        Sum::weighted(a, b, out, 1.0, -1.0)
    }

    /// Creates a weighted sum.
    pub fn weighted(a: TdfIn, b: TdfIn, out: TdfOut, k1: f64, k2: f64) -> Self {
        Sum { a, b, out, k1, k2 }
    }
}

impl TdfModule for Sum {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.a);
        cfg.input(self.b);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let a = io.read1(self.a);
        let b = io.read1(self.b);
        io.write1(self.out, self.k1 * a + self.k2 * b);
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        ac.set_gain(self.a, self.out, Complex64::from_real(self.k1));
        ac.set_gain(self.b, self.out, Complex64::from_real(self.k2));
    }
}

/// `out = a · b` (mixer / variable-gain core).
///
/// Multiplication is nonlinear, so by default the block contributes
/// nothing to AC analysis. When the `b` input is a slowly varying control
/// (e.g. an AGC gain), [`Product::with_ac_gain_from_a`] linearizes the
/// block as `out = k·a` at an assumed operating gain `k`.
#[derive(Debug, Clone)]
pub struct Product {
    a: TdfIn,
    b: TdfIn,
    out: TdfOut,
    ac_gain_a: Option<f64>,
}

impl Product {
    /// Creates a multiplier.
    pub fn new(a: TdfIn, b: TdfIn, out: TdfOut) -> Self {
        Product {
            a,
            b,
            out,
            ac_gain_a: None,
        }
    }

    /// Linearizes the block for AC analysis as `out = k·a` (treating the
    /// `b` input as a bias at operating value `k`).
    pub fn with_ac_gain_from_a(mut self, k: f64) -> Self {
        self.ac_gain_a = Some(k);
        self
    }
}

impl TdfModule for Product {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.a);
        cfg.input(self.b);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let a = io.read1(self.a);
        let b = io.read1(self.b);
        io.write1(self.out, a * b);
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        if let Some(k) = self.ac_gain_a {
            ac.set_gain(self.a, self.out, Complex64::from_real(k));
        }
    }
}

/// `out[n] = in[n−1]` — a one-sample delay (uses a TDF port delay, so it
/// may sit inside feedback loops).
#[derive(Debug, Clone)]
pub struct UnitDelay {
    inp: TdfIn,
    out: TdfOut,
    initial: f64,
}

impl UnitDelay {
    /// Creates a unit delay with the given initial output sample.
    pub fn new(inp: TdfIn, out: TdfOut, initial: f64) -> Self {
        UnitDelay { inp, out, initial }
    }
}

impl TdfModule for UnitDelay {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input_with(self.inp, 1, 1);
        cfg.output(self.out);
    }
    fn initialize(&mut self, init: &mut ams_core::TdfInit<'_>) -> Result<(), CoreError> {
        init.set_initial(self.inp, 0, self.initial);
        Ok(())
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let prev = io.read1(self.inp);
        io.write1(self.out, prev);
        Ok(())
    }
}

/// Discrete-time integrator: `out[n] = out[n−1] + ts·in[n]` (backward
/// Euler accumulation of the continuous integral).
#[derive(Debug, Clone)]
pub struct Integrator {
    inp: TdfIn,
    out: TdfOut,
    state: f64,
}

impl Integrator {
    /// Creates an integrator with initial state 0.
    pub fn new(inp: TdfIn, out: TdfOut) -> Self {
        Integrator {
            inp,
            out,
            state: 0.0,
        }
    }

    /// Sets the initial integral value.
    pub fn with_initial(mut self, v: f64) -> Self {
        self.state = v;
        self
    }
}

impl TdfModule for Integrator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        self.state += io.timestep() * x;
        io.write1(self.out, self.state);
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        // Continuous-time equivalent: 1/(jω).
        let w = ac.omega();
        if w != 0.0 {
            ac.set_gain(self.inp, self.out, Complex64::new(0.0, -1.0 / w));
        }
    }
}

/// Rate-converting decimator: consumes `factor` samples, emits their
/// average (boxcar anti-aliasing) or the last sample.
#[derive(Debug, Clone)]
pub struct Decimator {
    inp: TdfIn,
    out: TdfOut,
    factor: u64,
    average: bool,
}

impl Decimator {
    /// Averaging decimator (boxcar filter + downsample).
    pub fn averaging(inp: TdfIn, out: TdfOut, factor: u64) -> Self {
        assert!(factor > 0, "decimation factor must be at least 1");
        Decimator {
            inp,
            out,
            factor,
            average: true,
        }
    }

    /// Plain downsampler (keeps the last of each block).
    pub fn downsampling(inp: TdfIn, out: TdfOut, factor: u64) -> Self {
        assert!(factor > 0, "decimation factor must be at least 1");
        Decimator {
            inp,
            out,
            factor,
            average: false,
        }
    }
}

impl TdfModule for Decimator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input_with(self.inp, self.factor, 0);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = if self.average {
            (0..self.factor).map(|k| io.read(self.inp, k)).sum::<f64>() / self.factor as f64
        } else {
            io.read(self.inp, self.factor - 1)
        };
        io.write1(self.out, v);
        Ok(())
    }
}

/// Rate-converting upsampler: zero-order hold, producing `factor` copies
/// of each input sample.
#[derive(Debug, Clone)]
pub struct Upsampler {
    inp: TdfIn,
    out: TdfOut,
    factor: u64,
}

impl Upsampler {
    /// Creates a hold-type upsampler.
    pub fn new(inp: TdfIn, out: TdfOut, factor: u64) -> Self {
        assert!(factor > 0, "upsampling factor must be at least 1");
        Upsampler { inp, out, factor }
    }
}

impl TdfModule for Upsampler {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output_with(self.out, self.factor);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = io.read1(self.inp);
        for k in 0..self.factor {
            io.write(self.out, k, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::ConstSource;
    use ams_core::TdfGraph;
    use ams_kernel::SimTime;

    #[test]
    fn gain_and_sum() {
        let mut g = TdfGraph::new("t");
        let a = g.signal("a");
        let b = g.signal("b");
        let ga = g.signal("ga");
        let s = g.signal("sum");
        let probe = g.probe(s);
        g.add_module(
            "ca",
            ConstSource::new(a.writer(), 2.0, Some(SimTime::from_us(1))),
        );
        g.add_module("cb", ConstSource::new(b.writer(), 10.0, None));
        g.add_module("g", Gain::new(a.reader(), ga.writer(), 3.0));
        g.add_module(
            "s",
            Sum::weighted(ga.reader(), b.reader(), s.writer(), 1.0, -0.5),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(2).unwrap();
        assert_eq!(probe.values(), vec![1.0, 1.0]); // 6 − 5
    }

    #[test]
    fn product_multiplies() {
        let mut g = TdfGraph::new("t");
        let a = g.signal("a");
        let b = g.signal("b");
        let p = g.signal("p");
        let probe = g.probe(p);
        g.add_module(
            "ca",
            ConstSource::new(a.writer(), 3.0, Some(SimTime::from_us(1))),
        );
        g.add_module("cb", ConstSource::new(b.writer(), -4.0, None));
        g.add_module("m", Product::new(a.reader(), b.reader(), p.writer()));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(1).unwrap();
        assert_eq!(probe.values(), vec![-12.0]);
    }

    #[test]
    fn unit_delay_shifts_by_one() {
        struct Ramp {
            out: TdfOut,
            v: f64,
        }
        impl TdfModule for Ramp {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, self.v);
                self.v += 1.0;
                Ok(())
            }
        }
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "ramp",
            Ramp {
                out: x.writer(),
                v: 1.0,
            },
        );
        g.add_module("z", UnitDelay::new(x.reader(), y.writer(), -1.0));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(4).unwrap();
        assert_eq!(probe.values(), vec![-1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn integrator_accumulates() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "one",
            ConstSource::new(x.writer(), 1.0, Some(SimTime::from_ms(1))),
        );
        g.add_module("int", Integrator::new(x.reader(), y.writer()));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(1000).unwrap(); // ∫ 1 dt over 1 s
        let last = *probe.values().last().unwrap();
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decimator_averages_blocks() {
        struct Ramp {
            out: TdfOut,
            v: f64,
        }
        impl TdfModule for Ramp {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, self.v);
                self.v += 1.0;
                Ok(())
            }
        }
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "ramp",
            Ramp {
                out: x.writer(),
                v: 1.0,
            },
        );
        g.add_module("dec", Decimator::averaging(x.reader(), y.writer(), 4));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(2).unwrap();
        assert_eq!(probe.values(), vec![2.5, 6.5]);
    }

    #[test]
    fn upsampler_holds_value() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "c",
            ConstSource::new(x.writer(), 7.0, Some(SimTime::from_us(4))),
        );
        g.add_module("up", Upsampler::new(x.reader(), y.writer(), 4));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(2).unwrap();
        assert_eq!(probe.values(), vec![7.0; 8]);
        // Output sample period is a quarter of the input period.
        let t = probe.times();
        assert!((t[1] - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn ac_gain_chain_with_integrator() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        g.add_module(
            "src",
            crate::sources::SineSource::new(x.writer(), 1.0, 1.0, Some(SimTime::from_us(1)))
                .with_ac_magnitude(1.0),
        );
        g.add_module("int", Integrator::new(x.reader(), y.writer()));
        let mut c = g.elaborate().unwrap();
        let ac = c
            .ac_analysis(&[1.0 / (2.0 * std::f64::consts::PI)])
            .unwrap();
        // At ω = 1 rad/s the integrator's gain is 1∠−90°.
        let h = ac.response(y)[0];
        assert!((h.abs() - 1.0).abs() < 1e-9);
        assert!((h.arg() + std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }
}
