//! Sigma-delta modulators and decimation — the Σ∆ prefi/pofi converters
//! of the paper's Figure 1 (ADSL subscriber line interface).

use ams_core::{CoreError, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};

/// First-order single-bit sigma-delta modulator.
///
/// `int[n] = int[n−1] + (x[n] − y[n−1])`, `y[n] = sign(int[n])` — the
/// classic noise-shaping loop: quantization noise is pushed to high
/// frequencies at 20 dB/decade, recovered by the decimation filter.
#[derive(Debug, Clone)]
pub struct SigmaDelta1 {
    inp: TdfIn,
    out: TdfOut,
    integrator: f64,
    feedback: f64,
}

impl SigmaDelta1 {
    /// Creates a first-order modulator with ±1 output levels.
    pub fn new(inp: TdfIn, out: TdfOut) -> Self {
        SigmaDelta1 {
            inp,
            out,
            integrator: 0.0,
            feedback: 0.0,
        }
    }
}

impl TdfModule for SigmaDelta1 {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn reset(&mut self) {
        self.integrator = 0.0;
        self.feedback = 0.0;
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        self.integrator += x - self.feedback;
        let y = if self.integrator >= 0.0 { 1.0 } else { -1.0 };
        self.feedback = y;
        io.write1(self.out, y);
        Ok(())
    }
}

/// Second-order single-bit sigma-delta modulator (Boser–Wooley topology
/// with ½/½ integrator gains): 40 dB/decade noise shaping.
#[derive(Debug, Clone)]
pub struct SigmaDelta2 {
    inp: TdfIn,
    out: TdfOut,
    int1: f64,
    int2: f64,
    feedback: f64,
}

impl SigmaDelta2 {
    /// Creates a second-order modulator with ±1 output levels.
    pub fn new(inp: TdfIn, out: TdfOut) -> Self {
        SigmaDelta2 {
            inp,
            out,
            int1: 0.0,
            int2: 0.0,
            feedback: 0.0,
        }
    }
}

impl TdfModule for SigmaDelta2 {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn reset(&mut self) {
        self.int1 = 0.0;
        self.int2 = 0.0;
        self.feedback = 0.0;
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        self.int1 += 0.5 * (x - self.feedback);
        self.int2 += 0.5 * (self.int1 - self.feedback);
        let y = if self.int2 >= 0.0 { 1.0 } else { -1.0 };
        self.feedback = y;
        io.write1(self.out, y);
        Ok(())
    }
}

/// Cascaded integrator–comb (CIC) decimation filter: `order` boxcar
/// stages of length `factor`, then downsampling by `factor`. Gain is
/// normalized to 1 at DC.
#[derive(Debug, Clone)]
pub struct CicDecimator {
    inp: TdfIn,
    out: TdfOut,
    factor: u64,
    order: u32,
    /// Integrator states (one per stage).
    integrators: Vec<f64>,
    /// Comb delay lines (one previous decimated value per stage).
    combs: Vec<f64>,
}

impl CicDecimator {
    /// Creates a CIC decimator.
    ///
    /// # Panics
    ///
    /// Panics for factor 0 or order 0.
    pub fn new(inp: TdfIn, out: TdfOut, factor: u64, order: u32) -> Self {
        assert!(factor >= 1, "decimation factor must be at least 1");
        assert!(order >= 1, "cic order must be at least 1");
        CicDecimator {
            inp,
            out,
            factor,
            order,
            integrators: vec![0.0; order as usize],
            combs: vec![0.0; order as usize],
        }
    }
}

impl TdfModule for CicDecimator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input_with(self.inp, self.factor, 0);
        cfg.output(self.out);
    }
    fn reset(&mut self) {
        self.integrators.iter_mut().for_each(|v| *v = 0.0);
        self.combs.iter_mut().for_each(|v| *v = 0.0);
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        // Integrators run at the fast rate over the block.
        for k in 0..self.factor {
            let mut v = io.read(self.inp, k);
            for int in &mut self.integrators {
                *int += v;
                v = *int;
            }
        }
        // Combs run at the slow rate.
        let mut v = *self.integrators.last().expect("order >= 1");
        for comb in &mut self.combs {
            let prev = *comb;
            *comb = v;
            v -= prev;
        }
        // Normalize the DC gain (factor^order).
        let gain = (self.factor as f64).powi(self.order as i32);
        io.write1(self.out, v / gain);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{ConstSource, SineSource};
    use ams_core::TdfGraph;
    use ams_kernel::SimTime;

    #[test]
    fn first_order_mean_tracks_input() {
        let mut g = TdfGraph::new("sd1");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "src",
            ConstSource::new(x.writer(), 0.25, Some(SimTime::from_ns(100))),
        );
        g.add_module("sd", SigmaDelta1::new(x.reader(), y.writer()));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(10_000).unwrap();
        let v = probe.values();
        assert!(v.iter().all(|&b| b == 1.0 || b == -1.0), "single-bit");
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn second_order_mean_tracks_input() {
        let mut g = TdfGraph::new("sd2");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "src",
            ConstSource::new(x.writer(), -0.4, Some(SimTime::from_ns(100))),
        );
        g.add_module("sd", SigmaDelta2::new(x.reader(), y.writer()));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(10_000).unwrap();
        let mean = probe.values().iter().sum::<f64>() / 10_000.0;
        assert!((mean + 0.4).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn cic_recovers_slow_sine_from_bitstream() {
        // 1 kHz sine, modulator at 2.56 MHz, decimate by 64 → 40 kHz.
        let mut g = TdfGraph::new("dsm");
        let x = g.signal("x");
        let bits = g.signal("bits");
        let dec = g.signal("dec");
        let p_dec = g.probe(dec);
        g.add_module(
            "src",
            SineSource::new(x.writer(), 1000.0, 0.5, Some(SimTime::from_ps(390_625))),
        );
        g.add_module("sd", SigmaDelta2::new(x.reader(), bits.writer()));
        g.add_module("cic", CicDecimator::new(bits.reader(), dec.writer(), 64, 2));
        let mut c = g.elaborate().unwrap();
        // 4 ms: four sine periods; decimated rate = 40 kHz → 160 samples.
        c.run_standalone(160).unwrap();
        let v = p_dec.values();
        // Skip the CIC warm-up, then check amplitude ≈ 0.5.
        let tail = &v[40..];
        let peak = tail.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!((peak - 0.5).abs() < 0.05, "recovered peak {peak}");
        // Error vs the ideal sine at decimated timestamps is small.
        let times = p_dec.times();
        let mut err_rms = 0.0;
        let mut n = 0;
        for (t, y) in times.iter().zip(&v).skip(40) {
            // CIC group delay: order·(factor−1)/2 fast samples.
            let delay = 2.0 * 63.0 / 2.0 * 390.625e-9;
            let ideal = 0.5 * (2.0 * std::f64::consts::PI * 1000.0 * (t - delay)).sin();
            err_rms += (y - ideal).powi(2);
            n += 1;
        }
        err_rms = (err_rms / n as f64).sqrt();
        // Residual shaped quantization noise in the decimated band plus
        // CIC droop leaves a few percent of rms error at this OSR.
        assert!(err_rms < 0.08, "rms error {err_rms}");
    }

    #[test]
    fn noise_shaping_pushes_noise_to_high_frequencies() {
        // Compare in-band vs out-of-band quantization noise power of a
        // first-order modulator driven by a small DC.
        let mut g = TdfGraph::new("shape");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "src",
            ConstSource::new(x.writer(), 0.1, Some(SimTime::from_ns(100))),
        );
        g.add_module("sd", SigmaDelta1::new(x.reader(), y.writer()));
        let mut c = g.elaborate().unwrap();
        let n = 4096;
        c.run_standalone(n).unwrap();
        let v = probe.values();
        let spec = ams_math::fft::fft_real(&v).unwrap();
        // Noise power in the lowest eighth vs the highest eighth of the
        // spectrum (excluding DC).
        let low: f64 = spec[1..n as usize / 8].iter().map(|z| z.norm_sqr()).sum();
        let high: f64 = spec[3 * n as usize / 8..n as usize / 2]
            .iter()
            .map(|z| z.norm_sqr())
            .sum();
        assert!(
            high > 10.0 * low,
            "noise should rise with frequency: low {low:.1}, high {high:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_cic_panics() {
        let mut g = TdfGraph::new("bad");
        let a = g.signal("a");
        let b = g.signal("b");
        let _ = CicDecimator::new(a.reader(), b.writer(), 4, 0);
    }
}
