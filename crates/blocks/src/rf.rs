//! RF/wireless behavioural blocks (paper phase 2): mixers, oscillators,
//! compressive power amplifiers, AWGN channels and QPSK symbol mapping —
//! the "dataflow models \[used\] to improve simulation efficiency while
//! still achieving an acceptable level of accuracy" for transceiver
//! front-ends (§2, ref \[18\]).

use ams_core::{CoreError, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Local oscillator: emits `cos(2π·f·t + phase)`.
#[derive(Debug, Clone)]
pub struct Oscillator {
    out: TdfOut,
    freq_hz: f64,
    phase: f64,
}

impl Oscillator {
    /// Creates a cosine oscillator.
    pub fn new(out: TdfOut, freq_hz: f64, phase: f64) -> Self {
        Oscillator {
            out,
            freq_hz,
            phase,
        }
    }
}

impl TdfModule for Oscillator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let t = io.time();
        io.write1(
            self.out,
            (2.0 * std::f64::consts::PI * self.freq_hz * t + self.phase).cos(),
        );
        Ok(())
    }
}

/// Voltage-controlled oscillator: instantaneous frequency
/// `f0 + kv·v_ctrl`, phase-continuous (integrating the control input).
#[derive(Debug, Clone)]
pub struct Vco {
    ctrl: TdfIn,
    out: TdfOut,
    f0_hz: f64,
    kv_hz_per_v: f64,
    phase: f64,
}

impl Vco {
    /// Creates a VCO centred at `f0_hz` with gain `kv_hz_per_v`.
    pub fn new(ctrl: TdfIn, out: TdfOut, f0_hz: f64, kv_hz_per_v: f64) -> Self {
        Vco {
            ctrl,
            out,
            f0_hz,
            kv_hz_per_v,
            phase: 0.0,
        }
    }
}

impl TdfModule for Vco {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.ctrl);
        cfg.output(self.out);
    }
    fn reset(&mut self) {
        self.phase = 0.0;
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = io.read1(self.ctrl);
        let freq = self.f0_hz + self.kv_hz_per_v * v;
        self.phase += 2.0 * std::f64::consts::PI * freq * io.timestep();
        io.write1(self.out, self.phase.cos());
        Ok(())
    }
}

/// Ideal multiplying mixer with conversion gain.
#[derive(Debug, Clone)]
pub struct Mixer {
    rf: TdfIn,
    lo: TdfIn,
    out: TdfOut,
    gain: f64,
}

impl Mixer {
    /// Creates a mixer `out = gain · rf · lo`.
    pub fn new(rf: TdfIn, lo: TdfIn, out: TdfOut, gain: f64) -> Self {
        Mixer { rf, lo, out, gain }
    }
}

impl TdfModule for Mixer {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.rf);
        cfg.input(self.lo);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let rf = io.read1(self.rf);
        let lo = io.read1(self.lo);
        io.write1(self.out, self.gain * rf * lo);
        Ok(())
    }
}

/// Power amplifier with Rapp-model gain compression:
/// `out = g·x / (1 + |g·x/Vsat|^{2p})^{1/(2p)}`.
#[derive(Debug, Clone)]
pub struct PowerAmp {
    inp: TdfIn,
    out: TdfOut,
    gain: f64,
    v_sat: f64,
    smoothness: f64,
}

impl PowerAmp {
    /// Creates a Rapp-model PA. `smoothness` (p) of 1–3 is typical.
    ///
    /// # Panics
    ///
    /// Panics for non-positive saturation or smoothness.
    pub fn new(inp: TdfIn, out: TdfOut, gain: f64, v_sat: f64, smoothness: f64) -> Self {
        assert!(v_sat > 0.0, "saturation voltage must be positive");
        assert!(smoothness > 0.0, "smoothness must be positive");
        PowerAmp {
            inp,
            out,
            gain,
            v_sat,
            smoothness,
        }
    }

    /// The AM/AM transfer for a single value.
    pub fn transfer(&self, x: f64) -> f64 {
        let lin = self.gain * x;
        let p2 = 2.0 * self.smoothness;
        lin / (1.0 + (lin / self.v_sat).abs().powf(p2)).powf(1.0 / p2)
    }

    /// The 1 dB compression input amplitude (solved numerically).
    pub fn p1db_input(&self) -> f64 {
        let target = 10f64.powf(-1.0 / 20.0); // −1 dB
        let mut lo = 1e-9;
        let mut hi = 100.0 * self.v_sat / self.gain;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let ratio = self.transfer(mid) / (self.gain * mid);
            if ratio > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl TdfModule for PowerAmp {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        io.write1(self.out, self.transfer(x));
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut ams_core::AcIo<'_>) {
        ac.set_gain(
            self.inp,
            self.out,
            ams_math::Complex64::from_real(self.gain),
        );
    }
}

/// Additive white Gaussian noise channel with selectable noise standard
/// deviation per sample.
#[derive(Debug)]
pub struct AwgnChannel {
    inp: TdfIn,
    out: TdfOut,
    sigma: f64,
    rng: StdRng,
}

impl AwgnChannel {
    /// Creates an AWGN channel with per-sample noise σ and RNG seed.
    pub fn new(inp: TdfIn, out: TdfOut, sigma: f64, seed: u64) -> Self {
        AwgnChannel {
            inp,
            out,
            sigma,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl TdfModule for AwgnChannel {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        let n = self.sigma * self.gauss();
        io.write1(self.out, x + n);
        Ok(())
    }
}

/// QPSK symbol mapper: consumes 2 bits (0.0/1.0) per firing, produces one
/// I and one Q sample at ±1/√2 (Gray mapping).
#[derive(Debug, Clone)]
pub struct QpskMapper {
    bits: TdfIn,
    i_out: TdfOut,
    q_out: TdfOut,
}

impl QpskMapper {
    /// Creates the mapper.
    pub fn new(bits: TdfIn, i_out: TdfOut, q_out: TdfOut) -> Self {
        QpskMapper { bits, i_out, q_out }
    }
}

impl TdfModule for QpskMapper {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input_with(self.bits, 2, 0);
        cfg.output(self.i_out);
        cfg.output(self.q_out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let b0 = io.read(self.bits, 0) >= 0.5;
        let b1 = io.read(self.bits, 1) >= 0.5;
        let a = std::f64::consts::FRAC_1_SQRT_2;
        io.write1(self.i_out, if b0 { a } else { -a });
        io.write1(self.q_out, if b1 { a } else { -a });
        Ok(())
    }
}

/// QPSK hard-decision demapper: consumes one I and one Q sample, emits 2
/// bits per firing.
#[derive(Debug, Clone)]
pub struct QpskDemapper {
    i_in: TdfIn,
    q_in: TdfIn,
    bits: TdfOut,
}

impl QpskDemapper {
    /// Creates the demapper.
    pub fn new(i_in: TdfIn, q_in: TdfIn, bits: TdfOut) -> Self {
        QpskDemapper { i_in, q_in, bits }
    }
}

impl TdfModule for QpskDemapper {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.i_in);
        cfg.input(self.q_in);
        cfg.output_with(self.bits, 2);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let i = io.read1(self.i_in);
        let q = io.read1(self.q_in);
        io.write(self.bits, 0, if i >= 0.0 { 1.0 } else { 0.0 });
        io.write(self.bits, 1, if q >= 0.0 { 1.0 } else { 0.0 });
        Ok(())
    }
}

/// Theoretical QPSK bit-error rate over AWGN:
/// `BER = ½·erfc(√(Eb/N0))`.
pub fn qpsk_theoretical_ber(eb_n0_db: f64) -> f64 {
    let eb_n0 = 10f64.powf(eb_n0_db / 10.0);
    0.5 * erfc(eb_n0.sqrt())
}

/// Complementary error function (Abramowitz–Stegun 7.1.26-based rational
/// approximation, |ε| < 1.5e−7 — ample for BER curves).
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    let erf = if sign_neg { -erf } else { erf };
    1.0 - erf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{ConstSource, PrbsSource, SineSource};
    use ams_core::TdfGraph;
    use ams_kernel::SimTime;

    #[test]
    fn mixer_produces_sum_and_difference() {
        // 10 kHz × 9 kHz → 1 kHz + 19 kHz products.
        let mut g = TdfGraph::new("mix");
        let rf = g.signal("rf");
        let lo = g.signal("lo");
        let ifo = g.signal("if");
        let probe = g.probe(ifo);
        let fs = 1e6;
        g.add_module(
            "rf",
            SineSource::new(
                rf.writer(),
                10_000.0,
                1.0,
                Some(SimTime::from_seconds(1.0 / fs)),
            ),
        );
        g.add_module("lo", Oscillator::new(lo.writer(), 9_000.0, 0.0));
        g.add_module(
            "mix",
            Mixer::new(rf.reader(), lo.reader(), ifo.writer(), 2.0),
        );
        let mut c = g.elaborate().unwrap();
        let n = 8192;
        c.run_standalone(n).unwrap();
        let spec = ams_math::fft::amplitude_spectrum(&probe.values(), ams_math::fft::Window::Hann)
            .unwrap();
        let bin = |f: f64| (f / fs * n as f64).round() as usize;
        // gain 2 × (1·1) sine×cos product → each sideband amplitude 1.0.
        assert!(spec[bin(1000.0)] > 0.8, "difference product");
        assert!(spec[bin(19_000.0)] > 0.8, "sum product");
        assert!(spec[bin(9_000.0)] < 0.1, "LO leakage suppressed");
    }

    #[test]
    fn vco_frequency_follows_control() {
        let mut g = TdfGraph::new("vco");
        let ctrl = g.signal("ctrl");
        let out = g.signal("out");
        let probe = g.probe(out);
        g.add_module(
            "c",
            ConstSource::new(ctrl.writer(), 2.0, Some(SimTime::from_us(1))),
        );
        g.add_module("vco", Vco::new(ctrl.reader(), out.writer(), 1000.0, 500.0));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(100_000).unwrap(); // 100 ms
                                            // f = 1000 + 500·2 = 2000 Hz → 200 upward crossings in 0.1 s.
        let v = probe.values();
        let crossings = v.windows(2).filter(|w| w[0] < 0.0 && w[1] >= 0.0).count();
        assert!((195..=205).contains(&crossings), "crossings {crossings}");
    }

    #[test]
    fn pa_compression_point() {
        let mut g = TdfGraph::new("pa");
        let a = g.signal("a");
        let b = g.signal("b");
        let pa = PowerAmp::new(a.reader(), b.writer(), 10.0, 1.0, 2.0);
        // Small signal: linear.
        assert!((pa.transfer(0.001) - 0.01).abs() < 1e-5);
        // Hard drive: saturates at v_sat.
        assert!((pa.transfer(10.0) - 1.0).abs() < 0.01);
        // P1dB exists and is below saturation drive.
        let p1 = pa.p1db_input();
        let ratio = pa.transfer(p1) / (10.0 * p1);
        assert!(
            (20.0 * ratio.log10() + 1.0).abs() < 0.01,
            "1 dB compression"
        );
    }

    #[test]
    fn qpsk_roundtrip_noiseless() {
        let mut g = TdfGraph::new("qpsk");
        let bits = g.signal("bits");
        let i = g.signal("i");
        let q = g.signal("q");
        let rx = g.signal("rx");
        let p_tx = g.probe(bits);
        let p_rx = g.probe(rx);
        g.add_module(
            "prbs",
            PrbsSource::new(bits.writer(), 0x1234, Some(SimTime::from_us(1))),
        );
        g.add_module(
            "map",
            QpskMapper::new(bits.reader(), i.writer(), q.writer()),
        );
        g.add_module(
            "demap",
            QpskDemapper::new(i.reader(), q.reader(), rx.writer()),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(500).unwrap();
        assert_eq!(p_tx.values(), p_rx.values());
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn theoretical_ber_curve_shape() {
        // Known QPSK values: ~0.0786 at 0 dB, ~7.7e-4 at 7 dB... use
        // standard table: BER(0 dB) ≈ 0.0786, BER(9.6 dB) ≈ 1e-5.
        assert!((qpsk_theoretical_ber(0.0) - 0.0786).abs() < 1e-3);
        let ber96 = qpsk_theoretical_ber(9.6);
        assert!(ber96 > 2e-6 && ber96 < 5e-5, "ber at 9.6 dB: {ber96}");
        // Monotone decreasing.
        assert!(qpsk_theoretical_ber(4.0) < qpsk_theoretical_ber(2.0));
    }

    #[test]
    fn awgn_is_additive_and_seeded() {
        let mut g = TdfGraph::new("awgn");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "c",
            ConstSource::new(x.writer(), 5.0, Some(SimTime::from_us(1))),
        );
        g.add_module("ch", AwgnChannel::new(x.reader(), y.writer(), 0.1, 99));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(5000).unwrap();
        let v = probe.values();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 5.0).abs() < 0.01, "mean {mean}");
        let sigma = (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt();
        assert!((sigma - 0.1).abs() < 0.01, "sigma {sigma}");
    }
}
