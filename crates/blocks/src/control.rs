//! Control blocks (paper phase 3, automotive): a discrete PID controller
//! for software-in-the-loop style closed loops.

use ams_core::{CoreError, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};

/// Discrete PID controller `u = kp·e + ki·∫e dt + kd·de/dt` with
/// anti-windup output clamping and a filtered derivative.
#[derive(Debug, Clone)]
pub struct Pid {
    setpoint: TdfIn,
    feedback: TdfIn,
    out: TdfOut,
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    prev_error: f64,
    deriv_state: f64,
    /// Derivative low-pass coefficient (0 = unfiltered).
    deriv_alpha: f64,
    out_min: f64,
    out_max: f64,
    first: bool,
}

impl Pid {
    /// Creates a PID controller with unbounded output.
    pub fn new(setpoint: TdfIn, feedback: TdfIn, out: TdfOut, kp: f64, ki: f64, kd: f64) -> Self {
        Pid {
            setpoint,
            feedback,
            out,
            kp,
            ki,
            kd,
            integral: 0.0,
            prev_error: 0.0,
            deriv_state: 0.0,
            deriv_alpha: 0.8,
            out_min: f64::NEG_INFINITY,
            out_max: f64::INFINITY,
            first: true,
        }
    }

    /// Clamps the output (with integral anti-windup).
    ///
    /// # Panics
    ///
    /// Panics if `min >= max`.
    pub fn with_limits(mut self, min: f64, max: f64) -> Self {
        assert!(min < max, "output limits must satisfy min < max");
        self.out_min = min;
        self.out_max = max;
        self
    }

    /// Sets the derivative filter coefficient in `[0, 1)` (higher =
    /// smoother).
    ///
    /// # Panics
    ///
    /// Panics for values outside `[0, 1)`.
    pub fn with_derivative_filter(mut self, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        self.deriv_alpha = alpha;
        self
    }
}

impl TdfModule for Pid {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.setpoint);
        cfg.input(self.feedback);
        cfg.output(self.out);
    }
    fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = 0.0;
        self.deriv_state = 0.0;
        self.first = true;
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let sp = io.read1(self.setpoint);
        let fb = io.read1(self.feedback);
        let e = sp - fb;
        let ts = io.timestep();

        // Derivative with first-order filtering; skipped on first sample.
        let raw_d = if self.first {
            self.first = false;
            0.0
        } else {
            (e - self.prev_error) / ts
        };
        self.deriv_state = self.deriv_alpha * self.deriv_state + (1.0 - self.deriv_alpha) * raw_d;
        self.prev_error = e;

        // Trial output with current integral.
        let trial = self.kp * e + self.ki * (self.integral + e * ts) + self.kd * self.deriv_state;
        // Anti-windup: only accumulate when not saturating further.
        if (trial < self.out_max || e < 0.0) && (trial > self.out_min || e > 0.0) {
            self.integral += e * ts;
        }
        let u = (self.kp * e + self.ki * self.integral + self.kd * self.deriv_state)
            .clamp(self.out_min, self.out_max);
        io.write1(self.out, u);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::ConstSource;
    use ams_core::{TdfGraph, TdfInit};
    use ams_kernel::SimTime;

    /// First-order plant `τ·ẏ + y = u` closed around the PID.
    struct Plant {
        u: TdfIn,
        y: TdfOut,
        state: f64,
        tau: f64,
    }
    impl TdfModule for Plant {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.input_with(self.u, 1, 1); // delay breaks the loop
            cfg.output(self.y);
            cfg.set_timestep(SimTime::from_us(100));
        }
        fn initialize(&mut self, init: &mut TdfInit<'_>) -> Result<(), CoreError> {
            init.set_initial(self.u, 0, 0.0);
            Ok(())
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            let u = io.read1(self.u);
            let ts = io.timestep();
            // Backward Euler on τ·ẏ = u − y.
            self.state = (self.state + ts / self.tau * u) / (1.0 + ts / self.tau);
            io.write1(self.y, self.state);
            Ok(())
        }
    }

    #[test]
    fn pi_loop_settles_to_setpoint_without_offset() {
        let mut g = TdfGraph::new("loop");
        let sp = g.signal("sp");
        let y = g.signal("y");
        let u = g.signal("u");
        let probe = g.probe(y);
        g.add_module("sp", ConstSource::new(sp.writer(), 3.0, None));
        g.add_module(
            "pid",
            Pid::new(sp.reader(), y.reader(), u.writer(), 2.0, 50.0, 0.0),
        );
        g.add_module(
            "plant",
            Plant {
                u: u.reader(),
                y: y.writer(),
                state: 0.0,
                tau: 10e-3,
            },
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(5000).unwrap(); // 0.5 s
        let last = *probe.values().last().unwrap();
        assert!((last - 3.0).abs() < 1e-3, "settled to {last}");
    }

    #[test]
    fn p_only_loop_has_steady_state_error() {
        let mut g = TdfGraph::new("loop");
        let sp = g.signal("sp");
        let y = g.signal("y");
        let u = g.signal("u");
        let probe = g.probe(y);
        g.add_module("sp", ConstSource::new(sp.writer(), 1.0, None));
        g.add_module(
            "pid",
            Pid::new(sp.reader(), y.reader(), u.writer(), 4.0, 0.0, 0.0),
        );
        g.add_module(
            "plant",
            Plant {
                u: u.reader(),
                y: y.writer(),
                state: 0.0,
                tau: 10e-3,
            },
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(5000).unwrap();
        let last = *probe.values().last().unwrap();
        // Unity-feedback P loop on a unity-gain plant: y∞ = kp/(1+kp).
        assert!((last - 0.8).abs() < 0.01, "settled to {last}");
    }

    #[test]
    fn output_clamping_respected() {
        let mut g = TdfGraph::new("clamp");
        let sp = g.signal("sp");
        let fb = g.signal("fb");
        let u = g.signal("u");
        let probe = g.probe(u);
        g.add_module(
            "sp",
            ConstSource::new(sp.writer(), 100.0, Some(SimTime::from_ms(1))),
        );
        g.add_module("fb", ConstSource::new(fb.writer(), 0.0, None));
        g.add_module(
            "pid",
            Pid::new(sp.reader(), fb.reader(), u.writer(), 10.0, 100.0, 0.0).with_limits(-1.0, 1.0),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(100).unwrap();
        assert!(probe.values().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert_eq!(*probe.values().last().unwrap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn bad_limits_panic() {
        let mut g = TdfGraph::new("bad");
        let a = g.signal("a");
        let b = g.signal("b");
        let c = g.signal("c");
        let _ = Pid::new(a.reader(), b.reader(), c.writer(), 1.0, 0.0, 0.0).with_limits(1.0, -1.0);
    }
}
