//! Stimulus sources for TDF clusters.

use ams_core::{AcIo, CoreError, TdfIo, TdfModule, TdfOut, TdfSetup};
use ams_kernel::SimTime;
use ams_math::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A constant (DC) source.
#[derive(Debug, Clone)]
pub struct ConstSource {
    out: TdfOut,
    value: f64,
    timestep: Option<SimTime>,
}

impl ConstSource {
    /// Creates a constant source; `timestep` may be `None` if another
    /// module paces the cluster.
    pub fn new(out: TdfOut, value: f64, timestep: Option<SimTime>) -> Self {
        ConstSource {
            out,
            value,
            timestep,
        }
    }
}

impl TdfModule for ConstSource {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        if let Some(ts) = self.timestep {
            cfg.set_timestep(ts);
        }
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        io.write1(self.out, self.value);
        Ok(())
    }
}

/// A sine source `offset + ampl·sin(2π·freq·t + phase)`, optionally the
/// AC stimulus of the cluster.
#[derive(Debug, Clone)]
pub struct SineSource {
    out: TdfOut,
    freq_hz: f64,
    ampl: f64,
    offset: f64,
    phase: f64,
    ac_mag: f64,
    timestep: Option<SimTime>,
}

impl SineSource {
    /// Creates a sine source with zero offset/phase.
    pub fn new(out: TdfOut, freq_hz: f64, ampl: f64, timestep: Option<SimTime>) -> Self {
        SineSource {
            out,
            freq_hz,
            ampl,
            offset: 0.0,
            phase: 0.0,
            ac_mag: 0.0,
            timestep,
        }
    }

    /// Adds a DC offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Sets the initial phase in radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Designates this source as the AC stimulus with the given
    /// magnitude (used by [`ams_core::Cluster::ac_analysis`]).
    pub fn with_ac_magnitude(mut self, mag: f64) -> Self {
        self.ac_mag = mag;
        self
    }
}

impl TdfModule for SineSource {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        if let Some(ts) = self.timestep {
            cfg.set_timestep(ts);
        }
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let t = io.time();
        let v = self.offset
            + self.ampl * (2.0 * std::f64::consts::PI * self.freq_hz * t + self.phase).sin();
        io.write1(self.out, v);
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        if self.ac_mag != 0.0 {
            ac.set_source(self.out, Complex64::from_real(self.ac_mag));
        }
    }
}

/// A trapezoidal pulse train (like a SPICE PULSE source).
#[derive(Debug, Clone)]
pub struct PulseSource {
    out: TdfOut,
    /// Low level.
    pub v1: f64,
    /// High level.
    pub v2: f64,
    /// Delay before the first rise, seconds.
    pub delay: f64,
    /// Rise time, seconds.
    pub rise: f64,
    /// Fall time, seconds.
    pub fall: f64,
    /// Plateau width, seconds.
    pub width: f64,
    /// Period, seconds (0 = single pulse).
    pub period: f64,
    timestep: Option<SimTime>,
}

impl PulseSource {
    /// Creates a square pulse train with the given period and 50 % duty.
    pub fn square(out: TdfOut, v1: f64, v2: f64, period: f64, timestep: Option<SimTime>) -> Self {
        PulseSource {
            out,
            v1,
            v2,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: period / 2.0,
            period,
            timestep,
        }
    }
}

impl TdfModule for PulseSource {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        if let Some(ts) = self.timestep {
            cfg.set_timestep(ts);
        }
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let mut tau = io.time() - self.delay;
        let v = if tau < 0.0 {
            self.v1
        } else {
            if self.period > 0.0 {
                tau %= self.period;
            }
            if tau < self.rise {
                if self.rise == 0.0 {
                    self.v2
                } else {
                    self.v1 + (self.v2 - self.v1) * tau / self.rise
                }
            } else if tau < self.rise + self.width {
                self.v2
            } else if tau < self.rise + self.width + self.fall {
                self.v2 + (self.v1 - self.v2) * (tau - self.rise - self.width) / self.fall
            } else {
                self.v1
            }
        };
        io.write1(self.out, v);
        Ok(())
    }
}

/// A pseudo-random bit source (Fibonacci LFSR, 0.0/1.0 levels).
#[derive(Debug, Clone)]
pub struct PrbsSource {
    out: TdfOut,
    state: u32,
    seed: u32,
    timestep: Option<SimTime>,
}

impl PrbsSource {
    /// Creates a PRBS-15 source with the given (non-zero) seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (the LFSR would lock up).
    pub fn new(out: TdfOut, seed: u32, timestep: Option<SimTime>) -> Self {
        assert!(seed != 0, "lfsr seed must be non-zero");
        PrbsSource {
            out,
            state: seed & 0x7FFF | 1,
            seed: seed & 0x7FFF | 1,
            timestep,
        }
    }
}

impl TdfModule for PrbsSource {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        if let Some(ts) = self.timestep {
            cfg.set_timestep(ts);
        }
    }
    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        // x^15 + x^14 + 1 (PRBS-15).
        let bit = ((self.state >> 14) ^ (self.state >> 13)) & 1;
        self.state = ((self.state << 1) | bit) & 0x7FFF;
        io.write1(self.out, bit as f64);
        Ok(())
    }
}

/// Additive white Gaussian noise source with a fixed RNG seed for
/// reproducible runs.
#[derive(Debug)]
pub struct NoiseSource {
    out: TdfOut,
    sigma: f64,
    rng: StdRng,
    timestep: Option<SimTime>,
}

impl NoiseSource {
    /// Creates a zero-mean Gaussian noise source with standard deviation
    /// `sigma`.
    pub fn new(out: TdfOut, sigma: f64, seed: u64, timestep: Option<SimTime>) -> Self {
        NoiseSource {
            out,
            sigma,
            rng: StdRng::seed_from_u64(seed),
            timestep,
        }
    }

    /// Draws one Gaussian sample (Box–Muller).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl TdfModule for NoiseSource {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        if let Some(ts) = self.timestep {
            cfg.set_timestep(ts);
        }
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = self.sigma * self.gauss();
        io.write1(self.out, v);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::TdfGraph;

    fn run_source<M: TdfModule + 'static>(
        build: impl FnOnce(TdfOut) -> M,
        iterations: u64,
    ) -> Vec<f64> {
        let mut g = TdfGraph::new("src");
        let s = g.signal("out");
        let probe = g.probe(s);
        g.add_module("src", build(s.writer()));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(iterations).unwrap();
        probe.values()
    }

    #[test]
    fn const_source_holds_value() {
        let v = run_source(
            |out| ConstSource::new(out, 3.25, Some(SimTime::from_us(1))),
            5,
        );
        assert_eq!(v, vec![3.25; 5]);
    }

    #[test]
    fn sine_source_waveform() {
        // 1 kHz sine sampled at 8 kHz: sample 2 is at the peak.
        let v = run_source(
            |out| SineSource::new(out, 1000.0, 2.0, Some(SimTime::from_ns(125_000))),
            8,
        );
        assert!(v[0].abs() < 1e-12);
        assert!((v[2] - 2.0).abs() < 1e-9);
        assert!((v[6] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn sine_with_offset_and_phase() {
        let v = run_source(
            |out| {
                SineSource::new(out, 1000.0, 1.0, Some(SimTime::from_us(125)))
                    .with_offset(10.0)
                    .with_phase(std::f64::consts::FRAC_PI_2)
            },
            1,
        );
        assert!((v[0] - 11.0).abs() < 1e-12); // offset + cos(0)
    }

    #[test]
    fn pulse_square_wave() {
        // Period 8 µs, sampled at 1 µs: 4 high, 4 low.
        let v = run_source(
            |out| PulseSource::square(out, 0.0, 5.0, 8e-6, Some(SimTime::from_us(1))),
            8,
        );
        assert_eq!(v, vec![5.0, 5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn prbs_is_binary_and_balanced() {
        let v = run_source(
            |out| PrbsSource::new(out, 0xACE1, Some(SimTime::from_ns(10))),
            2000,
        );
        assert!(v.iter().all(|&x| x == 0.0 || x == 1.0));
        let ones = v.iter().filter(|&&x| x == 1.0).count();
        // Roughly balanced.
        assert!((800..1200).contains(&ones), "ones = {ones}");
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn zero_prbs_seed_panics() {
        let mut g = TdfGraph::new("bad");
        let s = g.signal("x");
        let _ = PrbsSource::new(s.writer(), 0, None);
    }

    #[test]
    fn noise_statistics() {
        let v = run_source(
            |out| NoiseSource::new(out, 0.5, 42, Some(SimTime::from_ns(10))),
            20_000,
        );
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn noise_is_reproducible() {
        let a = run_source(
            |out| NoiseSource::new(out, 1.0, 7, Some(SimTime::from_ns(10))),
            100,
        );
        let b = run_source(
            |out| NoiseSource::new(out, 1.0, 7, Some(SimTime::from_ns(10))),
            100,
        );
        assert_eq!(a, b);
    }
}
