//! Static nonlinear blocks: amplifiers with saturation, comparators,
//! quantizers — the behavioural models phase 2 of the paper calls the
//! "enriched mixed-signal library … e.g. amplifiers, converters".

use ams_core::{AcIo, CoreError, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};
use ams_math::Complex64;

/// Linear amplifier with hard output clipping at ±`limit`.
#[derive(Debug, Clone)]
pub struct SaturatingAmp {
    inp: TdfIn,
    out: TdfOut,
    gain: f64,
    limit: f64,
}

impl SaturatingAmp {
    /// Creates a clipping amplifier.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not strictly positive.
    pub fn new(inp: TdfIn, out: TdfOut, gain: f64, limit: f64) -> Self {
        assert!(limit > 0.0, "saturation limit must be positive");
        SaturatingAmp {
            inp,
            out,
            gain,
            limit,
        }
    }
}

impl TdfModule for SaturatingAmp {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        io.write1(self.out, (self.gain * x).clamp(-self.limit, self.limit));
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        // Small-signal: the linear gain (valid in the unclipped region).
        ac.set_gain(self.inp, self.out, Complex64::from_real(self.gain));
    }
}

/// Soft-limiting amplifier `out = limit·tanh(gain·in / limit)` — a smooth
/// compression model for line drivers and power amplifiers.
#[derive(Debug, Clone)]
pub struct TanhAmp {
    inp: TdfIn,
    out: TdfOut,
    gain: f64,
    limit: f64,
}

impl TanhAmp {
    /// Creates a tanh-compression amplifier.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not strictly positive.
    pub fn new(inp: TdfIn, out: TdfOut, gain: f64, limit: f64) -> Self {
        assert!(limit > 0.0, "saturation limit must be positive");
        TanhAmp {
            inp,
            out,
            gain,
            limit,
        }
    }
}

impl TdfModule for TanhAmp {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        io.write1(self.out, self.limit * (self.gain * x / self.limit).tanh());
        Ok(())
    }
    fn ac_processing(&mut self, ac: &mut AcIo<'_>) {
        ac.set_gain(self.inp, self.out, Complex64::from_real(self.gain));
    }
}

/// Comparator with optional hysteresis: output `high`/`low` depending on
/// the input relative to `threshold` (± `hysteresis`/2).
#[derive(Debug, Clone)]
pub struct Comparator {
    inp: TdfIn,
    out: TdfOut,
    threshold: f64,
    hysteresis: f64,
    low: f64,
    high: f64,
    state_high: bool,
}

impl Comparator {
    /// Creates a comparator with 0/1 output and no hysteresis.
    pub fn new(inp: TdfIn, out: TdfOut, threshold: f64) -> Self {
        Comparator {
            inp,
            out,
            threshold,
            hysteresis: 0.0,
            low: 0.0,
            high: 1.0,
            state_high: false,
        }
    }

    /// Sets the output levels.
    pub fn with_levels(mut self, low: f64, high: f64) -> Self {
        self.low = low;
        self.high = high;
        self
    }

    /// Adds hysteresis (total width).
    ///
    /// # Panics
    ///
    /// Panics on a negative width.
    pub fn with_hysteresis(mut self, width: f64) -> Self {
        assert!(width >= 0.0, "hysteresis width must be non-negative");
        self.hysteresis = width;
        self
    }
}

impl TdfModule for Comparator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn reset(&mut self) {
        self.state_high = false;
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        let half = self.hysteresis / 2.0;
        if self.state_high {
            if x < self.threshold - half {
                self.state_high = false;
            }
        } else if x > self.threshold + half {
            self.state_high = true;
        }
        io.write1(self.out, if self.state_high { self.high } else { self.low });
        Ok(())
    }
}

/// Dead-zone block: zero output for `|in| < width/2`, linear beyond.
#[derive(Debug, Clone)]
pub struct DeadZone {
    inp: TdfIn,
    out: TdfOut,
    width: f64,
}

impl DeadZone {
    /// Creates a dead zone of total `width`.
    ///
    /// # Panics
    ///
    /// Panics on a negative width.
    pub fn new(inp: TdfIn, out: TdfOut, width: f64) -> Self {
        assert!(width >= 0.0, "dead zone width must be non-negative");
        DeadZone { inp, out, width }
    }
}

impl TdfModule for DeadZone {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        let half = self.width / 2.0;
        let y = if x > half {
            x - half
        } else if x < -half {
            x + half
        } else {
            0.0
        };
        io.write1(self.out, y);
        Ok(())
    }
}

/// Uniform midtread quantizer with `bits` resolution over ±`full_scale`,
/// saturating at the rails. Output is the reconstructed analog value.
#[derive(Debug, Clone)]
pub struct Quantizer {
    inp: TdfIn,
    out: TdfOut,
    bits: u32,
    full_scale: f64,
}

impl Quantizer {
    /// Creates a quantizer.
    ///
    /// # Panics
    ///
    /// Panics for zero bits or a non-positive full scale.
    pub fn new(inp: TdfIn, out: TdfOut, bits: u32, full_scale: f64) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        assert!(full_scale > 0.0, "full scale must be positive");
        Quantizer {
            inp,
            out,
            bits,
            full_scale,
        }
    }

    /// The LSB size of this quantizer.
    pub fn lsb(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }

    /// Quantizes one value (also usable outside a TDF context).
    pub fn quantize(&self, x: f64) -> f64 {
        let lsb = self.lsb();
        let clipped = x.clamp(-self.full_scale, self.full_scale - lsb);
        (clipped / lsb).round() * lsb
    }
}

impl TdfModule for Quantizer {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        io.write1(self.out, self.quantize(x));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::SineSource;
    use ams_core::TdfGraph;
    use ams_kernel::SimTime;

    fn run_block<M: TdfModule + 'static>(
        input: impl Fn(u64) -> f64 + Send + 'static,
        build: impl FnOnce(TdfIn, TdfOut) -> M,
        n: u64,
    ) -> Vec<f64> {
        struct Driver<F> {
            out: TdfOut,
            f: F,
            k: u64,
        }
        impl<F: Fn(u64) -> f64 + Send + 'static> TdfModule for Driver<F> {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, (self.f)(self.k));
                self.k += 1;
                Ok(())
            }
        }
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        g.add_module(
            "drv",
            Driver {
                out: x.writer(),
                f: input,
                k: 0,
            },
        );
        g.add_module("dut", build(x.reader(), y.writer()));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(n).unwrap();
        probe.values()
    }

    #[test]
    fn saturating_amp_clips() {
        let v = run_block(
            |k| k as f64 - 2.0, // −2, −1, 0, 1, 2
            |i, o| SaturatingAmp::new(i, o, 3.0, 4.0),
            5,
        );
        assert_eq!(v, vec![-4.0, -3.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn tanh_amp_linear_small_compressive_large() {
        let v = run_block(
            |k| if k == 0 { 0.001 } else { 100.0 },
            |i, o| TanhAmp::new(i, o, 10.0, 1.0),
            2,
        );
        assert!((v[0] - 0.01).abs() < 1e-5, "linear region: {}", v[0]);
        assert!((v[1] - 1.0).abs() < 1e-9, "saturated: {}", v[1]);
    }

    #[test]
    fn comparator_no_hysteresis() {
        let v = run_block(
            |k| [0.2, 0.8, 0.4, 0.9][k as usize],
            |i, o| Comparator::new(i, o, 0.5),
            4,
        );
        assert_eq!(v, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn comparator_hysteresis_rejects_chatter() {
        // Signal oscillating within the hysteresis band: state is held.
        let v = run_block(
            |k| [0.0, 1.0, 0.45, 0.55, 0.45, 0.55, -0.2][k as usize],
            |i, o| Comparator::new(i, o, 0.5).with_hysteresis(0.4),
            7,
        );
        assert_eq!(v, vec![0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn comparator_custom_levels() {
        let v = run_block(
            |k| if k == 0 { -1.0 } else { 1.0 },
            |i, o| Comparator::new(i, o, 0.0).with_levels(-5.0, 5.0),
            2,
        );
        assert_eq!(v, vec![-5.0, 5.0]);
    }

    #[test]
    fn dead_zone_blocks_small_signals() {
        let v = run_block(
            |k| [-2.0, -0.3, 0.0, 0.3, 2.0][k as usize],
            |i, o| DeadZone::new(i, o, 1.0),
            5,
        );
        assert_eq!(v, vec![-1.5, 0.0, 0.0, 0.0, 1.5]);
    }

    #[test]
    fn quantizer_lsb_and_snap() {
        let mut g = TdfGraph::new("q");
        let x = g.signal("x");
        let y = g.signal("y");
        let q = Quantizer::new(x.reader(), y.writer(), 3, 1.0);
        assert!((q.lsb() - 0.25).abs() < 1e-12);
        assert_eq!(q.quantize(0.3), 0.25);
        assert_eq!(q.quantize(0.38), 0.5);
        assert_eq!(q.quantize(5.0), 0.75); // clipped to FS − LSB
        assert_eq!(q.quantize(-5.0), -1.0);
    }

    #[test]
    fn quantized_sine_error_bounded_by_half_lsb() {
        let mut g = TdfGraph::new("q");
        let x = g.signal("x");
        let y = g.signal("y");
        let p_in = g.probe(x);
        let p_out = g.probe(y);
        g.add_module(
            "src",
            SineSource::new(x.writer(), 100.0, 0.9, Some(SimTime::from_us(10))),
        );
        g.add_module("q", Quantizer::new(x.reader(), y.writer(), 8, 1.0));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(1000).unwrap();
        let lsb = 2.0 / 256.0;
        for (xi, yi) in p_in.values().iter().zip(p_out.values()) {
            assert!((xi - yi).abs() <= lsb / 2.0 + 1e-12);
        }
    }
}
