//! Data-converter behavioural models, including the pipelined ADC with
//! digital noise cancellation from seed work \[2\] (Bonnerud et al., CICC
//! 2001): "the digital noise cancellation technique, to allow an
//! efficient exploration of pipelined architectures at a more abstract
//! level, while achieving comparable accuracy to MATLAB".

use ams_core::{CoreError, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};

/// Ideal ADC: samples, quantizes to `bits` over ±`full_scale`, outputs
/// the integer code as `f64` (two's-complement value).
#[derive(Debug, Clone)]
pub struct IdealAdc {
    inp: TdfIn,
    out: TdfOut,
    bits: u32,
    full_scale: f64,
}

impl IdealAdc {
    /// Creates an ideal ADC.
    ///
    /// # Panics
    ///
    /// Panics for zero bits or non-positive full scale.
    pub fn new(inp: TdfIn, out: TdfOut, bits: u32, full_scale: f64) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        assert!(full_scale > 0.0, "full scale must be positive");
        IdealAdc {
            inp,
            out,
            bits,
            full_scale,
        }
    }

    /// Converts one voltage to a signed code.
    pub fn convert(&self, v: f64) -> i64 {
        let levels = 1i64 << self.bits;
        let lsb = 2.0 * self.full_scale / levels as f64;
        let code = (v / lsb).round() as i64;
        code.clamp(-(levels / 2), levels / 2 - 1)
    }
}

impl TdfModule for IdealAdc {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = io.read1(self.inp);
        io.write1(self.out, self.convert(v) as f64);
        Ok(())
    }
}

/// Ideal DAC: input codes (as `f64`) → output voltage.
#[derive(Debug, Clone)]
pub struct IdealDac {
    inp: TdfIn,
    out: TdfOut,
    bits: u32,
    full_scale: f64,
}

impl IdealDac {
    /// Creates an ideal DAC matching [`IdealAdc`]'s coding.
    ///
    /// # Panics
    ///
    /// Panics for zero bits or non-positive full scale.
    pub fn new(inp: TdfIn, out: TdfOut, bits: u32, full_scale: f64) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        assert!(full_scale > 0.0, "full scale must be positive");
        IdealDac {
            inp,
            out,
            bits,
            full_scale,
        }
    }
}

impl TdfModule for IdealDac {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let code = io.read1(self.inp);
        let lsb = 2.0 * self.full_scale / (1i64 << self.bits) as f64;
        io.write1(self.out, code * lsb);
        Ok(())
    }
}

/// Track-free sample & hold: decimates by `factor`, holding the first
/// sample of each block (models a slower ADC clock on a faster TDF rate).
#[derive(Debug, Clone)]
pub struct SampleHold {
    inp: TdfIn,
    out: TdfOut,
    factor: u64,
}

impl SampleHold {
    /// Creates a sample & hold consuming `factor` input samples per
    /// output sample.
    ///
    /// # Panics
    ///
    /// Panics on a zero factor.
    pub fn new(inp: TdfIn, out: TdfOut, factor: u64) -> Self {
        assert!(factor > 0, "sample-hold factor must be at least 1");
        SampleHold { inp, out, factor }
    }
}

impl TdfModule for SampleHold {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input_with(self.inp, self.factor, 0);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = io.read(self.inp, 0);
        io.write1(self.out, v);
        Ok(())
    }
}

/// Per-stage error parameters of the pipelined ADC.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageErrors {
    /// Comparator offset in volts (both comparators of the 1.5-bit
    /// stage).
    pub comparator_offset: f64,
    /// Relative inter-stage gain error (0.01 = +1 %).
    pub gain_error: f64,
    /// DAC reference error in volts.
    pub dac_offset: f64,
}

/// Behavioural pipelined ADC with 1.5-bit stages and digital error
/// correction (seed work \[2\]).
///
/// Each stage resolves {−1, 0, +1} with two comparators at ±Vref/4,
/// subtracts the stage DAC value and amplifies the residue by 2. The
/// digital backend recombines the redundant stage decisions, which is
/// what cancels comparator offsets up to ±Vref/4 — enabled or disabled
/// via [`PipelinedAdc::with_correction`] so the benefit is measurable
/// (experiment E7).
#[derive(Debug, Clone)]
pub struct PipelinedAdc {
    inp: TdfIn,
    out: TdfOut,
    stages: usize,
    vref: f64,
    errors: Vec<StageErrors>,
    correction: bool,
}

impl PipelinedAdc {
    /// Creates an N-stage pipelined ADC (resolution ≈ `stages` + 1 bits)
    /// with ideal stages and digital correction enabled.
    ///
    /// # Panics
    ///
    /// Panics for zero stages or a non-positive reference.
    pub fn new(inp: TdfIn, out: TdfOut, stages: usize, vref: f64) -> Self {
        assert!(stages >= 1, "need at least one stage");
        assert!(vref > 0.0, "reference must be positive");
        PipelinedAdc {
            inp,
            out,
            stages,
            vref,
            errors: vec![StageErrors::default(); stages],
            correction: true,
        }
    }

    /// Sets per-stage error parameters.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the stage count.
    pub fn with_errors(mut self, errors: &[StageErrors]) -> Self {
        assert_eq!(errors.len(), self.stages, "one error record per stage");
        self.errors = errors.to_vec();
        self
    }

    /// Enables/disables the digital correction backend.
    pub fn with_correction(mut self, on: bool) -> Self {
        self.correction = on;
        self
    }

    /// Converts one sample, returning the reconstructed analog value.
    ///
    /// With correction enabled, each stage is a redundant 1.5-bit stage
    /// (decisions in {−1, 0, +1} at ±Vref/4): comparator offsets up to
    /// ±Vref/4 leave the residue within range and cancel in the digital
    /// recombination. With correction disabled, each stage is a plain
    /// 1-bit stage (threshold at 0, no redundancy): the same comparator
    /// offsets drive the residue out of range and corrupt the result —
    /// exactly the architectural trade-off seed work \[2\] explores.
    pub fn convert(&self, v_in: f64) -> f64 {
        let vref = self.vref;
        let mut residue = v_in.clamp(-vref, vref);
        let mut acc = 0.0;
        for (i, e) in self.errors.iter().enumerate() {
            let d: i32 = if self.correction {
                // 1.5-bit sub-ADC: thresholds at ±Vref/4 (+ offset error).
                if residue > vref / 4.0 + e.comparator_offset {
                    1
                } else if residue < -vref / 4.0 + e.comparator_offset {
                    -1
                } else {
                    0
                }
            } else {
                // 1-bit sub-ADC: single threshold at 0 (+ offset error).
                if residue > e.comparator_offset {
                    1
                } else {
                    -1
                }
            };
            acc += d as f64 * vref / 2.0 / (1u64 << i) as f64;
            let dac = d as f64 * vref / 2.0 + e.dac_offset;
            let gain = 2.0 * (1.0 + e.gain_error);
            residue = gain * (residue - dac);
        }
        // The final residue is discarded (no backend flash), bounding the
        // ideal error at Vref/2^{stages+1} — i.e. stages+1 bits.
        acc
    }
}

impl TdfModule for PipelinedAdc {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = io.read1(self.inp);
        io.write1(self.out, self.convert(v));
        Ok(())
    }
}

/// The ideal-quantizer signal-to-noise ratio for a full-scale sine:
/// `6.02·bits + 1.76` dB (the reference line of experiment E7).
pub fn ideal_sine_snr_db(bits: u32) -> f64 {
    6.02 * bits as f64 + 1.76
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::TdfGraph;

    fn dummy_ports() -> (TdfIn, TdfOut) {
        let mut g = TdfGraph::new("d");
        let a = g.signal("a");
        let b = g.signal("b");
        (a.reader(), b.writer())
    }

    #[test]
    fn ideal_adc_codes() {
        let (i, o) = dummy_ports();
        let adc = IdealAdc::new(i, o, 8, 1.0);
        assert_eq!(adc.convert(0.0), 0);
        assert_eq!(adc.convert(1.0), 127); // clipped to FS − 1 LSB
        assert_eq!(adc.convert(-1.0), -128);
        let lsb = 2.0 / 256.0;
        assert_eq!(adc.convert(10.0 * lsb), 10);
    }

    #[test]
    fn adc_dac_roundtrip() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let code = g.signal("code");
        let y = g.signal("y");
        let p_in = g.probe(x);
        let p_out = g.probe(y);
        g.add_module(
            "src",
            crate::sources::SineSource::new(
                x.writer(),
                100.0,
                0.8,
                Some(ams_kernel::SimTime::from_us(10)),
            ),
        );
        g.add_module("adc", IdealAdc::new(x.reader(), code.writer(), 12, 1.0));
        g.add_module("dac", IdealDac::new(code.reader(), y.writer(), 12, 1.0));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(1000).unwrap();
        let lsb = 2.0 / 4096.0;
        for (a, b) in p_in.values().iter().zip(p_out.values()) {
            assert!((a - b).abs() <= lsb, "error {} > lsb", (a - b).abs());
        }
    }

    #[test]
    fn ideal_pipelined_adc_is_accurate() {
        let (i, o) = dummy_ports();
        let adc = PipelinedAdc::new(i, o, 10, 1.0);
        // ~11-bit accuracy: error below 1/2^10.
        for k in -50..=50 {
            let v = k as f64 / 51.0 * 0.99;
            let err = (adc.convert(v) - v).abs();
            assert!(err < 1.0 / 1024.0, "v={v}: err={err}");
        }
    }

    #[test]
    fn correction_cancels_comparator_offset() {
        let (i, o) = dummy_ports();
        let errors = vec![
            StageErrors {
                comparator_offset: 0.1, // large: Vref/10
                ..Default::default()
            };
            8
        ];
        let with = PipelinedAdc::new(i, o, 8, 1.0).with_errors(&errors);
        let (i2, o2) = dummy_ports();
        let without = PipelinedAdc::new(i2, o2, 8, 1.0)
            .with_errors(&errors)
            .with_correction(false);
        let mut err_with = 0.0f64;
        let mut err_without = 0.0f64;
        for k in -40..=40 {
            let v = k as f64 / 41.0 * 0.9;
            err_with = err_with.max((with.convert(v) - v).abs());
            err_without = err_without.max((without.convert(v) - v).abs());
        }
        assert!(
            err_with < 0.01,
            "corrected error should be small: {err_with}"
        );
        assert!(
            err_without > 5.0 * err_with,
            "correction should help: {err_without} vs {err_with}"
        );
    }

    #[test]
    fn gain_error_limits_accuracy_even_with_correction() {
        let (i, o) = dummy_ports();
        let errors = vec![
            StageErrors {
                gain_error: 0.02, // 2 % inter-stage gain error
                ..Default::default()
            };
            8
        ];
        let adc = PipelinedAdc::new(i, o, 8, 1.0).with_errors(&errors);
        let mut max_err = 0.0f64;
        for k in -40..=40 {
            let v = k as f64 / 41.0 * 0.9;
            max_err = max_err.max((adc.convert(v) - v).abs());
        }
        // Gain errors are NOT cancelled by redundancy: error well above
        // the ideal 9-bit level but bounded.
        assert!(max_err > 1.0 / 512.0, "gain error visible: {max_err}");
        assert!(max_err < 0.05);
    }

    #[test]
    fn sample_hold_decimates() {
        let mut g = TdfGraph::new("t");
        let x = g.signal("x");
        let y = g.signal("y");
        let probe = g.probe(y);
        struct Ramp {
            out: TdfOut,
            v: f64,
        }
        impl TdfModule for Ramp {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(ams_kernel::SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, self.v);
                self.v += 1.0;
                Ok(())
            }
        }
        g.add_module(
            "r",
            Ramp {
                out: x.writer(),
                v: 0.0,
            },
        );
        g.add_module("sh", SampleHold::new(x.reader(), y.writer(), 4));
        let mut c = g.elaborate().unwrap();
        c.run_standalone(3).unwrap();
        assert_eq!(probe.values(), vec![0.0, 4.0, 8.0]);
    }

    #[test]
    fn ideal_snr_formula() {
        assert!((ideal_sine_snr_db(8) - 49.92).abs() < 0.01);
        assert!((ideal_sine_snr_db(12) - 74.0).abs() < 0.1);
    }
}
