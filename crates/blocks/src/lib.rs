//! Mixed-signal module library for the SystemC-AMS reproduction.
//!
//! The paper's phased plan calls for an evolving module library: phase 1
//! "linear network elements … continuous behaviour encapsulated in static
//! dataflow modules", phase 2 "an enriched mixed-signal library with more
//! complex functional (signal-flow) models, e.g. amplifiers, converters",
//! phase 3 power-electronics and control blocks. This crate provides all
//! of them as [`ams_core::TdfModule`] implementations:
//!
//! * [`sources`] — DC, sine (with AC-stimulus designation), pulse, PRBS,
//!   seeded Gaussian noise;
//! * [`arith`] — gain, weighted sum, product, unit delay, integrator,
//!   decimator/upsampler;
//! * [`filters`] — continuous LTI filters (1st/2nd order, Butterworth)
//!   embedded per the phase-1 execution model, plus dataflow FIR filters
//!   with a windowed-sinc designer;
//! * [`nonlinear`] — saturating/tanh amplifiers, comparators with
//!   hysteresis, dead zone, quantizer;
//! * [`converters`] — ideal ADC/DAC, sample & hold, and the pipelined ADC
//!   with digital error correction of seed work \[2\];
//! * [`sigma_delta`] — 1st/2nd-order Σ∆ modulators and CIC decimation
//!   (Figure 1's Σ∆ prefi/pofi);
//! * [`rf`] — oscillators, VCO, mixer, Rapp power amplifier, AWGN
//!   channel, QPSK mapping and the theoretical BER reference (phase 2);
//! * [`power`] — PWM and dead-time gate drive (phase 3, seed work \[8\]);
//! * [`control`] — discrete PID with anti-windup (phase 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod control;
pub mod converters;
pub mod filters;
pub mod nonlinear;
pub mod power;
pub mod rf;
pub mod sigma_delta;
pub mod sources;

pub use arith::{Decimator, Gain, Integrator, Product, Sum, UnitDelay, Upsampler};
pub use control::Pid;
pub use converters::{
    ideal_sine_snr_db, IdealAdc, IdealDac, PipelinedAdc, SampleHold, StageErrors,
};
pub use filters::{FirFilter, LtiFilter};
pub use nonlinear::{Comparator, DeadZone, Quantizer, SaturatingAmp, TanhAmp};
pub use power::{GateDriver, PwmGenerator};
pub use rf::{
    erfc, qpsk_theoretical_ber, AwgnChannel, Mixer, Oscillator, PowerAmp, QpskDemapper, QpskMapper,
    Vco,
};
pub use sigma_delta::{CicDecimator, SigmaDelta1, SigmaDelta2};
pub use sources::{ConstSource, NoiseSource, PrbsSource, PulseSource, SineSource};
