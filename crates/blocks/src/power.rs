//! Power-electronics behavioural blocks (paper phase 3 and seed work \[8\],
//! Grimm et al., *AnalogSL: A Library for Modeling Analog Power Drivers in
//! C++*): PWM generation and gate-drive logic for switch-level power
//! stages built from `ams-net` switches.

use ams_core::{CoreError, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};

/// Natural-sampling PWM generator: compares the duty-cycle input
/// (0.0–1.0) against an internal sawtooth carrier and outputs 0.0/1.0.
#[derive(Debug, Clone)]
pub struct PwmGenerator {
    duty: TdfIn,
    out: TdfOut,
    carrier_hz: f64,
}

impl PwmGenerator {
    /// Creates a PWM generator with the given carrier frequency.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive carrier frequency.
    pub fn new(duty: TdfIn, out: TdfOut, carrier_hz: f64) -> Self {
        assert!(carrier_hz > 0.0, "carrier frequency must be positive");
        PwmGenerator {
            duty,
            out,
            carrier_hz,
        }
    }
}

impl TdfModule for PwmGenerator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.duty);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let duty = io.read1(self.duty).clamp(0.0, 1.0);
        let phase = (io.time() * self.carrier_hz).fract();
        io.write1(self.out, if phase < duty { 1.0 } else { 0.0 });
        Ok(())
    }
}

/// Complementary gate-drive splitter with dead time: turns one PWM input
/// into high-side/low-side commands that are never simultaneously high.
#[derive(Debug, Clone)]
pub struct GateDriver {
    pwm: TdfIn,
    high: TdfOut,
    low: TdfOut,
    dead_samples: u64,
    countdown: u64,
    last_pwm: bool,
}

impl GateDriver {
    /// Creates a gate driver inserting `dead_samples` samples of dead
    /// time after each transition.
    pub fn new(pwm: TdfIn, high: TdfOut, low: TdfOut, dead_samples: u64) -> Self {
        GateDriver {
            pwm,
            high,
            low,
            dead_samples,
            countdown: 0,
            last_pwm: false,
        }
    }
}

impl TdfModule for GateDriver {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.pwm);
        cfg.output(self.high);
        cfg.output(self.low);
    }
    fn reset(&mut self) {
        self.countdown = 0;
        self.last_pwm = false;
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let pwm = io.read1(self.pwm) >= 0.5;
        if pwm != self.last_pwm {
            self.countdown = self.dead_samples;
            self.last_pwm = pwm;
        }
        let (h, l) = if self.countdown > 0 {
            self.countdown -= 1;
            (0.0, 0.0) // dead time: both off
        } else if pwm {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        };
        io.write1(self.high, h);
        io.write1(self.low, l);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::ConstSource;
    use ams_core::TdfGraph;
    use ams_kernel::SimTime;

    #[test]
    fn pwm_duty_cycle_matches_command() {
        let mut g = TdfGraph::new("pwm");
        let duty = g.signal("duty");
        let out = g.signal("pwm");
        let probe = g.probe(out);
        // 10 kHz carrier sampled at 1 MHz: 100 samples per period.
        g.add_module(
            "d",
            ConstSource::new(duty.writer(), 0.3, Some(SimTime::from_us(1))),
        );
        g.add_module(
            "pwm",
            PwmGenerator::new(duty.reader(), out.writer(), 10_000.0),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(10_000).unwrap(); // 100 carrier periods
        let v = probe.values();
        let high = v.iter().filter(|&&x| x == 1.0).count();
        let ratio = high as f64 / v.len() as f64;
        assert!((ratio - 0.3).abs() < 0.01, "duty {ratio}");
        assert!(v.iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn pwm_zero_and_full_duty() {
        for (cmd, expect) in [(0.0, 0.0), (1.0, 1.0)] {
            let mut g = TdfGraph::new("pwm");
            let duty = g.signal("duty");
            let out = g.signal("pwm");
            let probe = g.probe(out);
            g.add_module(
                "d",
                ConstSource::new(duty.writer(), cmd, Some(SimTime::from_us(1))),
            );
            g.add_module(
                "pwm",
                PwmGenerator::new(duty.reader(), out.writer(), 10_000.0),
            );
            let mut c = g.elaborate().unwrap();
            c.run_standalone(500).unwrap();
            assert!(probe.values().iter().all(|&x| x == expect));
        }
    }

    #[test]
    fn gate_driver_never_shoot_through() {
        let mut g = TdfGraph::new("gd");
        let duty = g.signal("duty");
        let pwm = g.signal("pwm");
        let hi = g.signal("hi");
        let lo = g.signal("lo");
        let p_hi = g.probe(hi);
        let p_lo = g.probe(lo);
        g.add_module(
            "d",
            ConstSource::new(duty.writer(), 0.5, Some(SimTime::from_us(1))),
        );
        g.add_module(
            "pwm",
            PwmGenerator::new(duty.reader(), pwm.writer(), 50_000.0),
        );
        g.add_module(
            "gd",
            GateDriver::new(pwm.reader(), hi.writer(), lo.writer(), 2),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(2000).unwrap();
        let hi_v = p_hi.values();
        let lo_v = p_lo.values();
        // Never both on.
        assert!(hi_v.iter().zip(&lo_v).all(|(h, l)| h + l <= 1.0));
        // Dead time present: some samples with both off.
        let dead = hi_v
            .iter()
            .zip(&lo_v)
            .filter(|(h, l)| **h == 0.0 && **l == 0.0)
            .count();
        assert!(dead > 0, "dead time samples expected");
        // Both sides actually switch.
        assert!(hi_v.contains(&1.0));
        assert!(lo_v.contains(&1.0));
    }
}
