//! The parallel engine applies the same pre-elaboration lint gate as
//! the serial simulator: broken graphs are rejected before any worker
//! thread spawns, and the diagnostic counts surface in [`ExecStats`].

use ams_core::{CoreError, TdfGraph, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};
use ams_exec::ParallelSim;
use ams_kernel::SimTime;
use ams_lint::codes;

struct Rates {
    inputs: Vec<(TdfIn, u64, u64)>,
    outputs: Vec<(TdfOut, u64)>,
    ts: Option<SimTime>,
}

impl TdfModule for Rates {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        for &(p, rate, delay) in &self.inputs {
            cfg.input_with(p, rate, delay);
        }
        for &(p, rate) in &self.outputs {
            cfg.output_with(p, rate);
        }
        if let Some(ts) = self.ts {
            cfg.set_timestep(ts);
        }
    }

    fn processing(&mut self, _io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        Ok(())
    }
}

#[test]
fn parallel_sim_rejects_inconsistent_graph_before_spawning_workers() {
    let mut g = TdfGraph::new("bad_rates");
    let fwd = g.signal("fwd");
    let back = g.signal("back");
    g.add_module(
        "a",
        Rates {
            inputs: vec![(back.reader(), 1, 1)],
            outputs: vec![(fwd.writer(), 2)],
            ts: Some(SimTime::from_us(1)),
        },
    );
    g.add_module(
        "b",
        Rates {
            inputs: vec![(fwd.reader(), 1, 0)],
            outputs: vec![(back.writer(), 1)],
            ts: None,
        },
    );

    let mut sim = ParallelSim::new(2);
    sim.add_graph(g);
    let err = sim.elaborate().expect_err("inconsistent rates");
    assert_eq!(err.code(), Some(codes::TDF001), "{err}");
    assert!(matches!(err, CoreError::Lint(_)));

    // No worker pool exists and the counts made it into the stats.
    assert!(sim.partition().is_none());
    assert_eq!(sim.lint_reports().len(), 1);
    let stats = sim.stats();
    assert!(stats.lint_errors >= 1);
}

#[test]
fn parallel_sim_runs_clean_graph_and_reports_zero_lint_counts() {
    struct Src {
        out: TdfOut,
    }
    impl TdfModule for Src {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.output(self.out);
            cfg.set_timestep(SimTime::from_us(1));
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            io.write1(self.out, 1.0);
            Ok(())
        }
    }

    let mut g = TdfGraph::new("clean");
    let s = g.signal("s");
    let probe = g.probe(s);
    g.add_module("src", Src { out: s.writer() });

    let mut sim = ParallelSim::new(2);
    sim.add_graph(g);
    sim.run_until(SimTime::from_us(3)).unwrap();
    let stats = sim.stats();
    assert_eq!(stats.lint_errors, 0);
    assert_eq!(stats.lint_warnings, 0);
    assert_eq!(sim.lint_reports().len(), 1);
    assert!(sim.lint_reports()[0].is_clean());
    assert!(!probe.values().is_empty());
}
