//! Exhaustive-interleaving checks of the SPSC sample ring.
//!
//! Run with `cargo test -p ams-exec --features loom`. The `loom`
//! feature rebuilds the ring on model-checked atomics; every test body
//! below is executed once per distinct thread schedule (exhaustive up
//! to the preemption bound), so the FIFO and occupancy invariants are
//! verified across *all* producer/consumer interleavings, not just the
//! ones a stress test happens to hit.

#![cfg(feature = "loom")]

use ams_exec::spsc::ring;
use ams_kernel::SimTime;

/// Producer pushes a fixed sequence while the consumer concurrently
/// pops: every popped sample must appear in order, and whatever remains
/// in the ring afterwards must be the exact tail of the sequence.
///
/// The ring has room for the whole sequence, so no retry loop is needed
/// — model bodies must avoid unbounded spin loops (a schedule where the
/// partner thread is already blocked in `join` would spin forever).
#[test]
fn concurrent_push_pop_preserves_fifo() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let schedules = Arc::new(AtomicUsize::new(0));
    let counter = schedules.clone();
    loom::model(move || {
        counter.fetch_add(1, Ordering::Relaxed);
        let (mut tx, mut rx) = ring(2);
        let producer = loom::thread::spawn(move || {
            for i in 0..2u64 {
                tx.try_push(SimTime::from_fs(i), i as f64)
                    .expect("ring sized for the whole sequence");
            }
        });
        let mut next = 0u64;
        // Pop opportunistically while the producer runs…
        for _ in 0..2 {
            if let Some((t, v)) = rx.try_pop() {
                assert_eq!(t, SimTime::from_fs(next), "timestamp out of order");
                assert_eq!(v, next as f64, "value out of order");
                next += 1;
            }
        }
        producer.join().expect("producer panicked");
        // …then drain the remainder: nothing lost, nothing duplicated.
        while let Some((t, v)) = rx.try_pop() {
            assert_eq!(t, SimTime::from_fs(next));
            assert_eq!(v, next as f64);
            next += 1;
        }
        assert_eq!(next, 2, "samples were lost");
        assert!(rx.is_empty());
    });
    // The explorer must have exercised genuinely different schedules —
    // with ~20 interleavable atomic accesses and a preemption bound of
    // 3 there are hundreds, and a regression to single-schedule
    // execution would make this whole file a no-op.
    assert!(
        schedules.load(Ordering::Relaxed) >= 100,
        "only {} schedules explored",
        schedules.load(Ordering::Relaxed)
    );
}

/// The full/empty detection must never tear: a push that succeeds with
/// a concurrent pop in flight may observe occupancy 0..=capacity, but
/// never corrupt a slot that the consumer is still reading.
#[test]
fn full_ring_backpressure_is_safe() {
    loom::model(|| {
        let (mut tx, mut rx) = ring(2);
        // Pre-fill to capacity so the producer races the consumer for
        // the slot being freed.
        tx.try_push(SimTime::from_fs(0), 0.0).unwrap();
        tx.try_push(SimTime::from_fs(1), 1.0).unwrap();
        let consumer = loom::thread::spawn(move || {
            let first = rx.try_pop().expect("ring was pre-filled");
            assert_eq!(first, (SimTime::from_fs(0), 0.0));
            rx
        });
        // Either outcome is legal depending on the schedule; a success
        // must have seen the consumer's release of slot 0.
        let pushed = tx.try_push(SimTime::from_fs(2), 2.0).is_ok();
        let mut rx = consumer.join().expect("consumer panicked");
        let second = rx.try_pop().expect("second sample present");
        assert_eq!(second, (SimTime::from_fs(1), 1.0));
        if pushed {
            assert_eq!(rx.try_pop(), Some((SimTime::from_fs(2), 2.0)));
        }
        assert!(rx.try_pop().is_none());
    });
}

/// Occupancy reads (`len`) are racy by design but must stay within
/// [0, capacity] under every interleaving — no wrap-around underflow.
#[test]
fn occupancy_never_underflows() {
    loom::model(|| {
        let (mut tx, mut rx) = ring(2);
        tx.try_push(SimTime::from_fs(0), 0.5).unwrap();
        let monitor = tx.monitor();
        let producer = loom::thread::spawn(move || {
            let _ = tx.try_push(SimTime::from_fs(1), 1.5);
            tx.len()
        });
        let _ = rx.try_pop();
        let seen = monitor.len();
        assert!(seen <= 2, "monitor observed occupancy {seen} > capacity");
        let plen = producer.join().expect("producer panicked");
        assert!(plen <= 2, "producer observed occupancy {plen} > capacity");
    });
}
