//! Exhaustive-interleaving checks of the worker-slot semaphore.
//!
//! Run with `cargo test -p ams-exec --features loom`. The `loom`
//! feature rebuilds [`ams_exec::SlotPool`] on model-checked mutex and
//! condvar primitives; every test body below runs once per distinct
//! thread schedule (exhaustive up to the preemption bound), so mutual
//! exclusion, blocking hand-off and lease return are verified across
//! *all* interleavings, not just the ones a stress test happens to hit.

#![cfg(feature = "loom")]

use ams_exec::SlotPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A pool of one slot is a mutex: two threads that `acquire` around a
/// critical section may never overlap inside it, under any schedule,
/// and both leases must come back.
#[test]
fn single_slot_pool_is_mutually_exclusive() {
    let schedules = Arc::new(AtomicUsize::new(0));
    let counter = schedules.clone();
    loom::model(move || {
        counter.fetch_add(1, Ordering::Relaxed);
        let pool = SlotPool::new(1);
        let busy = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let pool = pool.clone();
            let busy = busy.clone();
            handles.push(loom::thread::spawn(move || {
                let lease = pool.acquire(1);
                // Entering the critical section: nobody else may be in.
                assert_eq!(busy.fetch_add(1, Ordering::SeqCst), 0, "overlap");
                busy.fetch_sub(1, Ordering::SeqCst);
                drop(lease);
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert_eq!(pool.available(), 1, "lease not returned");
    });
    // The explorer must have exercised genuinely different schedules —
    // a regression to single-schedule execution would make this whole
    // file a no-op. (The exhaustive count at preemption bound 3 is 30;
    // assert a floor well above one but below the exact count so the
    // test is not brittle against scheduler refinements.)
    assert!(
        schedules.load(Ordering::Relaxed) >= 20,
        "only {} schedules explored",
        schedules.load(Ordering::Relaxed)
    );
}

/// Two non-blocking attempts racing for one slot: they can serialize
/// (both win in turn) or collide (one loses), but they can never both
/// lose, and the slot always comes back.
#[test]
fn try_acquire_race_never_loses_the_slot() {
    let outcomes = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
    let o2 = outcomes.clone();
    loom::model(move || {
        let pool = SlotPool::new(1);
        let p2 = pool.clone();
        let contender = loom::thread::spawn(move || {
            // Lease dropped inside the closure if the attempt wins.
            p2.try_acquire(1).map(|l| l.count())
        });
        let mine = pool.try_acquire(1);
        let theirs = contender.join().expect("contender panicked");
        assert!(
            mine.is_some() || theirs.is_some(),
            "both non-blocking attempts failed on a 1-slot pool"
        );
        o2[usize::from(theirs.is_some())].fetch_add(1, Ordering::Relaxed);
        drop(mine);
        assert_eq!(pool.available(), 1, "slot lost after the race");
    });
    // Both outcomes must be reachable: schedules where the contender
    // loses to the held lease, and schedules where it wins.
    assert!(outcomes[0].load(Ordering::Relaxed) > 0, "never saw a loss");
    assert!(outcomes[1].load(Ordering::Relaxed) > 0, "never saw a win");
}

/// A blocked `acquire` must be woken by the lease drop in every
/// schedule — a lost wakeup would surface as the model's deadlock
/// panic — and the pool must end full.
#[test]
fn blocked_acquire_is_always_woken_by_release() {
    loom::model(|| {
        let pool = SlotPool::new(2);
        let lease = pool.try_acquire(2).expect("pool starts full");
        let p2 = pool.clone();
        let contender = loom::thread::spawn(move || p2.acquire(2).count());
        // The contender parks until this lease returns; dropping it is
        // the only wakeup there will ever be.
        drop(lease);
        assert_eq!(contender.join().expect("contender panicked"), 2);
        assert_eq!(pool.available(), 2);
    });
}
