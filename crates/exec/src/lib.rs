//! Parallel, instrumented execution engine for SystemC-AMS models.
//!
//! The DATE 2003 paper motivates SystemC-AMS with simulation speed:
//! dataflow clusters are statically scheduled precisely so that their
//! execution "can be implemented very efficiently" and synchronized with
//! the discrete-event kernel only at cluster-period boundaries. This
//! crate takes that loose coupling to its logical conclusion and runs
//! the clusters **concurrently**:
//!
//! * [`partition`] — deterministic static partitioning: connected
//!   components of the cluster/actor coupling graph, packed onto workers
//!   by a longest-processing-time heuristic over the balance-equation
//!   cost model;
//! * [`spsc`] — wait-free single-producer/single-consumer sample rings,
//!   the transport for converter streams that cross an execution
//!   boundary;
//! * [`pool`] — persistent worker threads owning their partitions, with
//!   a barrier at every DE synchronization point, plus
//!   [`run_sdf_parallel`] for plain SDF workloads;
//! * [`stats`] — the instrumentation layer: [`ExecStats`] aggregates
//!   cluster firings, embedded-solver Newton/factorization counts, FIFO
//!   high-water marks and per-phase wall time; [`ExecHook`] observes the
//!   run window by window;
//! * [`slots`] — a [`SlotPool`] counting semaphore over the worker
//!   budget, letting admission schedulers (e.g. `ams-serve`) lease
//!   cores to concurrent jobs without oversubscription;
//! * [`ParallelSim`] — the façade tying it together, a drop-in analogue
//!   of `ams_core::AmsSimulator` with bit-identical observable results.
//!
//! # Example
//!
//! ```
//! use ams_core::{TdfGraph, TdfModule, TdfSetup, TdfIo, CoreError};
//! use ams_exec::ParallelSim;
//! use ams_kernel::SimTime;
//!
//! struct Osc { out: ams_core::TdfOut, k: u64 }
//! impl TdfModule for Osc {
//!     fn setup(&mut self, cfg: &mut TdfSetup) {
//!         cfg.output(self.out);
//!         cfg.set_timestep(SimTime::from_us(1));
//!     }
//!     fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
//!         io.write1(self.out, (self.k as f64 * 0.1).sin());
//!         self.k += 1;
//!         Ok(())
//!     }
//!     fn reset(&mut self) { self.k = 0; }
//! }
//!
//! # fn main() -> Result<(), CoreError> {
//! let mut sim = ParallelSim::new(4);
//! let mut probes = Vec::new();
//! for i in 0..4 {
//!     let mut g = TdfGraph::new(format!("osc{i}"));
//!     let s = g.signal("y");
//!     probes.push(g.probe(s));
//!     g.add_module("osc", Osc { out: s.writer(), k: 0 });
//!     sim.add_graph(g);
//! }
//! sim.run_until(SimTime::from_ms(1))?;
//! assert_eq!(probes[0].len(), 1001); // horizon-inclusive, like the serial kernel
//! let stats = sim.stats();
//! assert_eq!(stats.totals().iterations, 4004);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod pool;
pub mod sim;
pub mod slots;
pub mod spsc;
pub mod stats;

pub use partition::{partition, Partition};
pub use pool::{run_sdf_parallel, WorkerPool};
pub use sim::{ParallelSim, DEFAULT_PIPE_CAPACITY};
pub use slots::{SlotLease, SlotPool};
pub use spsc::{ring, RingConsumer, RingMonitor, RingProducer};
pub use stats::{CountingHook, ExecHook, ExecStats};
