//! Worker-slot accounting for schedulers layered over the pool.
//!
//! A [`SlotPool`] is a counting semaphore over the machine's worker
//! budget: an admission scheduler (such as `ams-serve`'s) leases `n`
//! slots before handing a job that many threads, and the lease returns
//! the slots when dropped — even on a panic inside the job. The pool
//! does not own any threads itself; it only keeps concurrent jobs from
//! oversubscribing the cores the `ams-exec` workers run on.

// Under the `loom` feature the pool is rebuilt on model-checked
// primitives so `tests/loom_slots.rs` can explore its interleavings.
#[cfg(feature = "loom")]
use loom::sync::{Arc, Condvar, Mutex};
#[cfg(not(feature = "loom"))]
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug)]
struct Inner {
    total: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

/// A counting semaphore over a fixed number of worker slots.
#[derive(Debug, Clone)]
pub struct SlotPool {
    inner: Arc<Inner>,
}

impl SlotPool {
    /// A pool of `total` slots (at least 1).
    pub fn new(total: usize) -> SlotPool {
        let total = total.max(1);
        SlotPool {
            inner: Arc::new(Inner {
                total,
                available: Mutex::new(total),
                freed: Condvar::new(),
            }),
        }
    }

    /// The pool's capacity.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Slots currently free (advisory: may change before you act on it).
    pub fn available(&self) -> usize {
        *self.inner.available.lock().expect("slot pool poisoned")
    }

    /// Leases `n` slots if they are free right now, without blocking.
    /// `n` is clamped to the pool's capacity (a request larger than the
    /// machine could never be granted) and raised to at least 1.
    pub fn try_acquire(&self, n: usize) -> Option<SlotLease> {
        let n = n.clamp(1, self.inner.total);
        let mut free = self.inner.available.lock().expect("slot pool poisoned");
        if *free >= n {
            *free -= n;
            Some(SlotLease {
                inner: self.inner.clone(),
                n,
            })
        } else {
            None
        }
    }

    /// Leases `n` slots, blocking until they are free. Same clamping as
    /// [`SlotPool::try_acquire`].
    pub fn acquire(&self, n: usize) -> SlotLease {
        let n = n.clamp(1, self.inner.total);
        let mut free = self.inner.available.lock().expect("slot pool poisoned");
        while *free < n {
            free = self.inner.freed.wait(free).expect("slot pool poisoned");
        }
        *free -= n;
        SlotLease {
            inner: self.inner.clone(),
            n,
        }
    }
}

/// An RAII lease of worker slots; dropping it returns them to the pool
/// and wakes blocked acquirers.
#[derive(Debug)]
pub struct SlotLease {
    inner: Arc<Inner>,
    n: usize,
}

impl SlotLease {
    /// Number of slots held.
    pub fn count(&self) -> usize {
        self.n
    }
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        let mut free = self.inner.available.lock().expect("slot pool poisoned");
        *free += self.n;
        self.inner.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_subtract_and_drop_returns() {
        let pool = SlotPool::new(4);
        assert_eq!(pool.total(), 4);
        let a = pool.try_acquire(3).expect("3 of 4 free");
        assert_eq!(a.count(), 3);
        assert_eq!(pool.available(), 1);
        assert!(pool.try_acquire(2).is_none());
        let b = pool.try_acquire(1).expect("last slot");
        assert_eq!(pool.available(), 0);
        drop(a);
        assert_eq!(pool.available(), 3);
        drop(b);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn requests_are_clamped_to_capacity() {
        let pool = SlotPool::new(2);
        // An oversize request is clamped, not deadlocked.
        let lease = pool.try_acquire(100).expect("clamped to 2");
        assert_eq!(lease.count(), 2);
        // Zero is raised to one.
        drop(lease);
        assert_eq!(pool.try_acquire(0).expect("one slot").count(), 1);
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let pool = SlotPool::new(2);
        let lease = pool.try_acquire(2).unwrap();
        let contender = {
            let pool = pool.clone();
            std::thread::spawn(move || pool.acquire(2).count())
        };
        // The contender is parked until the lease returns.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(lease);
        assert_eq!(contender.join().unwrap(), 2);
        // The contender's own lease dropped inside its closure.
        assert_eq!(pool.available(), 2);
    }
}
