//! Persistent worker threads running partitions of the model.
//!
//! Each worker owns the clusters of its partition outright (clusters are
//! `Send` by construction — modules and solvers are `Send` traits) and
//! executes them in registration order inside every synchronization
//! window. The coordinator broadcasts one command per window and the
//! reply stream doubles as the barrier: a window is over exactly when
//! every worker has answered.

use ams_core::{Cluster, ClusterStats, CoreError};
use ams_kernel::SimTime;
use ams_scope::TraceEvent;
use ams_sdf::{SdfError, SdfExecutor};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Per-cluster trace tracks: `(registration index, sources)` where each
/// source is a `(name, events)` track (see [`Cluster::take_traces`]).
pub type ClusterTraces = Vec<(usize, Vec<(String, Vec<TraceEvent>)>)>;

enum Cmd {
    /// Run every activation with start time strictly before `until`.
    Run {
        until: SimTime,
    },
    /// Rewind every cluster to `t = 0` (see [`Cluster::reset`]).
    Reset,
    /// Report per-cluster statistics.
    Collect,
    /// Enable or disable span tracing on every owned cluster.
    SetTracing(bool),
    /// Drain per-cluster trace buffers.
    CollectTraces,
    Shutdown,
}

enum Reply {
    Done {
        result: Result<(), CoreError>,
    },
    Stats {
        /// `(registration index, name, counters)` per owned cluster.
        clusters: Vec<(usize, String, ClusterStats)>,
    },
    Traces {
        /// `(registration index, sources)` per owned cluster; each
        /// source is a `(name, events)` track (see
        /// [`Cluster::take_traces`]).
        clusters: ClusterTraces,
    },
}

/// A pool of persistent worker threads, each owning one partition of the
/// model's clusters.
pub struct WorkerPool {
    commands: Vec<Sender<Cmd>>,
    replies: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns one worker per non-empty group and moves the clusters in.
    /// Each cluster arrives as `(registration_index, cluster)` so the
    /// coordinator can reassemble global statistics later.
    pub fn spawn(groups: Vec<Vec<(usize, Cluster)>>) -> WorkerPool {
        let (reply_tx, replies) = channel();
        let mut commands = Vec::new();
        let mut handles = Vec::new();
        for (w, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let (cmd_tx, cmd_rx) = channel::<Cmd>();
            let tx = reply_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ams-exec-worker-{w}"))
                .spawn(move || worker_main(group, cmd_rx, tx))
                .expect("spawning a worker thread");
            commands.push(cmd_tx);
            handles.push(handle);
        }
        WorkerPool {
            commands,
            replies,
            handles,
        }
    }

    /// Number of live workers.
    pub fn workers(&self) -> usize {
        self.commands.len()
    }

    /// Runs one synchronization window on all workers and waits at the
    /// barrier. Every cluster executes its activations with start time in
    /// `[current, until)`.
    ///
    /// # Errors
    ///
    /// The first cluster failure from any worker.
    pub fn run_window(&mut self, until: SimTime) -> Result<(), CoreError> {
        for tx in &self.commands {
            tx.send(Cmd::Run { until }).expect("worker alive");
        }
        self.barrier()
    }

    /// Rewinds every cluster to `t = 0` on its worker.
    ///
    /// # Errors
    ///
    /// Propagates reset-time failures (none today, reserved).
    pub fn reset(&mut self) -> Result<(), CoreError> {
        for tx in &self.commands {
            tx.send(Cmd::Reset).expect("worker alive");
        }
        self.barrier()
    }

    /// Collects `(registration_index, name, stats)` for every cluster.
    pub fn collect_stats(&mut self) -> Vec<(usize, String, ClusterStats)> {
        for tx in &self.commands {
            tx.send(Cmd::Collect).expect("worker alive");
        }
        let mut all = Vec::new();
        for _ in 0..self.commands.len() {
            match self.replies.recv().expect("worker alive") {
                Reply::Stats { clusters } => all.extend(clusters),
                _ => unreachable!("stats query answered with another reply"),
            }
        }
        all.sort_by_key(|&(idx, _, _)| idx);
        all
    }

    /// Enables or disables span tracing on every cluster of every
    /// worker.
    ///
    /// # Errors
    ///
    /// Propagates worker failures (none today, reserved).
    pub fn set_tracing(&mut self, enabled: bool) -> Result<(), CoreError> {
        for tx in &self.commands {
            tx.send(Cmd::SetTracing(enabled)).expect("worker alive");
        }
        self.barrier()
    }

    /// Drains every cluster's trace buffers:
    /// `(registration_index, sources)` in registration order, each
    /// source a `(name, events)` track.
    pub fn collect_traces(&mut self) -> ClusterTraces {
        for tx in &self.commands {
            tx.send(Cmd::CollectTraces).expect("worker alive");
        }
        let mut all = Vec::new();
        for _ in 0..self.commands.len() {
            match self.replies.recv().expect("worker alive") {
                Reply::Traces { clusters } => all.extend(clusters),
                _ => unreachable!("trace query answered with another reply"),
            }
        }
        all.sort_by_key(|&(idx, _)| idx);
        all
    }

    fn barrier(&mut self) -> Result<(), CoreError> {
        let mut first_err = None;
        for _ in 0..self.commands.len() {
            match self.replies.recv().expect("worker alive") {
                Reply::Done { result } => {
                    if let (Err(e), None) = (result, &first_err) {
                        first_err = Some(e);
                    }
                }
                _ => unreachable!("run answered with another reply"),
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.commands {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(
    mut clusters: Vec<(usize, Cluster)>,
    commands: Receiver<Cmd>,
    replies: Sender<Reply>,
) {
    while let Ok(cmd) = commands.recv() {
        match cmd {
            Cmd::Run { until } => {
                let mut result = Ok(());
                'run: for (_, c) in &mut clusters {
                    let period = c.period();
                    loop {
                        let start = period * c.iterations();
                        if start >= until {
                            break;
                        }
                        if let Err(e) = c.run_iteration(start) {
                            result = Err(e);
                            break 'run;
                        }
                    }
                }
                if replies.send(Reply::Done { result }).is_err() {
                    return;
                }
            }
            Cmd::Reset => {
                for (_, c) in &mut clusters {
                    c.reset();
                }
                if replies.send(Reply::Done { result: Ok(()) }).is_err() {
                    return;
                }
            }
            Cmd::Collect => {
                let stats = clusters
                    .iter()
                    .map(|(idx, c)| (*idx, c.name().to_string(), c.stats()))
                    .collect();
                if replies.send(Reply::Stats { clusters: stats }).is_err() {
                    return;
                }
            }
            Cmd::SetTracing(enabled) => {
                for (_, c) in &mut clusters {
                    c.set_tracing(enabled);
                }
                if replies.send(Reply::Done { result: Ok(()) }).is_err() {
                    return;
                }
            }
            Cmd::CollectTraces => {
                let traces = clusters
                    .iter_mut()
                    .map(|(idx, c)| (*idx, c.take_traces()))
                    .collect();
                if replies.send(Reply::Traces { clusters: traces }).is_err() {
                    return;
                }
            }
            Cmd::Shutdown => return,
        }
    }
}

/// Runs independent SDF executors for `iterations` schedule iterations
/// each, spread over `workers` threads with the same deterministic
/// LPT partitioning as the cluster engine (cost =
/// [`SdfExecutor::iteration_cost`]). The executors come back in their
/// original order, counters advanced, ready for [`SdfExecutor::stats`]
/// queries or further runs.
///
/// # Errors
///
/// The first executor failure encountered.
pub fn run_sdf_parallel<T>(
    mut executors: Vec<SdfExecutor<T>>,
    iterations: u64,
    workers: usize,
) -> Result<Vec<SdfExecutor<T>>, SdfError>
where
    T: Clone + Default + Send + 'static,
{
    let costs: Vec<u64> = executors.iter().map(|e| e.iteration_cost()).collect();
    let part = crate::partition::partition(&costs, &[], workers);

    // Move each executor into its worker's slot list, remembering where
    // it came from.
    let mut slots: Vec<Vec<(usize, SdfExecutor<T>)>> =
        (0..part.loads.len()).map(|_| Vec::new()).collect();
    for (idx, exec) in executors.drain(..).enumerate().rev() {
        slots[part.assignment[idx]].push((idx, exec));
    }

    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .into_iter()
            .filter(|g| !g.is_empty())
            .map(|mut group| {
                scope.spawn(move || {
                    for (_, e) in &mut group {
                        e.run_iterations(iterations)?;
                    }
                    Ok::<_, SdfError>(group)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sdf worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut out: Vec<Option<SdfExecutor<T>>> = (0..costs.len()).map(|_| None).collect();
    for r in results {
        for (idx, e) in r? {
            out[idx] = Some(e);
        }
    }
    Ok(out
        .into_iter()
        .map(|e| e.expect("every executor returned"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CountingHook;
    use crate::ParallelSim;
    use ams_core::{CoreError, TdfGraph, TdfIo, TdfModule, TdfOut, TdfSetup};
    use ams_sdf::SdfGraph;
    use std::sync::{Arc, Mutex};

    /// A one-module free-running graph (no DE bindings).
    fn src_graph(name: &str) -> TdfGraph {
        struct Src {
            out: TdfOut,
        }
        impl TdfModule for Src {
            fn setup(&mut self, cfg: &mut TdfSetup) {
                cfg.output(self.out);
                cfg.set_timestep(SimTime::from_us(1));
            }
            fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
                io.write1(self.out, 1.0);
                Ok(())
            }
        }
        let mut g = TdfGraph::new(name);
        let s = g.signal("s");
        g.add_module("src", Src { out: s.writer() });
        g
    }

    #[test]
    fn finish_hook_fires_exactly_once_per_run() {
        let hook = Arc::new(Mutex::new(CountingHook::default()));
        let mut sim = ParallelSim::new(2);
        sim.set_hook(hook.clone());
        sim.add_graph(src_graph("a"));
        sim.run_until(SimTime::from_us(3)).unwrap();
        // Repeated stats queries must not re-fire on_finish.
        let _ = sim.stats();
        let _ = sim.stats();
        let _ = sim.stats();
        {
            let h = hook.lock().unwrap();
            assert_eq!(h.finishes, 1);
            assert!(h.windows >= 1);
            assert_eq!(h.windows, h.barriers);
        }
        // A reset re-arms the finish notification for the next run.
        sim.reset().unwrap();
        sim.run_until(SimTime::from_us(3)).unwrap();
        let _ = sim.stats();
        let _ = sim.stats();
        assert_eq!(hook.lock().unwrap().finishes, 2);
    }

    #[test]
    fn tracing_attributes_cluster_tracks_to_workers() {
        use ams_scope::SpanKind;
        let mut sim = ParallelSim::new(2);
        sim.set_tracing(true).unwrap();
        sim.add_graph(src_graph("a"));
        sim.add_graph(src_graph("b"));
        sim.run_until(SimTime::from_us(3)).unwrap();
        let trace = sim.take_trace();

        // The coordinator's exec track carries window + barrier spans.
        let exec = trace
            .tracks
            .iter()
            .find(|t| t.process == "coordinator" && t.thread == "exec")
            .expect("coordinator/exec track present");
        assert!(exec.events.iter().any(|e| e.kind == SpanKind::DeWindow));
        assert!(exec.events.iter().any(|e| e.kind == SpanKind::BarrierWait));

        // Every cluster track lands on the worker process the partition
        // assigned it to.
        let assignment = sim.partition().expect("elaborated").assignment.clone();
        for (idx, name) in ["a", "b"].iter().enumerate() {
            let t = trace
                .tracks
                .iter()
                .find(|t| t.thread == *name)
                .unwrap_or_else(|| panic!("track for cluster {name}"));
            assert_eq!(t.process, format!("worker-{}", assignment[idx]));
            assert!(t
                .events
                .iter()
                .any(|e| e.kind == SpanKind::ClusterIteration));
        }

        // Buffers drain on take: a second take is empty.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn sdf_partitions_run_in_parallel() {
        // Four independent two-actor pipelines, each counting firings
        // into a shared tally.
        use std::sync::{Arc, Mutex};
        let tallies: Vec<Arc<Mutex<i64>>> = (0..4).map(|_| Arc::new(Mutex::new(0))).collect();
        let mut execs = Vec::new();
        for tally in &tallies {
            let mut g = SdfGraph::new();
            let a = g.add_actor("src");
            let b = g.add_actor("sink");
            g.connect(a, 1, b, 1, 0).unwrap();
            let sched = ams_sdf::schedule(&g).unwrap();
            let mut ex = SdfExecutor::<i64>::new(&g, sched).unwrap();
            ex.set_actor(a, |io: &mut ams_sdf::ActorIo<'_, i64>| {
                io.push(0, 1);
            });
            let t = tally.clone();
            ex.set_actor(b, move |io: &mut ams_sdf::ActorIo<'_, i64>| {
                *t.lock().unwrap() += io.input_one(0);
            });
            execs.push(ex);
        }
        let execs = run_sdf_parallel(execs, 100, 4).unwrap();
        for tally in &tallies {
            assert_eq!(*tally.lock().unwrap(), 100);
        }
        for e in &execs {
            assert_eq!(e.stats().iterations, 100);
            assert_eq!(e.stats().firings, 200);
        }
    }
}
