//! Execution statistics and instrumentation hooks.
//!
//! Profiling a mixed-signal simulation means knowing where the time
//! goes: dataflow firings, Newton iterations and matrix factorizations
//! inside embedded solvers, FIFO pressure on converter streams, and the
//! synchronization overhead of meeting the DE kernel at every cluster
//! period. [`ExecStats`] aggregates all of it from the per-component
//! counters ([`ClusterStats`](ams_core::ClusterStats),
//! [`SdfExecStats`](ams_sdf::SdfExecStats),
//! `ams_net::TransientStats` folded in through
//! `TdfModule::solver_stats`); [`ExecHook`] lets callers observe every
//! synchronization window as it happens.

use ams_core::ClusterStats;
use ams_kernel::SimTime;
use std::time::Duration;

/// Aggregated execution statistics of one parallel run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Barriers crossed (one per window with at least one busy worker).
    pub barriers: u64,
    /// Per-cluster counters, in registration order: `(name, stats)`.
    /// Newton/factorization totals of embedded solvers are folded into
    /// each entry.
    pub clusters: Vec<(String, ClusterStats)>,
    /// Highest occupancy observed across all SPSC converter rings.
    pub ring_high_water: usize,
    /// Wall time spent inside worker compute (dispatch to barrier).
    pub compute_wall: Duration,
    /// Wall time spent synchronizing with the DE kernel (drain + advance).
    pub sync_wall: Duration,
    /// Deny-level diagnostics found by the pre-elaboration lint pass.
    /// Non-zero only when elaboration was rejected.
    pub lint_errors: usize,
    /// Warn-level diagnostics found by the pre-elaboration lint pass.
    pub lint_warnings: usize,
}

impl ExecStats {
    /// Sum of the per-cluster counters.
    pub fn totals(&self) -> ClusterStats {
        let mut t = ClusterStats::default();
        for (_, s) in &self.clusters {
            t.merge(s);
        }
        t
    }
}

/// Observation hook for a parallel run. All methods default to no-ops;
/// implement the ones you care about. The hook runs on the coordinator
/// thread, never inside workers, so it needs no internal locking beyond
/// `Send`.
pub trait ExecHook: Send {
    /// A synchronization window `[start, end)` is about to be dispatched
    /// to the workers.
    fn on_window(&mut self, _start: SimTime, _end: SimTime) {}

    /// All workers reached the barrier for the window ending at `end`.
    fn on_barrier(&mut self, _end: SimTime) {}

    /// The run finished; `stats` is the final aggregate.
    fn on_finish(&mut self, _stats: &ExecStats) {}
}

/// A trivial hook that counts windows and barriers — handy in tests and
/// as a template.
#[derive(Debug, Default)]
pub struct CountingHook {
    /// Windows observed via [`ExecHook::on_window`].
    pub windows: u64,
    /// Barriers observed via [`ExecHook::on_barrier`].
    pub barriers: u64,
}

impl ExecHook for CountingHook {
    fn on_window(&mut self, _start: SimTime, _end: SimTime) {
        self.windows += 1;
    }

    fn on_barrier(&mut self, _end: SimTime) {
        self.barriers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_clusters() {
        let mut st = ExecStats::default();
        st.clusters.push((
            "a".into(),
            ClusterStats {
                iterations: 2,
                firings: 10,
                probe_samples: 4,
                newton_iterations: 7,
                factorizations: 1,
                ..Default::default()
            },
        ));
        st.clusters.push((
            "b".into(),
            ClusterStats {
                iterations: 3,
                firings: 5,
                probe_samples: 0,
                newton_iterations: 0,
                factorizations: 0,
                ..Default::default()
            },
        ));
        let t = st.totals();
        assert_eq!(t.iterations, 5);
        assert_eq!(t.firings, 15);
        assert_eq!(t.newton_iterations, 7);
    }

    #[test]
    fn counting_hook_counts() {
        let mut h = CountingHook::default();
        h.on_window(SimTime::ZERO, SimTime::from_ns(1));
        h.on_barrier(SimTime::from_ns(1));
        h.on_window(SimTime::from_ns(1), SimTime::from_ns(2));
        assert_eq!(h.windows, 2);
        assert_eq!(h.barriers, 1);
    }
}
