//! Execution statistics and instrumentation hooks.
//!
//! Profiling a mixed-signal simulation means knowing where the time
//! goes: dataflow firings, Newton iterations and matrix factorizations
//! inside embedded solvers, FIFO pressure on converter streams, and the
//! synchronization overhead of meeting the DE kernel at every cluster
//! period. [`ExecStats`] aggregates all of it from the per-component
//! counters ([`ClusterStats`](ams_core::ClusterStats),
//! [`SdfExecStats`](ams_sdf::SdfExecStats),
//! `ams_net::TransientStats` folded in through
//! `TdfModule::solver_stats`); [`ExecHook`] lets callers observe every
//! synchronization window as it happens.

use ams_core::ClusterStats;
use ams_kernel::SimTime;
use std::time::Duration;

/// Aggregated execution statistics of one parallel run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Barriers crossed (one per window with at least one busy worker).
    pub barriers: u64,
    /// Per-cluster counters, in registration order: `(name, stats)`.
    /// Newton/factorization totals of embedded solvers are folded into
    /// each entry.
    pub clusters: Vec<(String, ClusterStats)>,
    /// Highest occupancy observed across all SPSC converter rings.
    pub ring_high_water: usize,
    /// Wall time spent inside worker compute (dispatch to barrier).
    pub compute_wall: Duration,
    /// Wall time spent synchronizing with the DE kernel (drain + advance).
    pub sync_wall: Duration,
    /// Deny-level diagnostics found by the pre-elaboration lint pass.
    /// Non-zero only when elaboration was rejected.
    pub lint_errors: usize,
    /// Warn-level diagnostics found by the pre-elaboration lint pass.
    pub lint_warnings: usize,
}

impl ExecStats {
    /// Sum of the per-cluster counters.
    pub fn totals(&self) -> ClusterStats {
        let mut t = ClusterStats::default();
        for (_, s) in &self.clusters {
            t.merge(s);
        }
        t
    }

    /// Exports the aggregate into an `ams-scope` metrics registry:
    /// window/barrier/firing counters, embedded-solver totals, the
    /// SPSC ring high-water gauge and the per-phase wall-time gauges —
    /// one deterministic name space shared with `ScopeReport`.
    pub fn to_metrics(&self) -> ams_scope::MetricsRegistry {
        let mut m = ams_scope::MetricsRegistry::new();
        m.counter_add("exec.windows", self.windows);
        m.counter_add("exec.barriers", self.barriers);
        m.gauge_set("exec.ring_high_water", self.ring_high_water as f64);
        m.gauge_set("exec.compute_wall_s", self.compute_wall.as_secs_f64());
        m.gauge_set("exec.sync_wall_s", self.sync_wall.as_secs_f64());
        m.counter_add("lint.errors", self.lint_errors as u64);
        m.counter_add("lint.warnings", self.lint_warnings as u64);
        let t = self.totals();
        m.counter_add("cluster.iterations", t.iterations);
        m.counter_add("cluster.firings", t.firings);
        m.counter_add("cluster.probe_samples", t.probe_samples);
        m.counter_add("newton.iterations", t.newton_iterations);
        m.counter_add("lu.factorizations", t.factorizations);
        m.counter_add("lu.symbolic_analyses", t.solve.symbolic_analyses);
        m.counter_add("lu.numeric_refactors", t.solve.numeric_refactors);
        m.counter_add("lu.jacobian_reused", t.solve.jacobian_reused);
        m.gauge_set("lu.nnz", t.solve.nnz as f64);
        m.gauge_set("lu.fill_in", t.solve.fill_in as f64);
        m
    }
}

/// Observation hook for a parallel run. All methods default to no-ops;
/// implement the ones you care about. The hook runs on the coordinator
/// thread, never inside workers, so it needs no internal locking beyond
/// `Send`.
pub trait ExecHook: Send {
    /// A synchronization window `[start, end)` is about to be dispatched
    /// to the workers.
    fn on_window(&mut self, _start: SimTime, _end: SimTime) {}

    /// All workers reached the barrier for the window ending at `end`.
    fn on_barrier(&mut self, _end: SimTime) {}

    /// The run finished; `stats` is the final aggregate.
    fn on_finish(&mut self, _stats: &ExecStats) {}
}

/// A trivial hook that counts windows, barriers and finishes — handy in
/// tests and as a template.
#[derive(Debug, Default)]
pub struct CountingHook {
    /// Windows observed via [`ExecHook::on_window`].
    pub windows: u64,
    /// Barriers observed via [`ExecHook::on_barrier`].
    pub barriers: u64,
    /// Finishes observed via [`ExecHook::on_finish`] — exactly one per
    /// run when driven by `ParallelSim::stats`.
    pub finishes: u64,
}

impl ExecHook for CountingHook {
    fn on_window(&mut self, _start: SimTime, _end: SimTime) {
        self.windows += 1;
    }

    fn on_barrier(&mut self, _end: SimTime) {
        self.barriers += 1;
    }

    fn on_finish(&mut self, _stats: &ExecStats) {
        self.finishes += 1;
    }
}

/// A shared handle to a hook, so a test (or dashboard) can keep reading
/// the counters while the engine owns the registered copy.
impl<H: ExecHook> ExecHook for std::sync::Arc<std::sync::Mutex<H>> {
    fn on_window(&mut self, start: SimTime, end: SimTime) {
        self.lock().expect("hook poisoned").on_window(start, end);
    }

    fn on_barrier(&mut self, end: SimTime) {
        self.lock().expect("hook poisoned").on_barrier(end);
    }

    fn on_finish(&mut self, stats: &ExecStats) {
        self.lock().expect("hook poisoned").on_finish(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_clusters() {
        let mut st = ExecStats::default();
        st.clusters.push((
            "a".into(),
            ClusterStats {
                iterations: 2,
                firings: 10,
                probe_samples: 4,
                newton_iterations: 7,
                factorizations: 1,
                ..Default::default()
            },
        ));
        st.clusters.push((
            "b".into(),
            ClusterStats {
                iterations: 3,
                firings: 5,
                probe_samples: 0,
                newton_iterations: 0,
                factorizations: 0,
                ..Default::default()
            },
        ));
        let t = st.totals();
        assert_eq!(t.iterations, 5);
        assert_eq!(t.firings, 15);
        assert_eq!(t.newton_iterations, 7);
    }

    #[test]
    fn counting_hook_counts() {
        let mut h = CountingHook::default();
        h.on_window(SimTime::ZERO, SimTime::from_ns(1));
        h.on_barrier(SimTime::from_ns(1));
        h.on_window(SimTime::from_ns(1), SimTime::from_ns(2));
        assert_eq!(h.windows, 2);
        assert_eq!(h.barriers, 1);
    }
}
