//! The parallel simulator façade.
//!
//! [`ParallelSim`] mirrors `ams_core::AmsSimulator` — one DE kernel plus
//! any number of TDF clusters — but executes the clusters on a pool of
//! worker threads, meeting the kernel only at synchronization points.
//!
//! # Synchronization model
//!
//! Simulated time advances in *windows*. A window `[now, t_sync)` ends
//! at the earliest of
//!
//! * the horizon passed to [`ParallelSim::run_until`],
//! * the kernel's next pending timed event
//!   ([`Kernel::next_event_time`](ams_kernel::Kernel::next_event_time)),
//! * the *second* upcoming activation of any cluster with DE converter
//!   bindings (so such a cluster runs at most one iteration per window
//!   and never reads a DE value that a concurrent write should have
//!   changed).
//!
//! Before dispatch the coordinator samples every DE→TDF binding into its
//! shared cell; the workers then run every cluster activation that
//! starts inside the window and meet at a barrier. Afterwards the
//! coordinator replays all queued TDF→DE samples into the kernel at
//! their exact timestamps (delta-cycle semantics preserved) and advances
//! the kernel to `t_sync`. Clusters without DE bindings are unconstrained
//! and free-run to the horizon in a single window — that is where the
//! parallel speedup comes from.
//!
//! This reproduces the serial simulator's observable behaviour exactly:
//! probe waveforms and DE signal traces are bit-identical, because every
//! cluster reads the same converter values and the kernel applies every
//! write at the same instant as in the serial schedule.

use crate::partition::{partition, Partition};
use crate::pool::WorkerPool;
use crate::spsc::{ring, RingMonitor};
use crate::stats::{ExecHook, ExecStats};
use ams_core::{CoreError, DeReadBinding, DeWriteBinding, TdfGraph, TdfSignal};
use ams_kernel::{Kernel, SimTime};
use ams_lint::{LintPolicy, LintReport};
use ams_scope::{ScopeTrace, SpanKind, Tracer};
use std::time::Instant;

/// Default capacity of the SPSC rings created by [`ParallelSim::pipe`].
pub const DEFAULT_PIPE_CAPACITY: usize = 1024;

struct BoundCluster {
    period: SimTime,
    /// Coordinator-side mirror of the cluster's next activation time.
    next_activation: SimTime,
}

struct Running {
    pool: WorkerPool,
    partition: Partition,
    bound: Vec<BoundCluster>,
    de_reads: Vec<DeReadBinding>,
    de_writes: Vec<DeWriteBinding>,
    /// The next instant whose activity (kernel events, bound-cluster
    /// activations) has not been processed yet. The kernel itself is
    /// kept strictly *behind* this instant so that DE input snapshots
    /// observe the same pre-delta values the serial simulator's cluster
    /// drivers read.
    frontier: SimTime,
}

/// A DE kernel co-simulating with TDF clusters spread across worker
/// threads. Build it like `AmsSimulator` — create kernel signals, add
/// graphs, optionally [`pipe`](ParallelSim::pipe) clusters together —
/// then call [`run_until`](ParallelSim::run_until).
pub struct ParallelSim {
    kernel: Kernel,
    workers: usize,
    staged: Vec<TdfGraph>,
    pipes: Vec<(usize, usize)>,
    monitors: Vec<RingMonitor>,
    hook: Option<Box<dyn ExecHook>>,
    running: Option<Running>,
    stats: ExecStats,
    lint_policy: LintPolicy,
    lint_reports: Vec<LintReport>,
    tracing: bool,
    tracer: Tracer,
    /// Guards exactly-once [`ExecHook::on_finish`] delivery per run
    /// (cleared by [`ParallelSim::reset`]).
    finished: bool,
}

impl ParallelSim {
    /// Creates a simulator that will use up to `workers` worker threads
    /// (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        ParallelSim {
            kernel: Kernel::new(),
            workers: workers.max(1),
            staged: Vec::new(),
            pipes: Vec::new(),
            monitors: Vec::new(),
            hook: None,
            running: None,
            stats: ExecStats::default(),
            lint_policy: LintPolicy::default(),
            lint_reports: Vec::new(),
            tracing: false,
            tracer: Tracer::off(),
            finished: false,
        }
    }

    /// Enables or disables span tracing: `de.window` and `exec.barrier`
    /// spans on the coordinator, delta-cycle instants on the kernel, and
    /// iteration/solver spans on every cluster (workers buffer locally;
    /// the coordinator merges deterministically in
    /// [`take_trace`](ParallelSim::take_trace)). Disabled (the default)
    /// costs one branch per hook site.
    ///
    /// # Errors
    ///
    /// Propagates worker failures when the pool is already running.
    pub fn set_tracing(&mut self, enabled: bool) -> Result<(), CoreError> {
        self.tracing = enabled;
        self.tracer.set_enabled(enabled);
        self.kernel.set_tracing(enabled);
        if let Some(run) = &mut self.running {
            run.pool.set_tracing(enabled)?;
        }
        Ok(())
    }

    /// Drains every trace buffer into one [`ScopeTrace`]: the
    /// coordinator's window/barrier spans and the kernel's delta-cycle
    /// instants first (process `coordinator`), then each cluster's
    /// tracks on its worker's process (`worker-N`, from the partition
    /// assignment), in cluster registration order. The merge is
    /// deterministic: track order never depends on thread timing.
    pub fn take_trace(&mut self) -> ScopeTrace {
        let mut trace = ScopeTrace::new();
        let own = self.tracer.take_events();
        if !own.is_empty() {
            trace.add_track("coordinator", "exec", own);
        }
        let kernel_events = self.kernel.take_trace_events();
        if !kernel_events.is_empty() {
            trace.add_track("coordinator", "kernel", kernel_events);
        }
        if let Some(run) = &mut self.running {
            for (idx, sources) in run.pool.collect_traces() {
                let worker = run.partition.assignment[idx];
                for (source, events) in sources {
                    trace.add_track(format!("worker-{worker}"), source, events);
                }
            }
        }
        trace
    }

    /// Replaces the lint policy applied during
    /// [`elaborate`](ParallelSim::elaborate). The default denies
    /// error-severity diagnostics and prints warn-severity ones.
    pub fn set_lint_policy(&mut self, policy: LintPolicy) {
        self.lint_policy = policy;
    }

    /// The lint policy applied during elaboration.
    pub fn lint_policy(&self) -> &LintPolicy {
        &self.lint_policy
    }

    /// Lint reports collected so far, one per staged graph (in staging
    /// order), populated by [`elaborate`](ParallelSim::elaborate).
    pub fn lint_reports(&self) -> &[LintReport] {
        &self.lint_reports
    }

    /// The DE kernel (signals, statistics, time).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access for building the DE side.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Installs an observation hook (replacing any previous one).
    pub fn set_hook(&mut self, hook: impl ExecHook + 'static) {
        self.hook = Some(Box::new(hook));
    }

    /// Stages a TDF graph for execution and returns its index. Graphs
    /// elaborate lazily on the first [`run_until`](ParallelSim::run_until).
    ///
    /// # Panics
    ///
    /// Panics if called after the first run (the partition is fixed).
    pub fn add_graph(&mut self, graph: TdfGraph) -> usize {
        assert!(
            self.running.is_none(),
            "clusters cannot be added after the first run"
        );
        self.staged.push(graph);
        self.staged.len() - 1
    }

    /// Mutable access to a staged graph, for wiring added after
    /// staging — typically modules consuming the signal returned by
    /// [`pipe`](ParallelSim::pipe).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is unknown or the engine has already elaborated.
    pub fn graph_mut(&mut self, idx: usize) -> &mut TdfGraph {
        assert!(
            self.running.is_none(),
            "clusters cannot be modified after the first run"
        );
        &mut self.staged[idx]
    }

    /// Connects a TDF signal of cluster `producer` to a fresh input
    /// signal of cluster `consumer` through a wait-free SPSC ring of the
    /// given `capacity` (see [`DEFAULT_PIPE_CAPACITY`]), bypassing the DE
    /// kernel entirely. The two clusters become one partition component
    /// and the producer runs before the consumer inside each window, so
    /// the stream is deterministic. Wire consumers of the returned
    /// signal through [`graph_mut`](ParallelSim::graph_mut):
    ///
    /// ```ignore
    /// let a = sim.add_graph(producer_graph);
    /// let b = sim.add_graph(consumer_graph);
    /// let inp = sim.pipe("link", a, tap_signal, b, 256);
    /// sim.graph_mut(b).add_module("use", Gain::new(inp.reader(), out.writer(), 2.0));
    /// ```
    ///
    /// The consumer drains the ring only after the producer finishes the
    /// window, so `capacity` must cover one window's production; free
    /// running clusters (no DE bindings) get the whole horizon as one
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `producer >= consumer` (registration order is execution
    /// order) or either index is unknown.
    pub fn pipe(
        &mut self,
        name: impl Into<String>,
        producer: usize,
        signal: TdfSignal,
        consumer: usize,
        capacity: usize,
    ) -> TdfSignal {
        assert!(
            producer < consumer,
            "pipe producer must be registered before its consumer \
             ({producer} !< {consumer})"
        );
        assert!(consumer < self.staged.len(), "unknown consumer cluster");
        let name = name.into();
        let (tx, rx) = ring(capacity);
        self.monitors.push(tx.monitor());
        self.staged[producer].to_sink(format!("{name}.tx"), signal, tx);
        let sig = self.staged[consumer].from_source(format!("{name}.rx"), rx);
        self.pipes.push((producer, consumer));
        sig
    }

    /// Elaborates all staged graphs, partitions them and spawns the
    /// worker pool. Called automatically by the first
    /// [`run_until`](ParallelSim::run_until); call it eagerly to surface
    /// elaboration errors early or to inspect [`partition`](Self::partition).
    ///
    /// # Errors
    ///
    /// Propagates elaboration failures (scheduling, timestep, topology).
    pub fn elaborate(&mut self) -> Result<(), CoreError> {
        if self.running.is_some() {
            return Ok(());
        }
        // ---- pre-elaboration static analysis ---------------------
        // Every staged graph is linted before any of them elaborates,
        // so a rejected model never spawns workers. Deny-level
        // diagnostics abort with `CoreError::Lint`; warnings print and
        // are kept in `lint_reports` either way.
        let mut staged: Vec<TdfGraph> = self.staged.drain(..).collect();
        self.lint_reports.clear();
        self.stats.lint_errors = 0;
        self.stats.lint_warnings = 0;
        for g in &mut staged {
            let report = g.lint();
            self.stats.lint_errors += report.error_count();
            self.stats.lint_warnings += report.warning_count();
            for d in self.lint_policy.warned(&report) {
                eprintln!("lint [{}]: {d}", report.context);
            }
            let denied = !self.lint_policy.denied(&report).is_empty();
            self.lint_reports.push(report.clone());
            if denied {
                self.staged = staged;
                return Err(CoreError::Lint(report));
            }
        }

        let mut clusters = Vec::new();
        for g in staged {
            let mut c = g.elaborate()?;
            if self.tracing {
                c.set_tracing(true);
            }
            clusters.push(c);
        }

        // Couplings: explicit pipes, plus any two clusters touching the
        // same DE signal (their relative order matters, so they must not
        // run concurrently).
        let mut edges = self.pipes.clone();
        let touched: Vec<Vec<usize>> = clusters
            .iter()
            .map(|c| {
                let mut sigs: Vec<usize> = c
                    .de_read_bindings()
                    .iter()
                    .map(|(s, _)| s.index())
                    .chain(c.de_write_bindings().iter().map(|(s, _)| s.index()))
                    .collect();
                sigs.sort_unstable();
                sigs.dedup();
                sigs
            })
            .collect();
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                if touched[i]
                    .iter()
                    .any(|s| touched[j].binary_search(s).is_ok())
                {
                    edges.push((i, j));
                }
            }
        }

        let costs: Vec<u64> = clusters.iter().map(|c| c.iteration_cost()).collect();
        let part = partition(&costs, &edges, self.workers);

        let mut bound = Vec::new();
        let mut de_reads = Vec::new();
        let mut de_writes = Vec::new();
        for c in &clusters {
            if c.has_de_bindings() {
                bound.push(BoundCluster {
                    period: c.period(),
                    next_activation: SimTime::ZERO,
                });
            }
            de_reads.extend(c.de_read_bindings().iter().cloned());
            de_writes.extend(c.de_write_bindings().iter().cloned());
        }

        let mut groups: Vec<Vec<(usize, ams_core::Cluster)>> =
            (0..part.loads.len()).map(|_| Vec::new()).collect();
        for (idx, c) in clusters.into_iter().enumerate() {
            groups[part.assignment[idx]].push((idx, c));
        }

        self.running = Some(Running {
            pool: WorkerPool::spawn(groups),
            partition: part,
            bound,
            de_reads,
            de_writes,
            frontier: SimTime::ZERO,
        });
        Ok(())
    }

    /// The partition computed by [`elaborate`](Self::elaborate), if it
    /// ran already.
    pub fn partition(&self) -> Option<&Partition> {
        self.running.as_ref().map(|r| &r.partition)
    }

    /// Runs the co-simulation until `until`, window by window.
    ///
    /// # Errors
    ///
    /// The first cluster or kernel failure encountered.
    pub fn run_until(&mut self, until: SimTime) -> Result<(), CoreError> {
        self.elaborate()?;
        let run = self.running.as_mut().expect("elaborated above");
        let eps = SimTime::from_fs(1);

        // Invariant at the top of every window: every instant strictly
        // before `run.frontier` is fully settled in the kernel, and no
        // activity at or after it has been processed. Cluster activations
        // at exactly `until` are included, matching the serial kernel.
        while run.frontier <= until {
            let t_act = run.frontier;

            // ---- choose the synchronization point --------------------
            // The window covers [t_act, t_next): every bound cluster
            // activates at most once (at t_act), and no kernel event
            // fires strictly inside the window.
            let mut t_next = until + eps;
            if let Some(te) = self.kernel.next_event_time() {
                if te > t_act {
                    t_next = t_next.min(te);
                }
            }
            for b in &run.bound {
                let cap = if b.next_activation == t_act {
                    t_act + b.period
                } else {
                    b.next_activation
                };
                t_next = t_next.min(cap);
            }
            debug_assert!(t_next > t_act);

            // ---- sample DE inputs, dispatch, barrier -----------------
            // The snapshot happens before any instant-`t_act` kernel
            // process runs: clusters see the same pre-delta values as
            // the serial driver processes.
            for (sig, cell) in &run.de_reads {
                cell.set(self.kernel.peek(*sig));
            }
            if let Some(h) = &mut self.hook {
                h.on_window(t_act, t_next);
            }
            let traced = self.tracer.is_enabled();
            if traced {
                self.tracer.begin(SpanKind::DeWindow, t_act.as_fs());
                self.tracer.begin(SpanKind::BarrierWait, t_act.as_fs());
            }
            let t0 = Instant::now();
            run.pool.run_window(t_next)?;
            self.stats.compute_wall += t0.elapsed();
            self.stats.windows += 1;
            self.stats.barriers += 1;
            if traced {
                self.tracer.end(SpanKind::BarrierWait, t_next.as_fs());
            }
            if let Some(h) = &mut self.hook {
                h.on_barrier(t_next);
            }
            for b in &mut run.bound {
                while b.next_activation < t_next {
                    b.next_activation += b.period;
                }
            }

            // ---- replay TDF→DE writes, settle to the frontier --------
            let t1 = Instant::now();
            let mut samples: Vec<(SimTime, usize, f64)> = Vec::new();
            for (bidx, (_, queue)) in run.de_writes.iter().enumerate() {
                let mut q = queue.lock().expect("sample queue poisoned");
                while let Some(&(t, v)) = q.front() {
                    if t < t_next {
                        samples.push((t, bidx, v));
                        q.pop_front();
                    } else {
                        break;
                    }
                }
            }
            samples.sort_by_key(|&(t, bidx, _)| (t, bidx));
            for (t, bidx, v) in samples {
                if self.kernel.now() < t {
                    self.kernel.run_until(t)?;
                }
                let (sig, _) = run.de_writes[bidx];
                self.kernel.poke(sig, v);
            }
            // Settle every instant strictly below the new frontier,
            // leaving instant `t_next` untouched for the next window.
            self.kernel.run_until(t_next - eps)?;
            self.stats.sync_wall += t1.elapsed();
            if self.tracer.is_enabled() {
                self.tracer.end(SpanKind::DeWindow, t_next.as_fs());
            }
            run.frontier = t_next;
        }

        // Park the kernel clock exactly at the horizon.
        self.kernel.run_until(until)?;
        Ok(())
    }

    /// Rewinds the whole simulation to `t = 0`: every cluster resets (see
    /// [`Cluster::reset`](ams_core::Cluster::reset)) and a fresh kernel
    /// replaces the old one. DE-side structure (signals, processes) must
    /// be rebuilt by the caller on the new kernel — for the common case
    /// of probe-only models nothing else is needed.
    ///
    /// # Errors
    ///
    /// Propagates worker failures.
    pub fn reset(&mut self) -> Result<(), CoreError> {
        if let Some(run) = &mut self.running {
            run.pool.reset()?;
            for b in &mut run.bound {
                b.next_activation = SimTime::ZERO;
            }
            run.frontier = SimTime::ZERO;
        }
        self.kernel = Kernel::new();
        self.kernel.set_tracing(self.tracing);
        let _ = self.tracer.take_events();
        self.finished = false;
        self.stats = ExecStats {
            // Lint counts belong to elaboration, which survives a reset.
            lint_errors: self.stats.lint_errors,
            lint_warnings: self.stats.lint_warnings,
            ..ExecStats::default()
        };
        Ok(())
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// A snapshot of the aggregated execution statistics: window and
    /// barrier counts, per-cluster counters (with embedded-solver totals
    /// folded in), SPSC high-water marks and per-phase wall time. Fires
    /// [`ExecHook::on_finish`] exactly once per run — repeated calls
    /// return fresh snapshots without re-firing the hook (a
    /// [`reset`](ParallelSim::reset) re-arms it).
    pub fn stats(&mut self) -> ExecStats {
        let mut stats = self.stats.clone();
        if let Some(run) = &mut self.running {
            stats.clusters = run
                .pool
                .collect_stats()
                .into_iter()
                .map(|(_, name, s)| (name, s))
                .collect();
        }
        stats.ring_high_water = self
            .monitors
            .iter()
            .map(|m| m.high_water())
            .max()
            .unwrap_or(0);
        if !self.finished {
            self.finished = true;
            if let Some(h) = &mut self.hook {
                h.on_finish(&stats);
            }
        }
        stats
    }
}

impl std::fmt::Debug for ParallelSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSim")
            .field("workers", &self.workers)
            .field("staged", &self.staged.len())
            .field("elaborated", &self.running.is_some())
            .finish()
    }
}
