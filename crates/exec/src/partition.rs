//! Static partitioning of cluster/actor graphs onto workers.
//!
//! Two inputs describe the elaborated model: a per-node execution cost
//! (for TDF clusters the firings per schedule iteration, i.e. the
//! balance-equation repetition vector; for SDF partitions the schedule
//! length) and an undirected edge list of couplings that force two nodes
//! onto the same worker (shared DE signals, SPSC pipes). The partitioner
//! finds the connected components with a union–find pass and then packs
//! whole components onto workers with the longest-processing-time (LPT)
//! heuristic.
//!
//! Everything is deterministic: components are keyed by their smallest
//! node id, ties break toward smaller ids and lower worker indices, so
//! the same model always yields the same assignment — a prerequisite for
//! reproducible parallel runs.

/// The result of partitioning `n` nodes onto `workers` workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[node] = worker` for every node.
    pub assignment: Vec<usize>,
    /// Connected components, each sorted ascending; the list itself is
    /// ordered by descending total cost (ties: smaller first node id).
    pub components: Vec<Vec<usize>>,
    /// Total assigned cost per worker.
    pub loads: Vec<u64>,
}

impl Partition {
    /// Node ids assigned to `worker`, ascending.
    pub fn nodes_of(&self, worker: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w == worker)
            .map(|(n, _)| n)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of workers that received at least one node.
    pub fn busy_workers(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0).count()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins, keeping component ids stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Partitions `costs.len()` nodes onto `workers` workers.
///
/// Nodes joined by an edge land on the same worker; whole components are
/// then LPT-packed by total cost. A zero `workers` is treated as one.
///
/// # Panics
///
/// Panics if an edge references a node out of range.
pub fn partition(costs: &[u64], edges: &[(usize, usize)], workers: usize) -> Partition {
    let n = costs.len();
    let workers = workers.max(1);
    let mut uf = UnionFind::new(n);
    for &(a, b) in edges {
        assert!(a < n && b < n, "edge ({a}, {b}) out of range for {n} nodes");
        uf.union(a, b);
    }

    // Group nodes by root, keyed by the smallest member id.
    let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
    for node in 0..n {
        let r = uf.find(node);
        by_root[r].push(node);
    }
    let mut components: Vec<Vec<usize>> = by_root.into_iter().filter(|c| !c.is_empty()).collect();

    // LPT order: heaviest component first, first-node id breaking ties.
    let total = |c: &[usize]| c.iter().map(|&x| costs[x]).sum::<u64>();
    components.sort_by(|a, b| total(b).cmp(&total(a)).then(a[0].cmp(&b[0])));

    let mut assignment = vec![0usize; n];
    let mut loads = vec![0u64; workers];
    for comp in &components {
        let w = (0..workers)
            .min_by_key(|&w| (loads[w], w))
            .expect("at least one worker");
        loads[w] += total(comp);
        for &node in comp {
            assignment[node] = w;
        }
    }

    Partition {
        assignment,
        components,
        loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_nodes_spread_across_workers() {
        let p = partition(&[5, 5, 5, 5], &[], 4);
        assert_eq!(p.components.len(), 4);
        assert_eq!(p.busy_workers(), 4);
        // Equal costs: LPT ties resolve by node id then worker id.
        assert_eq!(p.assignment, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edges_merge_components() {
        // 0-1-2 chained, 3 free.
        let p = partition(&[1, 1, 1, 10], &[(0, 1), (1, 2)], 2);
        assert_eq!(p.components.len(), 2);
        assert_eq!(p.components[0], vec![3]); // heaviest first
        assert_eq!(p.components[1], vec![0, 1, 2]);
        assert_eq!(p.assignment[0], p.assignment[1]);
        assert_eq!(p.assignment[1], p.assignment[2]);
        assert_ne!(p.assignment[0], p.assignment[3]);
        assert_eq!(p.loads, vec![10, 3]);
    }

    #[test]
    fn lpt_balances_loads() {
        // Costs 7, 5, 4, 3 on two workers: LPT gives {7,3} and {5,4}.
        let p = partition(&[7, 5, 4, 3], &[], 2);
        assert_eq!(p.loads, vec![10, 9]);
        assert_eq!(p.assignment, vec![0, 1, 1, 0]);
    }

    #[test]
    fn deterministic_assignment() {
        let costs = [3, 1, 4, 1, 5, 9, 2, 6];
        let edges = [(0, 4), (2, 6), (5, 7)];
        let a = partition(&costs, &edges, 3);
        let b = partition(&costs, &edges, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn more_workers_than_components() {
        let p = partition(&[1, 1], &[(0, 1)], 8);
        assert_eq!(p.busy_workers(), 1);
        assert_eq!(p.assignment, vec![0, 0]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let p = partition(&[1, 2, 3], &[], 0);
        assert_eq!(p.loads.len(), 1);
        assert!(p.assignment.iter().all(|&w| w == 0));
    }
}
