//! Wait-free single-producer single-consumer sample FIFOs.
//!
//! Converter streams that cross an execution boundary — a worker thread
//! feeding the coordinator, or one cluster feeding another inside a
//! partition — move timestamped samples through these rings instead of a
//! mutex-protected queue. The implementation is plain safe Rust: each
//! slot is a pair of `AtomicU64`s (femtosecond timestamp, `f64` bit
//! pattern) and the head/tail indices publish slots with release stores
//! and consume them with acquire loads, which is the entire SPSC
//! protocol. Capacity is rounded up to a power of two so the index
//! arithmetic is a mask.
//!
//! The producer half implements [`SampleSink`] and the consumer half
//! [`SampleSource`], so the two ends plug directly into
//! [`TdfGraph::to_sink`](ams_core::TdfGraph::to_sink) and
//! [`TdfGraph::from_source`](ams_core::TdfGraph::from_source).

use ams_core::{SampleSink, SampleSource};
use ams_kernel::SimTime;
// Under `--features loom` the ring is built on the loom model-checked
// atomics so its push/pop protocol can be exhaustively interleaved; see
// `tests/loom_spsc.rs`.
#[cfg(feature = "loom")]
use loom::sync::{
    atomic::{AtomicU64, AtomicUsize, Ordering},
    Arc,
};
#[cfg(not(feature = "loom"))]
use std::sync::{
    atomic::{AtomicU64, AtomicUsize, Ordering},
    Arc,
};

struct RingShared {
    times: Vec<AtomicU64>,
    values: Vec<AtomicU64>,
    /// Next slot the consumer will read. Only the consumer stores it.
    head: AtomicUsize,
    /// Next slot the producer will write. Only the producer stores it.
    tail: AtomicUsize,
    /// Highest occupancy ever observed by the producer.
    high_water: AtomicUsize,
    mask: usize,
}

/// Producer half of an SPSC sample ring. Not clonable: exactly one
/// producer exists per ring.
pub struct RingProducer {
    shared: Arc<RingShared>,
}

/// Consumer half of an SPSC sample ring. Pops samples in FIFO order;
/// as a [`SampleSource`] it zero-order-holds the last popped value when
/// the ring is momentarily empty.
pub struct RingConsumer {
    shared: Arc<RingShared>,
    last: f64,
}

/// Creates a ring with room for `capacity` samples (rounded up to a
/// power of two, minimum 2). Size it for one synchronization window's
/// worth of production: the consumer only drains between barriers.
///
/// # Panics
///
/// Panics on a zero capacity.
pub fn ring(capacity: usize) -> (RingProducer, RingConsumer) {
    assert!(capacity > 0, "spsc ring capacity must be non-zero");
    let cap = capacity.next_power_of_two().max(2);
    let shared = Arc::new(RingShared {
        times: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        values: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        high_water: AtomicUsize::new(0),
        mask: cap - 1,
    });
    (
        RingProducer {
            shared: shared.clone(),
        },
        RingConsumer { shared, last: 0.0 },
    )
}

impl RingShared {
    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

/// Read-only observer of a ring's occupancy, detached from both halves —
/// the instrumentation layer holds these after the producer and consumer
/// have moved into their clusters.
#[derive(Clone)]
pub struct RingMonitor {
    shared: Arc<RingShared>,
}

impl RingMonitor {
    /// Samples currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &self.shared;
        s.tail
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.load(Ordering::Acquire))
    }

    /// `true` when no samples are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }
}

impl RingProducer {
    /// Attempts to enqueue a sample; fails (returning it back) when the
    /// ring is full.
    pub fn try_push(&mut self, t: SimTime, value: f64) -> Result<(), (SimTime, f64)> {
        let s = &self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        let occupancy = tail.wrapping_sub(head);
        if occupancy == s.capacity() {
            return Err((t, value));
        }
        let slot = tail & s.mask;
        s.times[slot].store(t.as_fs(), Ordering::Relaxed);
        s.values[slot].store(value.to_bits(), Ordering::Relaxed);
        // Publish the slot: everything stored above happens-before any
        // consumer that acquires this tail value.
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        let occ = occupancy + 1;
        if occ > s.high_water.load(Ordering::Relaxed) {
            s.high_water.store(occ, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Enqueues a sample, spinning (with yields) until the consumer
    /// frees a slot. Use when the consumer drains the ring concurrently
    /// — e.g. a sweep worker streaming per-scenario results to a live
    /// aggregator — rather than only at synchronization barriers (where
    /// the panicking [`SampleSink::push`] semantics are correct, since
    /// waiting there would deadlock).
    pub fn push_spin(&mut self, t: SimTime, value: f64) {
        let mut item = (t, value);
        let mut spins = 0u32;
        while let Err(back) = self.try_push(item.0, item.1) {
            item = back;
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Samples currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &self.shared;
        s.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(s.head.load(Ordering::Acquire))
    }

    /// `true` when no samples are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }

    /// A detached occupancy observer for this ring.
    pub fn monitor(&self) -> RingMonitor {
        RingMonitor {
            shared: self.shared.clone(),
        }
    }
}

impl SampleSink for RingProducer {
    /// Pushes a sample, panicking if the ring stays full: the consumer
    /// drains only at synchronization barriers, so a full ring means the
    /// capacity is too small for one window — failing loudly beats
    /// deadlocking the worker.
    fn push(&mut self, t: SimTime, value: f64) {
        if self.try_push(t, value).is_err() {
            panic!(
                "spsc ring overflow: capacity {} cannot hold one synchronization \
                 window of samples; create the ring with a larger capacity",
                self.capacity()
            );
        }
    }
}

impl RingConsumer {
    /// Dequeues the oldest sample, if any.
    pub fn try_pop(&mut self) -> Option<(SimTime, f64)> {
        let s = &self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = head & s.mask;
        let t = SimTime::from_fs(s.times[slot].load(Ordering::Relaxed));
        let v = f64::from_bits(s.values[slot].load(Ordering::Relaxed));
        // Release the slot back to the producer.
        s.head.store(head.wrapping_add(1), Ordering::Release);
        self.last = v;
        Some((t, v))
    }

    /// Samples currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &self.shared;
        s.tail
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.load(Ordering::Relaxed))
    }

    /// `true` when no samples are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }
}

impl SampleSource for RingConsumer {
    /// Pops the next sample value; when the ring is momentarily empty the
    /// last value is held (zero-order hold), mirroring DE converter-port
    /// sampling semantics.
    fn pull(&mut self) -> f64 {
        match self.try_pop() {
            Some((_, v)) => v,
            None => self.last,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_emptiness() {
        let (mut tx, mut rx) = ring(4);
        assert!(rx.try_pop().is_none());
        tx.push(SimTime::from_ns(1), 1.0);
        tx.push(SimTime::from_ns(2), 2.0);
        assert_eq!(rx.try_pop(), Some((SimTime::from_ns(1), 1.0)));
        assert_eq!(rx.try_pop(), Some((SimTime::from_ns(2), 2.0)));
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn full_ring_rejects_then_accepts() {
        let (mut tx, mut rx) = ring(2);
        assert!(tx.try_push(SimTime::ZERO, 0.0).is_ok());
        assert!(tx.try_push(SimTime::ZERO, 1.0).is_ok());
        assert_eq!(tx.try_push(SimTime::ZERO, 2.0), Err((SimTime::ZERO, 2.0)));
        assert_eq!(rx.try_pop(), Some((SimTime::ZERO, 0.0)));
        assert!(tx.try_push(SimTime::ZERO, 2.0).is_ok());
        assert_eq!(tx.high_water(), 2);
    }

    #[test]
    fn wrap_around_preserves_order() {
        let (mut tx, mut rx) = ring(4);
        // Drive the indices far past the capacity to exercise wrapping.
        for i in 0..1000u64 {
            tx.push(SimTime::from_fs(i), i as f64);
            tx.push(SimTime::from_fs(i), i as f64 + 0.5);
            assert_eq!(rx.try_pop(), Some((SimTime::from_fs(i), i as f64)));
            assert_eq!(rx.try_pop(), Some((SimTime::from_fs(i), i as f64 + 0.5)));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn zero_order_hold_on_empty() {
        let (mut tx, mut rx) = ring(4);
        assert_eq!(rx.pull(), 0.0);
        tx.push(SimTime::from_ns(1), 3.25);
        assert_eq!(rx.pull(), 3.25);
        assert_eq!(rx.pull(), 3.25); // held
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = ring(5);
        assert_eq!(tx.capacity(), 8);
    }

    #[test]
    fn push_spin_waits_for_a_concurrent_consumer() {
        let (mut tx, mut rx) = ring(4);
        const N: u64 = 50_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push_spin(SimTime::from_fs(i), i as f64);
            }
        });
        let mut next = 0u64;
        while next < N {
            match rx.try_pop() {
                Some((t, v)) => {
                    assert_eq!(t, SimTime::from_fs(next));
                    assert_eq!(v, next as f64);
                    next += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().expect("producer panicked");
        assert!(rx.is_empty());
    }

    #[test]
    fn threaded_stress_preserves_every_sample() {
        let (mut tx, mut rx) = ring(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut item = (SimTime::from_fs(i), i as f64);
                loop {
                    match tx.try_push(item.0, item.1) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            tx.high_water()
        });
        let mut next = 0u64;
        while next < N {
            match rx.try_pop() {
                Some((t, v)) => {
                    assert_eq!(t, SimTime::from_fs(next));
                    assert_eq!(v, next as f64);
                    next += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        let hw = producer.join().expect("producer panicked");
        assert!(hw <= 64);
        assert!(rx.is_empty());
    }
}
