//! Stable monitor violation codes.
//!
//! Every property kind fails with exactly one code, plus the shared
//! `MON009` for non-finite samples, which any monitor raises the moment
//! its channel produces NaN or ±inf. Codes are contract: they appear in
//! sweep reports, serve replies and traces, and the table in
//! `DESIGN.md` §6j is pinned to this registry by the `registry_sync`
//! integration test (the same discipline as the `ams-lint` codes).

/// Settling violation: the signal left (or never entered) the target
/// band after the settling deadline.
pub const MON001: &str = "MON001";
/// Overshoot bound exceeded.
pub const MON002: &str = "MON002";
/// Undershoot bound exceeded.
pub const MON003: &str = "MON003";
/// Monotone-ramp violation: the signal dipped below its running peak by
/// more than the tolerance inside the ramp window.
pub const MON004: &str = "MON004";
/// Envelope violation: the signal left the min/max envelope inside the
/// observation window.
pub const MON005: &str = "MON005";
/// Rise-time violation: the signal failed to reach the high threshold
/// within the allowed time after crossing the low threshold.
pub const MON006: &str = "MON006";
/// Steady-state ripple violation: the post-window peak-to-peak
/// excursion exceeded the bound.
pub const MON007: &str = "MON007";
/// Frequency-mask violation: a Goertzel bin's amplitude exceeded its
/// mask ceiling.
pub const MON008: &str = "MON008";
/// Non-finite sample: the monitored channel produced NaN or ±inf.
pub const MON009: &str = "MON009";

/// The complete code registry: `(code, verdict, meaning)`. The verdict
/// column is always `fail` — unlike lint codes, a tripped monitor is
/// never merely advisory. Ordered by code; `DESIGN.md` §6j must list
/// exactly these rows (pinned by `tests/registry_sync.rs`).
pub fn registry() -> &'static [(&'static str, &'static str, &'static str)] {
    &[
        (
            MON001,
            "fail",
            "signal outside settling band after deadline",
        ),
        (MON002, "fail", "overshoot above bound"),
        (MON003, "fail", "undershoot below bound"),
        (MON004, "fail", "non-monotone ramp beyond tolerance"),
        (MON005, "fail", "signal left min/max envelope in window"),
        (MON006, "fail", "rise time above limit"),
        (MON007, "fail", "steady-state ripple above bound"),
        (MON008, "fail", "frequency-mask bin amplitude above ceiling"),
        (MON009, "fail", "non-finite sample (NaN or infinity)"),
    ]
}

/// The numeric suffix of `code` (`"MON004"` → 4), used by the compact
/// f64 verdict encoding. `None` for strings outside the registry.
pub fn code_number(code: &str) -> Option<u16> {
    registry()
        .iter()
        .find(|(c, _, _)| *c == code)
        .and_then(|_| code[3..].parse().ok())
}

/// The registry code with numeric suffix `n` (`4` → `"MON004"`).
pub fn code_for_number(n: u16) -> Option<&'static str> {
    registry()
        .iter()
        .map(|(c, _, _)| *c)
        .find(|c| c[3..].parse() == Ok(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_ordered_and_well_formed() {
        let reg = registry();
        for w in reg.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
        for (code, verdict, meaning) in reg {
            assert_eq!(code.len(), 6);
            assert!(code.starts_with("MON"));
            assert!(code[3..].chars().all(|c| c.is_ascii_digit()));
            assert_eq!(*verdict, "fail");
            assert!(!meaning.is_empty());
        }
    }

    #[test]
    fn numbers_round_trip() {
        for (code, _, _) in registry() {
            let n = code_number(code).unwrap();
            assert_eq!(code_for_number(n), Some(*code));
        }
        assert_eq!(code_number("MON999"), None);
        assert_eq!(code_for_number(999), None);
    }
}
