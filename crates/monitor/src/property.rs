//! The property language: kinds, specs, and the text grammar.
//!
//! A [`MonitorSpec`] is a list of named properties, each watching one
//! *channel* (a node or signal name the embedding layer resolves). The
//! text form — used by `--monitor` flags and the `ams-serve` job
//! protocol — is:
//!
//! ```text
//! spec     := prop ( ';' prop )*
//! prop     := name ':' kind '(' [ key '=' num ( ',' key '=' num )* ] ')' '@' channel
//! kind     := settle | overshoot | undershoot | ramp | envelope
//!           | rise | ripple | fmask | finite
//! ```
//!
//! For example `settled:settle(lo=0.55,hi=0.65,by=8e-4)@out` names the
//! property `settled`, watches channel `out`, and requires the signal
//! to sit inside `[0.55, 0.65]` at every sample from `t = 0.8 ms` on.
//! All numbers are `f64` literals (`1e-6`, `0.5`, `-3` …); whitespace
//! around tokens is ignored.

use crate::codes;

/// One temporal property kind with its parameters. Times are simulated
/// seconds, levels are in the channel's unit (volts for MNA nodes).
#[derive(Debug, Clone, PartialEq)]
pub enum Property {
    /// `settle(lo,hi,by)` — from `t >= by` on, every sample must lie in
    /// `[lo, hi]`. Fails with [`codes::MON001`]; vacuous when the run
    /// ends before `by`.
    Settle {
        /// Band lower edge.
        lo: f64,
        /// Band upper edge.
        hi: f64,
        /// Settling deadline in seconds.
        by: f64,
    },
    /// `overshoot(max)` — no sample may exceed `max`. Fails with
    /// [`codes::MON002`].
    Overshoot {
        /// Upper bound.
        max: f64,
    },
    /// `undershoot(min)` — no sample may fall below `min`. Fails with
    /// [`codes::MON003`].
    Undershoot {
        /// Lower bound.
        min: f64,
    },
    /// `ramp(from,until,tol)` — inside `[from, until]` the signal must
    /// be non-decreasing up to dips of `tol` below its running peak.
    /// Fails with [`codes::MON004`]; vacuous when the window saw no
    /// sample.
    Ramp {
        /// Window start in seconds.
        from: f64,
        /// Window end in seconds.
        until: f64,
        /// Allowed dip below the running peak.
        tol: f64,
    },
    /// `envelope(lo,hi,from,until)` — inside `[from, until]` every
    /// sample must lie in `[lo, hi]`. `from`/`until` default to
    /// `0`/`+inf`. Fails with [`codes::MON005`]; vacuous when the
    /// window saw no sample.
    Envelope {
        /// Envelope floor.
        lo: f64,
        /// Envelope ceiling.
        hi: f64,
        /// Window start in seconds.
        from: f64,
        /// Window end in seconds.
        until: f64,
    },
    /// `rise(lo,hi,within)` — once the signal first reaches `lo`, it
    /// must reach `hi` within `within` seconds. Fails with
    /// [`codes::MON006`]; vacuous when `lo` is never reached (or the
    /// run ends before the window elapses).
    Rise {
        /// Low threshold arming the measurement.
        lo: f64,
        /// High threshold completing it.
        hi: f64,
        /// Maximum allowed `lo → hi` time in seconds.
        within: f64,
    },
    /// `ripple(after,max)` — from `t >= after` on, the running
    /// peak-to-peak excursion must stay at or below `max`. Fails with
    /// [`codes::MON007`] (witness value = the excursion); vacuous when
    /// the run ends before `after`.
    Ripple {
        /// Steady-state window start in seconds.
        after: f64,
        /// Maximum allowed peak-to-peak excursion.
        max: f64,
    },
    /// `fmask(f,max)` — the streamed Goertzel-style amplitude estimate
    /// at each bin frequency must stay at or below the bin's ceiling.
    /// The text form declares one bin; the API accepts a whole bank.
    /// Evaluated at end of run. Fails with [`codes::MON008`] (witness
    /// value = the amplitude); vacuous when no sample arrived.
    FreqMask {
        /// `(frequency_hz, max_amplitude)` bins.
        bins: Vec<(f64, f64)>,
    },
    /// `finite()` — every sample must be finite. Fails with
    /// [`codes::MON009`]; vacuous when no sample arrived. (All other
    /// kinds *also* fail with `MON009` on a non-finite sample; this
    /// kind asserts nothing else.)
    Finite,
}

impl Property {
    /// The code this property fails with (non-finite samples override
    /// it with [`codes::MON009`] for every kind).
    pub fn code(&self) -> &'static str {
        match self {
            Property::Settle { .. } => codes::MON001,
            Property::Overshoot { .. } => codes::MON002,
            Property::Undershoot { .. } => codes::MON003,
            Property::Ramp { .. } => codes::MON004,
            Property::Envelope { .. } => codes::MON005,
            Property::Rise { .. } => codes::MON006,
            Property::Ripple { .. } => codes::MON007,
            Property::FreqMask { .. } => codes::MON008,
            Property::Finite => codes::MON009,
        }
    }

    /// The grammar keyword of this kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Property::Settle { .. } => "settle",
            Property::Overshoot { .. } => "overshoot",
            Property::Undershoot { .. } => "undershoot",
            Property::Ramp { .. } => "ramp",
            Property::Envelope { .. } => "envelope",
            Property::Rise { .. } => "rise",
            Property::Ripple { .. } => "ripple",
            Property::FreqMask { .. } => "fmask",
            Property::Finite => "finite",
        }
    }

    /// Renders the property in grammar form (`settle(lo=…,hi=…,by=…)`).
    /// Multi-bin frequency masks render their first bin only in text
    /// (the grammar declares one bin per property).
    pub fn render(&self) -> String {
        match self {
            Property::Settle { lo, hi, by } => format!("settle(lo={lo:?},hi={hi:?},by={by:?})"),
            Property::Overshoot { max } => format!("overshoot(max={max:?})"),
            Property::Undershoot { min } => format!("undershoot(min={min:?})"),
            Property::Ramp { from, until, tol } => {
                format!("ramp(from={from:?},until={until:?},tol={tol:?})")
            }
            Property::Envelope {
                lo,
                hi,
                from,
                until,
            } => {
                format!("envelope(lo={lo:?},hi={hi:?},from={from:?},until={until:?})")
            }
            Property::Rise { lo, hi, within } => {
                format!("rise(lo={lo:?},hi={hi:?},within={within:?})")
            }
            Property::Ripple { after, max } => format!("ripple(after={after:?},max={max:?})"),
            Property::FreqMask { bins } => {
                let (f, max) = bins.first().copied().unwrap_or((0.0, 0.0));
                format!("fmask(f={f:?},max={max:?})")
            }
            Property::Finite => "finite()".to_string(),
        }
    }
}

/// One named property bound to a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertySpec {
    /// Property name (appears in reports and metrics).
    pub name: String,
    /// Channel name, resolved by the embedding layer (an MNA node name
    /// for netlist sweeps, a TDF signal name for cluster sweeps).
    pub channel: String,
    /// The property itself.
    pub property: Property,
}

/// An ordered list of properties — the unit the sweep and serve layers
/// accept.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MonitorSpec {
    /// The properties, in declaration order (verdict order everywhere).
    pub props: Vec<PropertySpec>,
}

impl MonitorSpec {
    /// An empty spec.
    pub fn new() -> MonitorSpec {
        MonitorSpec::default()
    }

    /// Appends a property (builder style).
    pub fn prop(
        mut self,
        name: impl Into<String>,
        channel: impl Into<String>,
        property: Property,
    ) -> MonitorSpec {
        self.props.push(PropertySpec {
            name: name.into(),
            channel: channel.into(),
            property,
        });
        self
    }

    /// `true` when the spec holds no properties.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Property names in declaration order.
    pub fn names(&self) -> Vec<String> {
        self.props.iter().map(|p| p.name.clone()).collect()
    }

    /// Parses the text grammar (see the module docs). Returns the
    /// first violation as a rendered message.
    ///
    /// # Errors
    ///
    /// A message naming the offending property or argument.
    pub fn parse(text: &str) -> Result<MonitorSpec, String> {
        let mut spec = MonitorSpec::new();
        for raw in text.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            spec.props.push(parse_prop(raw)?);
        }
        if spec.props.is_empty() {
            return Err("monitor spec holds no properties".into());
        }
        Ok(spec)
    }

    /// Renders the spec in grammar form; `parse ∘ render` is the
    /// identity for single-bin specs. Deterministic, so serve jobs can
    /// fold it into their fingerprints.
    pub fn render(&self) -> String {
        self.props
            .iter()
            .map(|p| format!("{}:{}@{}", p.name, p.property.render(), p.channel))
            .collect::<Vec<_>>()
            .join(";")
    }
}

fn parse_prop(raw: &str) -> Result<PropertySpec, String> {
    let (name, rest) = raw
        .split_once(':')
        .ok_or_else(|| format!("property {raw:?}: expected name ':' kind(...)@channel"))?;
    let (body, channel) = rest
        .rsplit_once('@')
        .ok_or_else(|| format!("property {name:?}: missing '@channel'"))?;
    let name = name.trim();
    let channel = channel.trim();
    if name.is_empty() || channel.is_empty() {
        return Err(format!("property {raw:?}: empty name or channel"));
    }
    let body = body.trim();
    let open = body
        .find('(')
        .ok_or_else(|| format!("property {name:?}: missing '('"))?;
    if !body.ends_with(')') {
        return Err(format!("property {name:?}: missing ')'"));
    }
    let kind = body[..open].trim();
    let args = parse_args(name, &body[open + 1..body.len() - 1])?;
    let get = |key: &str| -> Result<f64, String> {
        args.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("property {name:?}: {kind} needs argument {key:?}"))
    };
    let opt = |key: &str, default: f64| -> f64 {
        args.iter()
            .find(|(k, _)| k == key)
            .map_or(default, |(_, v)| *v)
    };
    let known: &[&str] = match kind {
        "settle" => &["lo", "hi", "by"],
        "overshoot" => &["max"],
        "undershoot" => &["min"],
        "ramp" => &["from", "until", "tol"],
        "envelope" => &["lo", "hi", "from", "until"],
        "rise" => &["lo", "hi", "within"],
        "ripple" => &["after", "max"],
        "fmask" => &["f", "max"],
        "finite" => &[],
        other => return Err(format!("property {name:?}: unknown kind {other:?}")),
    };
    for (k, _) in &args {
        if !known.contains(&k.as_str()) {
            return Err(format!(
                "property {name:?}: {kind} does not take argument {k:?}"
            ));
        }
    }
    let property = match kind {
        "settle" => Property::Settle {
            lo: get("lo")?,
            hi: get("hi")?,
            by: get("by")?,
        },
        "overshoot" => Property::Overshoot { max: get("max")? },
        "undershoot" => Property::Undershoot { min: get("min")? },
        "ramp" => Property::Ramp {
            from: get("from")?,
            until: get("until")?,
            tol: opt("tol", 0.0),
        },
        "envelope" => Property::Envelope {
            lo: get("lo")?,
            hi: get("hi")?,
            from: opt("from", 0.0),
            until: opt("until", f64::INFINITY),
        },
        "rise" => Property::Rise {
            lo: get("lo")?,
            hi: get("hi")?,
            within: get("within")?,
        },
        "ripple" => Property::Ripple {
            after: get("after")?,
            max: get("max")?,
        },
        "fmask" => Property::FreqMask {
            bins: vec![(get("f")?, get("max")?)],
        },
        "finite" => Property::Finite,
        _ => unreachable!("kind validated above"),
    };
    validate(name, &property)?;
    Ok(PropertySpec {
        name: name.to_string(),
        channel: channel.to_string(),
        property,
    })
}

fn parse_args(name: &str, text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("property {name:?}: argument {part:?} is not key=value"))?;
        let v: f64 = v
            .trim()
            .parse()
            .map_err(|_| format!("property {name:?}: {:?} is not a number", v.trim()))?;
        out.push((k.trim().to_string(), v));
    }
    Ok(out)
}

/// Rejects parameterizations that can never produce a meaningful
/// verdict (inverted bands, non-finite thresholds, negative windows).
fn validate(name: &str, p: &Property) -> Result<(), String> {
    let bad = |what: &str| Err(format!("property {name:?}: {what}"));
    let finite = |v: f64| v.is_finite();
    match p {
        Property::Settle { lo, hi, by } => {
            if !finite(*lo) || !finite(*hi) || lo > hi {
                return bad("settle band is inverted or non-finite");
            }
            if !finite(*by) || *by < 0.0 {
                return bad("settle deadline must be finite and non-negative");
            }
        }
        Property::Overshoot { max } => {
            if !finite(*max) {
                return bad("overshoot bound must be finite");
            }
        }
        Property::Undershoot { min } => {
            if !finite(*min) {
                return bad("undershoot bound must be finite");
            }
        }
        Property::Ramp { from, until, tol } => {
            if !finite(*from) || !finite(*until) || from >= until {
                return bad("ramp window is empty or non-finite");
            }
            if !finite(*tol) || *tol < 0.0 {
                return bad("ramp tolerance must be finite and non-negative");
            }
        }
        Property::Envelope {
            lo,
            hi,
            from,
            until,
        } => {
            if !finite(*lo) || !finite(*hi) || lo > hi {
                return bad("envelope band is inverted or non-finite");
            }
            if from.is_nan() || until.is_nan() || from >= until {
                return bad("envelope window is empty");
            }
        }
        Property::Rise { lo, hi, within } => {
            if !finite(*lo) || !finite(*hi) || lo >= hi {
                return bad("rise thresholds must satisfy lo < hi");
            }
            if !finite(*within) || *within <= 0.0 {
                return bad("rise window must be finite and positive");
            }
        }
        Property::Ripple { after, max } => {
            if !finite(*after) || *after < 0.0 {
                return bad("ripple window start must be finite and non-negative");
            }
            if !finite(*max) || *max < 0.0 {
                return bad("ripple bound must be finite and non-negative");
            }
        }
        Property::FreqMask { bins } => {
            if bins.is_empty() {
                return bad("frequency mask needs at least one bin");
            }
            for (f, max) in bins {
                if !finite(*f) || *f <= 0.0 || !finite(*max) || *max < 0.0 {
                    return bad("frequency-mask bins need f > 0 and max >= 0");
                }
            }
        }
        Property::Finite => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_every_kind() {
        let text = "a:settle(lo=0.9,hi=1.1,by=4e-4)@out;\
                    b:overshoot(max=1.3)@out;\
                    c:undershoot(min=-0.1)@n1;\
                    d:ramp(from=0,until=1e-3,tol=0.01)@n1;\
                    e:envelope(lo=-2,hi=2)@out;\
                    f:rise(lo=0.1,hi=0.9,within=2e-4)@out;\
                    g:ripple(after=5e-4,max=0.05)@out;\
                    h:fmask(f=1e4,max=0.2)@out;\
                    i:finite()@n1";
        let spec = MonitorSpec::parse(text).unwrap();
        assert_eq!(spec.len(), 9);
        assert_eq!(spec.props[0].channel, "out");
        assert_eq!(spec.props[3].property.code(), crate::codes::MON004);
        // envelope defaults
        assert_eq!(
            spec.props[4].property,
            Property::Envelope {
                lo: -2.0,
                hi: 2.0,
                from: 0.0,
                until: f64::INFINITY
            }
        );
        let back = MonitorSpec::parse(&spec.render()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for (text, needle) in [
            ("", "no properties"),
            ("x:settle(lo=1,hi=0,by=1)@out", "inverted"),
            ("x:settle(lo=0,hi=1)@out", "\"by\""),
            ("x:wiggle(a=1)@out", "unknown kind"),
            ("x:overshoot(max=1)", "@channel"),
            ("overshoot(max=1)@out", "name"),
            ("x:overshoot(max=abc)@out", "not a number"),
            ("x:overshoot(max=1,extra=2)@out", "does not take"),
            ("x:rise(lo=1,hi=0.5,within=1)@out", "lo < hi"),
            ("x:fmask(f=-5,max=1)@out", "f > 0"),
            ("x:ramp(from=2,until=1)@out", "empty"),
        ] {
            let err = MonitorSpec::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn builder_and_names_agree_with_parse() {
        let spec = MonitorSpec::new()
            .prop("p", "out", Property::Overshoot { max: 2.0 })
            .prop("q", "n1", Property::Finite);
        assert_eq!(spec.names(), vec!["p", "q"]);
        assert_eq!(spec.render(), "p:overshoot(max=2.0)@out;q:finite()@n1");
        assert_eq!(MonitorSpec::parse(&spec.render()).unwrap(), spec);
    }
}
