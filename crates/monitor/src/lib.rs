//! # ams-monitor — streaming temporal assertions over analog waveforms
//!
//! The paper's validation objective (designers must be able to *check*
//! mixed-signal behavior at the system level, not just plot it) needs a
//! layer that watches every waveform as it streams out of a solver and
//! renders a machine-checkable verdict. This crate is that layer: a
//! small property language ([`Property`], parsed from text by
//! [`MonitorSpec::parse`]) compiled into incremental **O(1)-per-sample
//! monitor automata** ([`Monitor`], grouped into a [`MonitorBank`]).
//!
//! Monitors follow the `ams-scope` hook discipline: no sample is ever
//! buffered — each automaton folds its state as samples arrive, so an
//! attached bank costs a few comparisons per accepted solver step and a
//! detached one costs a single branch. Violations latch the **first**
//! witness point (simulated time + offending value) and carry stable
//! diagnostic codes (`MON001`–`MON009`, see [`codes`]) that are
//! registry-synced with `DESIGN.md` exactly like the `ams-lint` codes.
//!
//! The crate is dependency-free by design: `ams-net` attaches banks to
//! MNA node probes, `ams-core` to TDF signals, and `ams-sweep` folds
//! per-scenario [`Verdict`]s into its reports — none of which this
//! crate needs to know about.
//!
//! # Example
//!
//! ```
//! use ams_monitor::{MonitorBank, MonitorSpec, Verdict};
//!
//! let spec = MonitorSpec::parse(
//!     "settled:settle(lo=0.9,hi=1.1,by=4.0)@out;\
//!      no_over:overshoot(max=1.3)@out",
//! )
//! .unwrap();
//! let mut bank = MonitorBank::new(&spec);
//!
//! // Feed a step response: rises, overshoots to 1.2, settles to 1.0.
//! for k in 0..100u32 {
//!     let t = f64::from(k) * 0.1;
//!     let v = 1.0 + 0.2 * (-t).exp() * (4.0 * t).cos();
//!     bank.feed(0, t, v);
//! }
//! let verdicts = bank.finish();
//! assert!(verdicts.iter().all(Verdict::is_pass));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod codes;
pub mod monitor;
pub mod property;

pub use bank::MonitorBank;
pub use monitor::{Monitor, Verdict, VERDICT_SLOTS};
pub use property::{MonitorSpec, Property, PropertySpec};
