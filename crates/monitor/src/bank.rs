//! A bank of monitors sharing a set of named channels.
//!
//! The bank is what solver layers attach: they resolve each channel
//! name to whatever they probe (an MNA node, a TDF signal) once at
//! attach time, then call [`MonitorBank::feed`] with the channel
//! *index* per accepted sample. Fan-out to the monitors watching that
//! channel is precomputed, so the per-sample cost is a slice walk over
//! exactly the interested automata.

use crate::monitor::{Monitor, Verdict};
use crate::property::MonitorSpec;

/// A compiled [`MonitorSpec`]: all monitors plus the channel table.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorBank {
    channels: Vec<String>,
    names: Vec<String>,
    monitors: Vec<Monitor>,
    by_channel: Vec<Vec<usize>>,
    samples: u64,
}

impl MonitorBank {
    /// Compiles every property in `spec`. Channel names are deduplicated
    /// in first-appearance order; [`MonitorBank::channels`] is the list
    /// the embedding layer must resolve and feed by index.
    pub fn new(spec: &MonitorSpec) -> MonitorBank {
        let mut channels: Vec<String> = Vec::new();
        let mut by_channel: Vec<Vec<usize>> = Vec::new();
        let mut monitors = Vec::with_capacity(spec.props.len());
        let mut names = Vec::with_capacity(spec.props.len());
        for (i, p) in spec.props.iter().enumerate() {
            let ch = match channels.iter().position(|c| *c == p.channel) {
                Some(ch) => ch,
                None => {
                    channels.push(p.channel.clone());
                    by_channel.push(Vec::new());
                    channels.len() - 1
                }
            };
            by_channel[ch].push(i);
            names.push(p.name.clone());
            monitors.push(Monitor::new(ch, p.property.clone()));
        }
        MonitorBank {
            channels,
            names,
            monitors,
            by_channel,
            samples: 0,
        }
    }

    /// Channel names in feed-index order.
    pub fn channels(&self) -> &[String] {
        &self.channels
    }

    /// Property names, in spec declaration order (= verdict order).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// `true` when the bank holds no monitors.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Total samples fed (across all channels).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The monitors, in spec declaration order.
    pub fn monitors(&self) -> &[Monitor] {
        &self.monitors
    }

    /// Feeds one sample of channel index `channel` (an index into
    /// [`MonitorBank::channels`]) to every monitor watching it.
    pub fn feed(&mut self, channel: usize, t: f64, v: f64) {
        self.samples += 1;
        for &i in &self.by_channel[channel] {
            self.monitors[i].feed(t, v);
        }
    }

    /// Feeds one sample per channel, `values[ch]` being channel `ch`'s
    /// value at time `t`. `values` must cover every channel.
    pub fn feed_all(&mut self, t: f64, values: &[f64]) {
        for (ch, &v) in values.iter().enumerate().take(self.channels.len()) {
            self.feed(ch, t, v);
        }
    }

    /// Verdicts in spec declaration order. Non-consuming: sweeps may
    /// snapshot verdicts at a checkpoint and keep feeding.
    pub fn finish(&self) -> Vec<Verdict> {
        self.monitors.iter().map(Monitor::finish).collect()
    }

    /// Resets every monitor to its freshly compiled state.
    pub fn reset(&mut self) {
        self.samples = 0;
        for m in &mut self.monitors {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Property;

    fn spec() -> MonitorSpec {
        MonitorSpec::parse(
            "over:overshoot(max=1.0)@out;\
             fin:finite()@in;\
             under:undershoot(min=-1.0)@out",
        )
        .unwrap()
    }

    #[test]
    fn channels_dedupe_in_first_appearance_order() {
        let bank = MonitorBank::new(&spec());
        assert_eq!(bank.channels(), ["out", "in"]);
        assert_eq!(bank.names(), ["over", "fin", "under"]);
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
    }

    #[test]
    fn feed_routes_to_watching_monitors_only() {
        let mut bank = MonitorBank::new(&spec());
        bank.feed(0, 0.0, 2.0); // trips "over", not "under" or "fin"
        bank.feed(1, 0.0, 0.5);
        let v = bank.finish();
        assert!(v[0].is_fail());
        assert!(v[1].is_pass());
        assert!(v[2].is_pass());
        assert_eq!(bank.samples(), 2);
    }

    #[test]
    fn feed_all_matches_per_channel_feeds() {
        let mut a = MonitorBank::new(&spec());
        let mut b = MonitorBank::new(&spec());
        for k in 0..10 {
            let t = f64::from(k) * 0.1;
            let out = 0.5 + 0.01 * f64::from(k);
            let inp = -0.5;
            a.feed_all(t, &[out, inp]);
            b.feed(0, t, out);
            b.feed(1, t, inp);
        }
        assert_eq!(a, b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn reset_matches_fresh_bank() {
        let mut bank = MonitorBank::new(&spec());
        bank.feed(0, 0.0, 5.0);
        bank.feed(1, 0.0, f64::NAN);
        bank.reset();
        assert_eq!(bank, MonitorBank::new(&spec()));
    }

    #[test]
    fn empty_spec_builds_empty_bank() {
        let bank = MonitorBank::new(&MonitorSpec::new());
        assert!(bank.is_empty());
        assert!(bank.finish().is_empty());
    }

    #[test]
    fn one_property_verdict_snapshot_then_continue() {
        let mut bank = MonitorBank::new(&MonitorSpec::new().prop(
            "s",
            "out",
            Property::Overshoot { max: 1.0 },
        ));
        bank.feed(0, 0.0, 0.5);
        assert!(bank.finish()[0].is_pass());
        bank.feed(0, 1.0, 2.0);
        assert!(bank.finish()[0].is_fail());
    }
}
