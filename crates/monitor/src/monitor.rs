//! The monitor automaton: one property folded over a sample stream.
//!
//! A [`Monitor`] holds O(1) state regardless of how many samples it
//! sees (the frequency-mask kind holds O(bins)). [`Monitor::feed`]
//! advances the automaton; [`Monitor::finish`] renders the [`Verdict`].
//! The first violation latches its witness point — later samples cannot
//! un-fail a monitor, and feeding a failed monitor is a no-op, so the
//! steady-state cost of a tripped monitor is a single branch.

use crate::codes;
use crate::property::Property;

/// Number of `f64` slots of the compact verdict encoding
/// ([`Verdict::encode`]): status, witness time, witness value.
pub const VERDICT_SLOTS: usize = 3;

/// The outcome of one property over one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The property was exercised and held.
    Pass,
    /// The run never exercised the property (window never opened, rise
    /// never armed, no samples): neither evidence for nor against.
    Vacuous,
    /// The property failed, with the first witness point.
    Fail {
        /// Stable violation code (`MON001`–`MON009`).
        code: &'static str,
        /// Simulated time of the first violating sample, seconds.
        t: f64,
        /// The violating value (the excursion or amplitude for ripple
        /// and frequency-mask checks).
        value: f64,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// `true` for [`Verdict::Vacuous`].
    pub fn is_vacuous(&self) -> bool {
        matches!(self, Verdict::Vacuous)
    }

    /// `true` for [`Verdict::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail { .. })
    }

    /// The violation code, `None` unless failed.
    pub fn code(&self) -> Option<&'static str> {
        match self {
            Verdict::Fail { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Packs the verdict into [`VERDICT_SLOTS`] `f64`s so verdicts can
    /// ride along metric rows through sharded sweep executors: status
    /// slot `0.0` = pass, `-1.0` = vacuous, `n > 0` = failed with code
    /// `MON00n`; slots 1/2 carry the witness `(t, value)` for failures
    /// and NaN otherwise.
    pub fn encode(&self) -> [f64; VERDICT_SLOTS] {
        match *self {
            Verdict::Pass => [0.0, f64::NAN, f64::NAN],
            Verdict::Vacuous => [-1.0, f64::NAN, f64::NAN],
            Verdict::Fail { code, t, value } => {
                let n = codes::code_number(code).unwrap_or(9);
                [f64::from(n), t, value]
            }
        }
    }

    /// Inverse of [`Verdict::encode`]. Unknown status slots decode as
    /// [`Verdict::Vacuous`] (negative) or a `MON009` failure (unmapped
    /// positive) rather than panicking.
    pub fn decode(slots: &[f64; VERDICT_SLOTS]) -> Verdict {
        if slots[0] == 0.0 {
            Verdict::Pass
        } else if slots[0] < 0.0 {
            Verdict::Vacuous
        } else {
            let code = codes::code_for_number(slots[0] as u16).unwrap_or(codes::MON009);
            Verdict::Fail {
                code,
                t: slots[1],
                value: slots[2],
            }
        }
    }

    /// Folds the verdict's exact bit pattern into an FNV-style hash
    /// step, for fingerprint-stable aggregation across worker counts.
    pub fn fold_bits(&self, mut fold: impl FnMut(u64)) {
        for slot in self.encode() {
            fold(slot.to_bits());
        }
    }
}

/// Latched first failure.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Failure {
    code: &'static str,
    t: f64,
    value: f64,
}

/// One streaming Goertzel-style bin: direct single-frequency DFT
/// accumulation (exact-angle per sample, so it stays correct under
/// adaptive, non-uniform time steps).
#[derive(Debug, Clone, PartialEq)]
struct Bin {
    f: f64,
    amax: f64,
    cr: f64,
    ci: f64,
}

/// Per-kind incremental state.
#[derive(Debug, Clone, PartialEq)]
enum St {
    /// Settle / overshoot / undershoot / envelope / finite: only need
    /// to know whether the property was ever exercised.
    Window { seen: bool },
    /// Monotone ramp: running peak inside the window.
    Ramp { peak: f64, seen: bool },
    /// Rise time: arm time at the `lo` crossing, completion latch.
    Rise { armed_at: Option<f64>, done: bool },
    /// Ripple: running min/max after the window opens.
    Ripple { min: f64, max: f64, seen: bool },
    /// Frequency mask: one accumulator per bin plus the sample count.
    Freq { bins: Vec<Bin>, n: u64 },
}

impl St {
    fn fresh(p: &Property) -> St {
        match p {
            Property::Settle { .. }
            | Property::Overshoot { .. }
            | Property::Undershoot { .. }
            | Property::Envelope { .. }
            | Property::Finite => St::Window { seen: false },
            Property::Ramp { .. } => St::Ramp {
                peak: f64::NEG_INFINITY,
                seen: false,
            },
            Property::Rise { .. } => St::Rise {
                armed_at: None,
                done: false,
            },
            Property::Ripple { .. } => St::Ripple {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                seen: false,
            },
            Property::FreqMask { bins } => St::Freq {
                bins: bins
                    .iter()
                    .map(|&(f, amax)| Bin {
                        f,
                        amax,
                        cr: 0.0,
                        ci: 0.0,
                    })
                    .collect(),
                n: 0,
            },
        }
    }
}

/// One compiled property: an incremental automaton over `(t, value)`
/// samples of a single channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Monitor {
    channel: usize,
    property: Property,
    failed: Option<Failure>,
    last_t: f64,
    st: St,
}

impl Monitor {
    /// Compiles `property` into an automaton watching bank channel
    /// index `channel`.
    pub fn new(channel: usize, property: Property) -> Monitor {
        let st = St::fresh(&property);
        Monitor {
            channel,
            property,
            failed: None,
            last_t: 0.0,
            st,
        }
    }

    /// The bank channel index this monitor watches.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// The property this monitor checks.
    pub fn property(&self) -> &Property {
        &self.property
    }

    /// The timestamp of the last sample fed (0.0 before any sample).
    pub fn last_time(&self) -> f64 {
        self.last_t
    }

    /// Discards all accumulated state (back to the freshly compiled
    /// automaton).
    pub fn reset(&mut self) {
        self.failed = None;
        self.last_t = 0.0;
        self.st = St::fresh(&self.property);
    }

    /// Feeds one sample. O(1); a no-op once a failure has latched.
    pub fn feed(&mut self, t: f64, v: f64) {
        if self.failed.is_some() {
            return;
        }
        self.last_t = t;
        if !v.is_finite() {
            self.failed = Some(Failure {
                code: codes::MON009,
                t,
                value: v,
            });
            return;
        }
        let fail = |code| Some(Failure { code, t, value: v });
        match (&self.property, &mut self.st) {
            (Property::Settle { lo, hi, by }, St::Window { seen }) => {
                if t >= *by {
                    *seen = true;
                    if v < *lo || v > *hi {
                        self.failed = fail(codes::MON001);
                    }
                }
            }
            (Property::Overshoot { max }, St::Window { seen }) => {
                *seen = true;
                if v > *max {
                    self.failed = fail(codes::MON002);
                }
            }
            (Property::Undershoot { min }, St::Window { seen }) => {
                *seen = true;
                if v < *min {
                    self.failed = fail(codes::MON003);
                }
            }
            (Property::Ramp { from, until, tol }, St::Ramp { peak, seen }) => {
                if t >= *from && t <= *until {
                    *seen = true;
                    if v > *peak {
                        *peak = v;
                    } else if v < *peak - *tol {
                        self.failed = fail(codes::MON004);
                    }
                }
            }
            (
                Property::Envelope {
                    lo,
                    hi,
                    from,
                    until,
                },
                St::Window { seen },
            ) => {
                if t >= *from && t <= *until {
                    *seen = true;
                    if v < *lo || v > *hi {
                        self.failed = fail(codes::MON005);
                    }
                }
            }
            (Property::Rise { lo, hi, within }, St::Rise { armed_at, done }) => {
                if !*done {
                    match *armed_at {
                        None => {
                            if v >= *lo {
                                *armed_at = Some(t);
                                if v >= *hi {
                                    *done = true;
                                }
                            }
                        }
                        Some(t0) => {
                            if t - t0 > *within {
                                self.failed = fail(codes::MON006);
                            } else if v >= *hi {
                                *done = true;
                            }
                        }
                    }
                }
            }
            (Property::Ripple { after, max: max_pp }, St::Ripple { min, max, seen }) => {
                if t >= *after {
                    *seen = true;
                    if v < *min {
                        *min = v;
                    }
                    if v > *max {
                        *max = v;
                    }
                    let pp = *max - *min;
                    if pp > *max_pp {
                        self.failed = Some(Failure {
                            code: codes::MON007,
                            t,
                            value: pp,
                        });
                    }
                }
            }
            (Property::FreqMask { .. }, St::Freq { bins, n }) => {
                for bin in bins.iter_mut() {
                    let phase = std::f64::consts::TAU * bin.f * t;
                    bin.cr += v * phase.cos();
                    bin.ci -= v * phase.sin();
                }
                *n += 1;
            }
            (Property::Finite, St::Window { seen }) => {
                *seen = true;
            }
            _ => unreachable!("state always matches property kind"),
        }
    }

    /// Renders the verdict for the samples seen so far. Non-consuming,
    /// so sweeps can snapshot verdicts at a prefix checkpoint and keep
    /// feeding forks.
    pub fn finish(&self) -> Verdict {
        if let Some(f) = self.failed {
            return Verdict::Fail {
                code: f.code,
                t: f.t,
                value: f.value,
            };
        }
        match &self.st {
            St::Window { seen } | St::Ramp { seen, .. } | St::Ripple { seen, .. } => {
                if *seen {
                    Verdict::Pass
                } else {
                    Verdict::Vacuous
                }
            }
            St::Rise { done, .. } => {
                // Armed-but-window-not-elapsed and never-armed both end
                // vacuous: the run produced no counter-evidence.
                if *done {
                    Verdict::Pass
                } else {
                    Verdict::Vacuous
                }
            }
            St::Freq { bins, n } => {
                if *n == 0 {
                    return Verdict::Vacuous;
                }
                let samples = *n as f64;
                for bin in bins {
                    let amp = 2.0 * (bin.cr * bin.cr + bin.ci * bin.ci).sqrt() / samples;
                    if amp > bin.amax {
                        return Verdict::Fail {
                            code: codes::MON008,
                            t: self.last_t,
                            value: amp,
                        };
                    }
                }
                Verdict::Pass
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: Property, samples: &[(f64, f64)]) -> Verdict {
        let mut m = Monitor::new(0, p);
        for &(t, v) in samples {
            m.feed(t, v);
        }
        m.finish()
    }

    #[test]
    fn settle_pass_fail_vacuous() {
        let p = Property::Settle {
            lo: 0.9,
            hi: 1.1,
            by: 1.0,
        };
        assert_eq!(
            run(p.clone(), &[(0.0, 5.0), (1.5, 1.0), (2.0, 1.05)]),
            Verdict::Pass
        );
        assert_eq!(
            run(p.clone(), &[(1.0, 1.0), (2.0, 1.2)]),
            Verdict::Fail {
                code: codes::MON001,
                t: 2.0,
                value: 1.2
            }
        );
        assert_eq!(run(p, &[(0.0, 5.0), (0.5, 2.0)]), Verdict::Vacuous);
    }

    #[test]
    fn bounds_latch_first_witness() {
        let p = Property::Overshoot { max: 1.3 };
        let v = run(p, &[(0.0, 1.0), (1.0, 1.4), (2.0, 1.9)]);
        assert_eq!(
            v,
            Verdict::Fail {
                code: codes::MON002,
                t: 1.0,
                value: 1.4
            }
        );
        let p = Property::Undershoot { min: -0.2 };
        assert_eq!(run(p, &[(0.0, 0.0), (1.0, -0.3)]).code(), Some("MON003"));
    }

    #[test]
    fn ramp_allows_dips_within_tolerance() {
        let p = Property::Ramp {
            from: 0.0,
            until: 10.0,
            tol: 0.1,
        };
        assert_eq!(
            run(
                p.clone(),
                &[(0.0, 0.0), (1.0, 0.5), (2.0, 0.45), (3.0, 1.0)]
            ),
            Verdict::Pass
        );
        assert_eq!(
            run(p, &[(0.0, 0.0), (1.0, 0.5), (2.0, 0.3)]).code(),
            Some("MON004")
        );
    }

    #[test]
    fn envelope_checks_only_inside_window() {
        let p = Property::Envelope {
            lo: -1.0,
            hi: 1.0,
            from: 1.0,
            until: 2.0,
        };
        assert_eq!(run(p.clone(), &[(0.0, 9.0), (1.5, 0.5)]), Verdict::Pass);
        assert_eq!(run(p.clone(), &[(1.5, 1.5)]).code(), Some("MON005"));
        assert_eq!(run(p, &[(0.0, 9.0), (3.0, 9.0)]), Verdict::Vacuous);
    }

    #[test]
    fn rise_time_semantics() {
        let p = Property::Rise {
            lo: 0.1,
            hi: 0.9,
            within: 1.0,
        };
        // Fast rise passes.
        assert_eq!(
            run(p.clone(), &[(0.0, 0.0), (1.0, 0.2), (1.5, 0.95)]),
            Verdict::Pass
        );
        // Deadline elapses before hi: fail.
        assert_eq!(
            run(p.clone(), &[(0.0, 0.2), (2.0, 0.5)]).code(),
            Some("MON006")
        );
        // Never armed: vacuous.
        assert_eq!(run(p.clone(), &[(0.0, 0.0), (1.0, 0.05)]), Verdict::Vacuous);
        // Armed but run ends inside window: vacuous.
        assert_eq!(run(p, &[(0.0, 0.2), (0.5, 0.5)]), Verdict::Vacuous);
    }

    #[test]
    fn ripple_reports_excursion_as_witness() {
        let p = Property::Ripple {
            after: 1.0,
            max: 0.1,
        };
        assert_eq!(
            run(p.clone(), &[(0.0, 9.0), (1.0, 1.0), (2.0, 1.05)]),
            Verdict::Pass
        );
        match run(p, &[(1.0, 1.0), (2.0, 1.2)]) {
            Verdict::Fail { code, t, value } => {
                assert_eq!(code, codes::MON007);
                assert_eq!(t, 2.0);
                assert!((value - 0.2).abs() < 1e-12);
            }
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn freq_mask_estimates_sine_amplitude() {
        // 0.4 V sine at 100 Hz, sampled at 10 kHz for one full second.
        let f0 = 100.0;
        let samples: Vec<(f64, f64)> = (0..10_000)
            .map(|k| {
                let t = f64::from(k) * 1e-4;
                (t, 0.4 * (std::f64::consts::TAU * f0 * t).sin())
            })
            .collect();
        let tight = Property::FreqMask {
            bins: vec![(f0, 0.3)],
        };
        match run(tight, &samples) {
            Verdict::Fail { code, value, .. } => {
                assert_eq!(code, codes::MON008);
                assert!((value - 0.4).abs() < 0.01, "amp estimate {value}");
            }
            other => panic!("expected fail, got {other:?}"),
        }
        let loose = Property::FreqMask {
            bins: vec![(f0, 0.5), (3.0 * f0, 0.05)],
        };
        assert_eq!(run(loose, &samples), Verdict::Pass);
        assert_eq!(
            run(
                Property::FreqMask {
                    bins: vec![(f0, 0.5)]
                },
                &[]
            ),
            Verdict::Vacuous
        );
    }

    #[test]
    fn non_finite_sample_fails_any_kind_with_mon009() {
        for p in [
            Property::Finite,
            Property::Overshoot { max: 1.0 },
            Property::FreqMask {
                bins: vec![(1.0, 1.0)],
            },
        ] {
            let v = run(p, &[(0.0, 0.5), (1.0, f64::NAN)]);
            assert_eq!(v.code(), Some(codes::MON009));
            match v {
                Verdict::Fail { t, value, .. } => {
                    assert_eq!(t, 1.0);
                    assert!(value.is_nan());
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let verdicts = [
            Verdict::Pass,
            Verdict::Vacuous,
            Verdict::Fail {
                code: codes::MON007,
                t: 1.25e-3,
                value: 0.375,
            },
            Verdict::Fail {
                code: codes::MON009,
                t: 2.0,
                value: f64::NAN,
            },
        ];
        for v in verdicts {
            let slots = v.encode();
            let back = Verdict::decode(&slots);
            // NaN != NaN, so compare through the encoding bits.
            let a: Vec<u64> = slots.iter().map(|s| s.to_bits()).collect();
            let b: Vec<u64> = back.encode().iter().map(|s| s.to_bits()).collect();
            assert_eq!(a, b, "{v:?}");
            assert_eq!(v.is_fail(), back.is_fail());
        }
    }

    #[test]
    fn reset_restores_the_fresh_automaton() {
        let mut m = Monitor::new(3, Property::Overshoot { max: 1.0 });
        m.feed(0.0, 2.0);
        assert!(m.finish().is_fail());
        m.reset();
        assert_eq!(m, Monitor::new(3, Property::Overshoot { max: 1.0 }));
        m.feed(0.0, 0.5);
        assert_eq!(m.finish(), Verdict::Pass);
    }
}
