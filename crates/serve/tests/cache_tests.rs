//! Topology-cache behavior through the public [`ServeHandle`] API:
//! hit/miss accounting, LRU eviction under a byte budget, and the
//! acceptance property — a warm job is bit-identical to a cold direct
//! run while performing zero symbolic analyses and zero lint passes.

use ams_serve::{JobSpec, ServeConfig, ServeHandle, TenantConfig};

fn service_with(cache_bytes: usize, workers: usize) -> (ServeHandle, String) {
    let handle = ServeHandle::start(ServeConfig {
        workers,
        cache_bytes,
        tenants: vec![TenantConfig::named("t")],
        ..ServeConfig::default()
    });
    let tenant = handle.tenant_token("t").expect("tenant registered");
    (handle, tenant)
}

fn run(handle: &ServeHandle, tenant: &str, job: &JobSpec) -> u64 {
    let token = handle.submit(tenant, job.clone()).expect("submit");
    handle.wait(tenant, &token).expect("job done").fingerprint()
}

#[test]
fn repeat_jobs_hit_the_cache() {
    let (handle, tenant) = service_with(64 << 20, 2);
    let job = JobSpec::demo_rc(8, 0xCAFE);

    run(&handle, &tenant, &job);
    let m = handle.metrics();
    assert_eq!(m.counter("serve.cache.misses"), 1);
    assert_eq!(m.counter("serve.cache.hits"), 0);
    assert_eq!(m.counter("serve.lint.runs"), 1);

    run(&handle, &tenant, &job);
    run(&handle, &tenant, &job);
    let m = handle.metrics();
    assert_eq!(
        m.counter("serve.cache.misses"),
        1,
        "same topology misses once"
    );
    assert_eq!(m.counter("serve.cache.hits"), 2);
    assert_eq!(
        m.counter("serve.lint.runs"),
        1,
        "lint runs once per topology"
    );
    assert!(m.gauge("serve.cache.entries").unwrap_or(0.0) > 0.0);

    handle.shutdown();
    handle.join();
}

#[test]
fn lru_eviction_respects_byte_budget() {
    // A budget of one byte can hold no second entry: every distinct
    // topology evicts the previous one, so re-running the first job
    // misses again.
    let (handle, tenant) = service_with(1, 1);
    let a = JobSpec::demo_rc(4, 1);
    let mut b = JobSpec::demo_rc(4, 1);
    // Different element value → different topology fingerprint.
    if let ams_serve::ElementKindSpec::Resistor(ohms) = &mut b.circuit.elements[1].kind {
        *ohms *= 2.0;
    } else {
        panic!("demo_rc element 1 should be a resistor");
    }
    assert_ne!(a.circuit.fingerprint(), b.circuit.fingerprint());

    run(&handle, &tenant, &a); // miss, insert a
    run(&handle, &tenant, &b); // miss, insert b, evict a
    run(&handle, &tenant, &a); // miss again: a was evicted
    let m = handle.metrics();
    assert_eq!(m.counter("serve.cache.misses"), 3);
    assert_eq!(m.counter("serve.cache.hits"), 0);
    assert!(m.counter("serve.cache.evictions") >= 2);

    handle.shutdown();
    handle.join();
}

#[test]
fn warm_run_is_bit_identical_to_cold_at_one_and_four_workers() {
    let job = JobSpec::demo_rc(24, 0xBEEF);
    // References: direct runs, no service, no cache.
    let direct1 = job.direct_run(1).expect("direct@1").fingerprint();
    let direct4 = job.direct_run(4).expect("direct@4").fingerprint();
    assert_eq!(direct1, direct4, "sweep engine must be worker-invariant");

    for workers in [1usize, 4] {
        let (handle, tenant) = service_with(64 << 20, workers);
        let cold = run(&handle, &tenant, &job);
        let sym_cold = handle.metrics().counter("serve.lu.symbolic_analyses");
        let lint_cold = handle.metrics().counter("serve.lint.runs");
        assert!(sym_cold >= 1, "cold run must analyze at least once");
        assert_eq!(lint_cold, 1);

        let warm = run(&handle, &tenant, &job);
        let m = handle.metrics();
        assert_eq!(
            m.counter("serve.lu.symbolic_analyses"),
            sym_cold,
            "warm run at {workers} workers must do 0 symbolic analyses"
        );
        assert_eq!(
            m.counter("serve.lint.runs"),
            1,
            "warm run at {workers} workers must do 0 lint passes"
        );
        assert_eq!(cold, direct1, "cold@{workers} differs from direct");
        assert_eq!(warm, direct1, "warm@{workers} differs from direct");

        handle.shutdown();
        handle.join();
    }
}

#[test]
fn negative_lint_verdicts_are_cached() {
    // Two parallel ideal voltage sources close a voltage-defined loop
    // (lint code MNA003) — denied by the default policy. The verdict —
    // not just the passing circuit — is cached, so resubmitting does
    // not re-lint.
    use ams_serve::{CircuitSpec, ElementKindSpec, ElementSpec, WaveSpec};
    let (handle, tenant) = service_with(64 << 20, 1);
    let mut job = JobSpec::demo_rc(4, 7);
    job.circuit = CircuitSpec {
        elements: vec![
            ElementSpec {
                name: "v1".into(),
                p: "top".into(),
                n: "0".into(),
                kind: ElementKindSpec::VoltageSource(WaveSpec::Dc(1.0)),
            },
            ElementSpec {
                name: "v2".into(),
                p: "top".into(),
                n: "0".into(),
                kind: ElementKindSpec::VoltageSource(WaveSpec::Dc(2.0)),
            },
            ElementSpec {
                name: "rload".into(),
                p: "top".into(),
                n: "0".into(),
                kind: ElementKindSpec::Resistor(1e3),
            },
        ],
    };
    job.binds.clear();
    job.metrics[0].node = "top".into();
    job.metrics[1].node = "top".into();

    for round in 0..2 {
        let token = handle.submit(&tenant, job.clone()).expect("submit");
        let err = handle.wait(&tenant, &token).expect_err("lint must reject");
        let msg = err.to_string();
        assert!(msg.contains("lint"), "round {round}: {msg}");
        if round == 1 {
            assert!(
                msg.contains("cached"),
                "round {round} should hit cache: {msg}"
            );
        }
    }
    let m = handle.metrics();
    assert_eq!(
        m.counter("serve.lint.runs"),
        1,
        "verdict cached after round 0"
    );
    assert_eq!(m.counter("serve.cache.hits"), 1);

    handle.shutdown();
    handle.join();
}
