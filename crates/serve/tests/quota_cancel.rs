//! Admission control: per-tenant quotas, cooperative cancellation at
//! scenario boundaries, and non-blocking backpressure.

use ams_serve::{JobSpec, ServeConfig, ServeError, ServeHandle, TenantConfig};
use std::time::{Duration, Instant};

/// A job slow enough to still be running when we poke at it: many
/// scenarios, tiny step. One scenario is a few ms of wall clock.
fn slow_job(scenarios: usize) -> JobSpec {
    let mut job = JobSpec::demo_rc(scenarios, 0x510);
    job.workers = 1;
    job
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn over_budget_submission_is_rejected_not_queued() {
    let handle = ServeHandle::start(ServeConfig {
        workers: 2,
        tenants: vec![TenantConfig {
            scenario_budget: 10,
            ..TenantConfig::named("small")
        }],
        ..ServeConfig::default()
    });
    let tenant = handle.tenant_token("small").expect("tenant");

    // 16 scenarios > the tenant's lifetime-budget of 10 in flight.
    let err = handle
        .submit(&tenant, JobSpec::demo_rc(16, 1))
        .expect_err("over-budget job must be rejected at submit");
    assert!(matches!(err, ServeError::Quota(_)), "got {err}");

    // A job inside the budget is admitted and completes.
    let token = handle
        .submit(&tenant, JobSpec::demo_rc(8, 1))
        .expect("fits");
    handle.wait(&tenant, &token).expect("runs fine");

    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_gives_backpressure_without_blocking() {
    let handle = ServeHandle::start(ServeConfig {
        workers: 1,
        tenants: vec![TenantConfig {
            max_queued: 2,
            max_concurrent_shards: 1,
            ..TenantConfig::named("t")
        }],
        ..ServeConfig::default()
    });
    let tenant = handle.tenant_token("t").expect("tenant");

    // One running + two queued fills the tenant's queue. Wait for the
    // first job to leave the queue — dispatch is asynchronous — before
    // topping the queue up.
    let mut tokens = vec![handle.submit(&tenant, slow_job(64)).expect("admitted")];
    assert!(wait_until(Duration::from_secs(10), || {
        handle.status(&tenant, &tokens[0]).expect("status").state != ams_serve::JobState::Queued
    }));
    for _ in 0..2 {
        tokens.push(handle.submit(&tenant, slow_job(64)).expect("admitted"));
    }
    // ...so the next submit must fail *immediately* (no blocking).
    let t0 = Instant::now();
    let err = handle
        .submit(&tenant, slow_job(64))
        .expect_err("queue is full");
    assert!(matches!(err, ServeError::Backpressure), "got {err}");
    assert!(
        t0.elapsed() < Duration::from_millis(200),
        "backpressure must not block the submitter ({:?})",
        t0.elapsed()
    );

    // Draining the backlog frees the queue again.
    for token in &tokens {
        handle.wait(&tenant, token).expect("backlog completes");
    }
    handle.submit(&tenant, slow_job(4)).expect("queue drained");

    handle.shutdown();
    handle.join();
}

#[test]
fn quota_capped_tenant_keeps_second_job_queued() {
    let handle = ServeHandle::start(ServeConfig {
        workers: 2,
        tenants: vec![TenantConfig {
            max_concurrent_shards: 1,
            ..TenantConfig::named("capped")
        }],
        ..ServeConfig::default()
    });
    let tenant = handle.tenant_token("capped").expect("tenant");

    let first = handle.submit(&tenant, slow_job(128)).expect("first");
    let second = handle
        .submit(&tenant, slow_job(128))
        .expect("second queued");

    // First job starts; second must stay queued even though a worker
    // slot is free (the tenant's shard quota is 1).
    assert!(wait_until(Duration::from_secs(10), || {
        handle.status(&tenant, &first).expect("status").state == ams_serve::JobState::Running
    }));
    let status = handle.status(&tenant, &second).expect("status");
    assert_eq!(
        status.state,
        ams_serve::JobState::Queued,
        "shard quota must hold the second job back"
    );

    // Cancel both; the queued one is withdrawn without ever running.
    handle.cancel(&tenant, &second).expect("cancel queued");
    assert_eq!(
        handle.status(&tenant, &second).expect("status").state,
        ams_serve::JobState::Cancelled
    );
    handle.cancel(&tenant, &first).expect("cancel running");

    handle.shutdown();
    handle.join();
}

#[test]
fn cancel_stops_within_a_scenario_boundary_and_frees_slots() {
    let handle = ServeHandle::start(ServeConfig {
        workers: 1,
        tenants: vec![TenantConfig::named("t")],
        ..ServeConfig::default()
    });
    let tenant = handle.tenant_token("t").expect("tenant");

    // A long job: 512 scenarios on one worker.
    let victim = handle.submit(&tenant, slow_job(512)).expect("victim");
    assert!(wait_until(Duration::from_secs(10), || {
        handle.status(&tenant, &victim).expect("status").state == ams_serve::JobState::Running
    }));
    handle.cancel(&tenant, &victim).expect("cancel running job");

    // Cooperative cancellation lands at the next scenario boundary —
    // well before the full 512-scenario sweep could have finished.
    let err = handle.wait(&tenant, &victim).expect_err("job cancelled");
    assert!(matches!(err, ServeError::Cancelled), "got {err}");
    let status = handle.status(&tenant, &victim).expect("status");
    assert_eq!(status.state, ams_serve::JobState::Cancelled);
    assert!(
        status.completed < status.total,
        "cancel must land before the sweep finishes ({} of {})",
        status.completed,
        status.total
    );

    // The worker slot is free again: a fresh job runs to completion.
    let next = handle.submit(&tenant, slow_job(4)).expect("slot freed");
    handle
        .wait(&tenant, &next)
        .expect("post-cancel job completes");

    handle.shutdown();
    handle.join();
}
