//! End-to-end daemon test over real TCP: two concurrent tenants on an
//! ephemeral port, authority-pair enforcement on the wire, and the
//! shutdown → drain → exit path.

use ams_serve::{daemon, JobSpec, ServeConfig, ServeHandle};
use ams_sweep::json::{parse, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;

struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: &std::net::SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        Wire {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// One request/response round trip; the raw reply object.
    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write nl");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        parse(reply.trim_end()).expect("reply is JSON")
    }

    fn ok(&mut self, line: &str) -> Json {
        let reply = self.roundtrip(line);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {line} failed: {}",
            reply.render()
        );
        reply
    }

    fn str_field(reply: &Json, key: &str) -> String {
        reply
            .get(key)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("reply lacks {key:?}"))
            .to_string()
    }
}

/// Daemon on an ephemeral port, driven by a private stop flag (the
/// process-global SIGTERM flag belongs to the example binary).
fn start_daemon(
    config: ServeConfig,
) -> (
    std::net::SocketAddr,
    ServeHandle,
    std::thread::JoinHandle<()>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");
    let handle = ServeHandle::start(config);
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let server = {
        let handle = handle.clone();
        std::thread::spawn(move || daemon::serve(&handle, listener, stop).expect("serve"))
    };
    (addr, handle, server)
}

#[test]
fn two_tenants_submit_over_tcp_and_get_identical_reports() {
    let (addr, handle, server) = start_daemon(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let admin = handle.admin_token().to_string();

    // Two tenants on two independent connections, same job.
    let job = JobSpec::demo_rc(12, 0xD0E).to_json().render();
    let run = |name: &'static str| {
        let admin = admin.clone();
        let job = job.clone();
        std::thread::spawn(move || {
            let mut wire = Wire::connect(&addr);
            let hello = wire.ok(&format!(
                r#"{{"op":"hello","admin":"{admin}","tenant":{{"name":"{name}"}}}}"#
            ));
            let tenant = Wire::str_field(&hello, "tenant_token");
            let submit = wire.ok(&format!(
                r#"{{"op":"submit","tenant":"{tenant}","job":{job}}}"#
            ));
            let token = Wire::str_field(&submit, "job_token");
            let result = wire.ok(&format!(
                r#"{{"op":"result","tenant":"{tenant}","job":"{token}"}}"#
            ));
            (tenant, token, Wire::str_field(&result, "fingerprint"))
        })
    };
    let a = run("alice");
    let b = run("bob");
    let (tenant_a, job_a, fp_a) = a.join().expect("alice");
    let (_, _, fp_b) = b.join().expect("bob");
    assert_eq!(fp_a, fp_b, "same job ⇒ same fingerprint for both tenants");

    // Authority boundary on the wire: a fresh connection with a random
    // tenant token, or the wrong (tenant, job) pair, is rejected.
    let mut wire = Wire::connect(&addr);
    let reply = wire.roundtrip(&format!(
        r#"{{"op":"submit","tenant":"tenant-0000","job":{job}}}"#
    ));
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("auth"));

    let hello = wire.ok(&format!(
        r#"{{"op":"hello","admin":"{admin}","tenant":{{"name":"mallory"}}}}"#
    ));
    let mallory = Wire::str_field(&hello, "tenant_token");
    let reply = wire.roundtrip(&format!(
        r#"{{"op":"status","tenant":"{mallory}","job":"{job_a}"}}"#
    ));
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("auth"),
        "mallory must not see alice's job: {}",
        reply.render()
    );
    // ...while the rightful owner still can.
    let mut wire = Wire::connect(&addr);
    let reply = wire.ok(&format!(
        r#"{{"op":"status","tenant":"{tenant_a}","job":"{job_a}"}}"#
    ));
    assert_eq!(reply.get("state").and_then(Json::as_str), Some("done"));

    // Wrong admin token cannot mint tenants or stop the service.
    let reply = wire.roundtrip(r#"{"op":"hello","admin":"admin-bogus","tenant":{"name":"x"}}"#);
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("auth"));
    let reply = wire.roundtrip(r#"{"op":"shutdown","admin":"admin-bogus"}"#);
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("auth"));

    // Authorized shutdown: the daemon acknowledges, drains, and the
    // accept loop exits.
    let reply = wire.ok(&format!(r#"{{"op":"shutdown","admin":"{admin}"}}"#));
    assert_eq!(reply.get("draining").and_then(Json::as_bool), Some(true));
    server.join().expect("daemon thread exits cleanly");
    assert!(handle.is_draining());
}
