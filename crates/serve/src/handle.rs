//! The in-process service: [`ServeHandle`].
//!
//! One dispatcher thread owns admission: it repeatedly asks the WFQ
//! scheduler for the next dispatchable job, leases worker slots from
//! the shared [`SlotPool`](ams_exec::SlotPool), and spawns a job
//! thread that runs the sweep. All mutable state lives behind one
//! mutex ([`Core`]) with one condvar for every wake-up (dispatcher,
//! `wait` callers, drain) — the daemon's concurrency is deliberately
//! boring.
//!
//! Authority model: the handle mints three kinds of unforgeable tokens
//! from a SplitMix64 stream over the config seed — the admin token
//! (tenant registration, stats, shutdown), tenant tokens (submitting),
//! and job tokens (status/poll/wait/cancel). Job operations require
//! the *pair* (tenant token, job token): a job token alone is not
//! enough, and a tenant can never address another tenant's job even by
//! guessing its token.

use crate::cache::{CacheEntry, JobCheckpoint, PartialScenario, TopologyCache};
use crate::model::{JobSpec, RunOpts};
use crate::sched::{wfq_pick, ServeConfig, TenantConfig, TenantState};
use crate::ServeError;
use ams_exec::{SlotLease, SlotPool};
use ams_lint::{lint_circuit, lint_space, LintPolicy, Verdict};
use ams_scope::MetricsRegistry;
use ams_sweep::{CancelToken, ScenarioResult, SweepReport, SweepSpec};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for admission.
    Queued,
    /// Executing on the worker pool.
    Running,
    /// Parked at a scenario boundary by [`ServeHandle::suspend`]: the
    /// completed scenarios are checkpointed in the topology cache and
    /// [`ServeHandle::resume`] re-queues the remainder. Not terminal —
    /// `wait` keeps blocking until the job is resumed or cancelled.
    Suspended,
    /// Completed; the report is available.
    Done,
    /// Ended in failure; the payload is the rendered cause.
    Failed(String),
    /// Cancelled before completion (queued or mid-run).
    Cancelled,
}

impl JobState {
    /// Whether the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        !matches!(
            self,
            JobState::Queued | JobState::Running | JobState::Suspended
        )
    }

    /// Stable wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Suspended => "suspended",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One streamed result event: `(global scenario index, metric row)`,
/// in completion order.
pub type ScenarioEvent = (usize, Vec<f64>);

/// Running totals of a monitored job's per-scenario verdicts: one
/// count per completed scenario and property, folded live from the
/// progress stream (and from the final report once the job is done).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorCounts {
    /// Properties that held with their trigger observed.
    pub pass: u64,
    /// Properties that latched a violation.
    pub fail: u64,
    /// Properties whose trigger never fired.
    pub vacuous: u64,
}

impl MonitorCounts {
    fn add(&mut self, v: &ams_sweep::Verdict) {
        match v {
            ams_sweep::Verdict::Pass => self.pass += 1,
            ams_sweep::Verdict::Fail { .. } => self.fail += 1,
            ams_sweep::Verdict::Vacuous => self.vacuous += 1,
        }
    }
}

/// A point-in-time job status snapshot.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Current lifecycle state.
    pub state: JobState,
    /// Scenarios completed so far (streamed).
    pub completed: usize,
    /// Total scenarios in the job.
    pub total: usize,
    /// Verdict totals so far — `Some` only for a monitored job.
    pub monitors: Option<MonitorCounts>,
}

/// SplitMix64 over a secret seed: the token mint. Tokens are 128 bits
/// of stream output rendered as hex — unguessable without the seed,
/// which never leaves the daemon.
#[derive(Debug)]
struct TokenMint {
    state: u64,
}

impl TokenMint {
    fn new(seed: u64) -> TokenMint {
        TokenMint { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn token(&mut self, prefix: &str) -> String {
        format!("{prefix}-{:016x}{:016x}", self.next_u64(), self.next_u64())
    }
}

#[derive(Debug)]
struct JobRecord {
    /// Owning tenant's *name* (resolved at submit).
    tenant: String,
    spec: JobSpec,
    scenarios: u64,
    shards: usize,
    state: JobState,
    /// Streamed `(scenario index, metric row)` events, arrival order.
    events: Vec<(usize, Vec<f64>)>,
    /// ScenarioResult-grade partials accumulated by the progress
    /// callback (monitor verdicts included). On suspend they move into
    /// the topology cache as a [`JobCheckpoint`]; on resume they come
    /// back and the retained re-run merges them into a report that
    /// fingerprints like an uninterrupted one.
    partial: Vec<PartialScenario>,
    /// Set by [`ServeHandle::suspend`] on a running job: the cancel
    /// token doubles as the suspend signal, and this flag tells the
    /// outcome handler to park the job instead of cancelling it.
    suspend: bool,
    /// Whether a checkpoint was stored for this job (so a resume that
    /// finds none can count the loss rather than a queued-suspend).
    checkpointed: bool,
    report: Option<SweepReport>,
    cancel: CancelToken,
}

impl JobRecord {
    /// Verdict totals for a monitored job: folded from the final report
    /// when one exists, otherwise from the streamed partials. `None`
    /// for an unmonitored job.
    fn monitor_counts(&self) -> Option<MonitorCounts> {
        self.spec.monitors.as_ref()?;
        let mut counts = MonitorCounts::default();
        match &self.report {
            Some(report) => {
                for sc in &report.scenarios {
                    for v in &sc.verdicts {
                        counts.add(v);
                    }
                }
            }
            None => {
                for (_, _, _, verdicts) in &self.partial {
                    for v in verdicts {
                        counts.add(v);
                    }
                }
            }
        }
        Some(counts)
    }

    fn status(&self) -> JobStatus {
        JobStatus {
            state: self.state.clone(),
            completed: self.events.len(),
            total: self.scenarios as usize,
            monitors: self.monitor_counts(),
        }
    }
}

struct Core {
    mint: TokenMint,
    tenants_by_token: HashMap<String, String>,
    tenants: BTreeMap<String, TenantState>,
    jobs: HashMap<String, JobRecord>,
    cache: TopologyCache,
    metrics: MetricsRegistry,
    draining: bool,
    running_jobs: usize,
}

impl Core {
    fn tenant_name(&self, token: &str) -> Result<String, ServeError> {
        self.tenants_by_token
            .get(token)
            .cloned()
            .ok_or(ServeError::Auth)
    }

    /// Resolves a (tenant token, job token) pair, enforcing the
    /// authority boundary: the job must exist *and* belong to the
    /// tenant the first token names.
    fn job_for(&self, tenant_token: &str, job_token: &str) -> Result<&JobRecord, ServeError> {
        let name = self.tenant_name(tenant_token)?;
        match self.jobs.get(job_token) {
            Some(rec) if rec.tenant == name => Ok(rec),
            _ => Err(ServeError::Auth),
        }
    }

    fn queued_total(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }
}

struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
    slots: SlotPool,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

/// A handle on a running service instance. Cheap to clone; all clones
/// address the same daemon state.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    admin: String,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle").finish_non_exhaustive()
    }
}

impl ServeHandle {
    /// Starts the service: seeds the token mint, registers the
    /// configured tenants, and spawns the dispatcher thread.
    pub fn start(config: ServeConfig) -> ServeHandle {
        let mut mint = TokenMint::new(config.seed);
        let admin = mint.token("admin");
        let mut core = Core {
            mint,
            tenants_by_token: HashMap::new(),
            tenants: BTreeMap::new(),
            jobs: HashMap::new(),
            cache: TopologyCache::new(config.cache_bytes),
            metrics: MetricsRegistry::new(),
            draining: false,
            running_jobs: 0,
        };
        for t in &config.tenants {
            let token = core.mint.token("tenant");
            core.tenants_by_token.insert(token, t.name.clone());
            core.tenants
                .insert(t.name.clone(), TenantState::new(t.clone()));
        }
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            cv: Condvar::new(),
            slots: SlotPool::new(config.workers),
            dispatcher: Mutex::new(None),
        });
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher")
        };
        *shared.dispatcher.lock().expect("dispatcher slot") = Some(dispatcher);
        ServeHandle { shared, admin }
    }

    /// The admin capability minted at startup. The daemon owner prints
    /// or configures this out of band; it authorizes tenant
    /// registration, stats and shutdown.
    pub fn admin_token(&self) -> &str {
        &self.admin
    }

    /// Registers a tenant and mints its submit capability.
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`] for a bad admin token,
    /// [`ServeError::Invalid`] for a duplicate tenant name,
    /// [`ServeError::Shutdown`] while draining.
    pub fn register_tenant(&self, admin: &str, config: TenantConfig) -> Result<String, ServeError> {
        if admin != self.admin {
            return Err(ServeError::Auth);
        }
        let mut core = self.lock();
        if core.draining {
            return Err(ServeError::Shutdown);
        }
        if core.tenants.contains_key(&config.name) {
            return Err(ServeError::invalid(format!(
                "tenant {:?} already registered",
                config.name
            )));
        }
        let token = core.mint.token("tenant");
        core.tenants_by_token
            .insert(token.clone(), config.name.clone());
        core.tenants
            .insert(config.name.clone(), TenantState::new(config));
        Ok(token)
    }

    /// The tenant token minted at startup for a tenant that was listed
    /// in [`ServeConfig::tenants`] (test convenience — over the wire,
    /// tokens come back from registration).
    pub fn tenant_token(&self, name: &str) -> Option<String> {
        let core = self.lock();
        core.tenants_by_token
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(t, _)| t.clone())
    }

    /// Submits a job, returning its unforgeable job token. The call
    /// never blocks on a full queue: over-depth submits fail fast with
    /// [`ServeError::Backpressure`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`] (bad tenant token),
    /// [`ServeError::Invalid`] (malformed job, or a job whose whole
    /// parameter space is statically doomed — the space-admission
    /// message carries the `SPC` code and a witness box),
    /// [`ServeError::Quota`] (job can never fit the tenant's scenario
    /// budget), [`ServeError::Backpressure`], [`ServeError::Shutdown`].
    pub fn submit(&self, tenant_token: &str, spec: JobSpec) -> Result<String, ServeError> {
        // Validate the sweep and monitor declarations before touching
        // any state: a malformed property spec fails the submit, never
        // a queued job.
        spec.sweep.to_spec()?;
        let monitor_spec = spec.monitor_spec()?;
        if let Some(ms) = &monitor_spec {
            // Node names exist by being mentioned as element terminals,
            // so a dangling channel is detectable without elaborating.
            for ch in ms.props.iter().map(|p| p.channel.as_str()) {
                let known = ch == "0"
                    || ch == "gnd"
                    || spec.circuit.elements.iter().any(|e| e.p == ch || e.n == ch);
                if !known {
                    return Err(ServeError::invalid(format!(
                        "monitor channel {ch:?} names no circuit node"
                    )));
                }
            }
        }
        let monitored = monitor_spec.is_some();
        // Space admission: prove the job's parameter box clean — or
        // reject it here, with the same `SPC` code and witness the
        // library's sweep gate would report, before it costs a queue
        // slot. Where the library *prunes* doomed scenarios, the
        // service *rejects* the job: a client that submitted a doomed
        // box should learn about it, not silently get fewer rows back.
        self.space_admit(&spec)?;
        let scenarios = spec.scenario_count() as u64;
        let mut core = self.lock();
        if core.draining {
            return Err(ServeError::Shutdown);
        }
        let name = core.tenant_name(tenant_token)?;
        let tenant = core.tenants.get_mut(&name).expect("tenant state");
        if scenarios > tenant.config.scenario_budget {
            return Err(ServeError::Quota(format!(
                "job has {scenarios} scenarios, tenant budget is {}",
                tenant.config.scenario_budget
            )));
        }
        if tenant.queue.len() >= tenant.config.max_queued {
            return Err(ServeError::Backpressure);
        }
        let shards = spec.workers.clamp(1, tenant.config.max_concurrent_shards);
        let token = {
            let t = core.mint.token("job");
            core.jobs.insert(
                t.clone(),
                JobRecord {
                    tenant: name.clone(),
                    spec,
                    scenarios,
                    shards,
                    state: JobState::Queued,
                    events: Vec::new(),
                    partial: Vec::new(),
                    suspend: false,
                    checkpointed: false,
                    report: None,
                    cancel: CancelToken::new(),
                },
            );
            t
        };
        core.tenants
            .get_mut(&name)
            .expect("tenant state")
            .queue
            .push_back(token.clone());
        core.metrics.counter_add("serve.jobs.submitted", 1);
        if monitored {
            core.metrics.counter_add("serve.monitor.jobs", 1);
        }
        drop(core);
        self.shared.cv.notify_all();
        Ok(token)
    }

    /// The space-admission gate behind [`ServeHandle::submit`]: runs
    /// the `ams-lint::space` pass over the job's parameter box once per
    /// `(topology, space spec)` fingerprint pair and caches the verdict
    /// — positive or negative — so every later submit of the same pair
    /// replays it for free.
    fn space_admit(&self, spec: &JobSpec) -> Result<(), ServeError> {
        // No binds means a trivial parameter space: the sweep varies
        // nothing, so the per-topology lint verdict (cached on the
        // execute path) already covers the job — nothing to prove here.
        if spec.binds.is_empty() {
            return Ok(());
        }
        let sspec = spec.space_spec();
        // Keyed by *topology*, not job identity: monitors play no part
        // in the space verdict.
        let key = (spec.circuit.fingerprint(), sspec.fingerprint());
        {
            let mut core = self.lock();
            if let Some(verdict) = core.cache.space_lookup(key) {
                return match verdict {
                    Some(msg) => Err(ServeError::invalid(msg.clone())),
                    None => Ok(()),
                };
            }
        }
        // Cold: elaborate and analyze off-lock, then publish the
        // verdict for every future submit of this pair.
        let built = spec.circuit.build()?;
        let report = lint_space("serve", &built.circuit, &sspec);
        let denied = LintPolicy::default().denied(&report.report);
        let rejection = (!denied.is_empty()).then(|| {
            use std::fmt::Write;
            let mut msg = String::from("space lint rejected:");
            for d in &denied {
                let _ = write!(msg, " [{}] {}", d.code, d.message);
                if let Some(Verdict::ProvedViolated(witness)) = report.verdict(d.code) {
                    let _ = write!(msg, " (witness {witness})");
                }
            }
            msg
        });
        let mut core = self.lock();
        core.cache.space_insert(key, rejection.clone());
        if rejection.is_some() {
            core.metrics.counter_add("serve.space.rejects", 1);
        }
        drop(core);
        match rejection {
            Some(msg) => Err(ServeError::invalid(msg)),
            None => Ok(()),
        }
    }

    /// Snapshot of a job's state and progress.
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`] unless the (tenant, job) pair matches.
    pub fn status(&self, tenant_token: &str, job_token: &str) -> Result<JobStatus, ServeError> {
        let core = self.lock();
        let rec = core.job_for(tenant_token, job_token)?;
        Ok(rec.status())
    }

    /// Streaming delivery: per-scenario `(index, metric row)` events
    /// from cursor `from` onward, plus the current status. Events are
    /// in completion order; a client polls with its last cursor to
    /// consume the stream incrementally while the job runs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`] unless the (tenant, job) pair matches.
    pub fn poll(
        &self,
        tenant_token: &str,
        job_token: &str,
        from: usize,
    ) -> Result<(Vec<ScenarioEvent>, JobStatus), ServeError> {
        let core = self.lock();
        let rec = core.job_for(tenant_token, job_token)?;
        let events = rec.events[from.min(rec.events.len())..].to_vec();
        Ok((events, rec.status()))
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// report. A suspended job keeps `wait` blocked until someone
    /// resumes or cancels it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`], [`ServeError::Failed`] with the rendered
    /// cause, or [`ServeError::Cancelled`].
    pub fn wait(&self, tenant_token: &str, job_token: &str) -> Result<SweepReport, ServeError> {
        let mut core = self.lock();
        loop {
            let rec = core.job_for(tenant_token, job_token)?;
            match &rec.state {
                JobState::Done => {
                    return Ok(rec.report.clone().expect("done job has a report"));
                }
                JobState::Failed(msg) => return Err(ServeError::Failed(msg.clone())),
                JobState::Cancelled => return Err(ServeError::Cancelled),
                JobState::Queued | JobState::Running | JobState::Suspended => {
                    core = self.shared.cv.wait(core).expect("serve core poisoned");
                }
            }
        }
    }

    /// Cancels a job. A queued job is withdrawn immediately; a running
    /// job observes its token at the next scenario boundary, stops,
    /// and frees its worker slots; a suspended job is cancelled in
    /// place and its checkpoint discarded. Cancelling a terminal job
    /// is a no-op. A cancel overrides a pending suspend: if both race
    /// on a running job, it ends [`JobState::Cancelled`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`] unless the (tenant, job) pair matches.
    pub fn cancel(&self, tenant_token: &str, job_token: &str) -> Result<(), ServeError> {
        let mut core = self.lock();
        let tenant = core.job_for(tenant_token, job_token)?.tenant.clone();
        let rec = core.jobs.get_mut(job_token).expect("job exists");
        match rec.state {
            JobState::Queued => {
                rec.state = JobState::Cancelled;
                rec.cancel.cancel();
                let t = core.tenants.get_mut(&tenant).expect("tenant state");
                t.queue.retain(|j| j != job_token);
                core.metrics.counter_add("serve.jobs.cancelled", 1);
            }
            JobState::Running => {
                rec.suspend = false;
                rec.cancel.cancel();
            }
            JobState::Suspended => {
                rec.state = JobState::Cancelled;
                rec.suspend = false;
                rec.checkpointed = false;
                rec.partial.clear();
                core.cache.checkpoint_discard(job_token);
                core.metrics.counter_add("serve.jobs.cancelled", 1);
            }
            _ => {}
        }
        drop(core);
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Suspends a job at the next scenario boundary. A queued job is
    /// parked immediately (no checkpoint — nothing ran); a running job
    /// observes its cancel token at the boundary, and its completed
    /// scenarios are persisted as a [`JobCheckpoint`] in the topology
    /// cache under the LRU byte budget. Suspending a terminal or
    /// already-suspended job is a no-op, and a suspend that races a
    /// completing run simply loses: the job finishes `Done`.
    ///
    /// A job left suspended at drain time never completes — resume or
    /// cancel it before `shutdown`/`join`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`] unless the (tenant, job) pair matches.
    pub fn suspend(&self, tenant_token: &str, job_token: &str) -> Result<(), ServeError> {
        let mut core = self.lock();
        let tenant = core.job_for(tenant_token, job_token)?.tenant.clone();
        let rec = core.jobs.get_mut(job_token).expect("job exists");
        match rec.state {
            JobState::Queued => {
                rec.state = JobState::Suspended;
                let t = core.tenants.get_mut(&tenant).expect("tenant state");
                t.queue.retain(|j| j != job_token);
                core.metrics.counter_add("serve.jobs.suspended", 1);
            }
            // A cancel already in flight wins; otherwise the cancel
            // token doubles as the suspend signal and the outcome
            // handler parks the job instead of cancelling it.
            JobState::Running if !rec.cancel.is_cancelled() => {
                rec.suspend = true;
                rec.cancel.cancel();
            }
            _ => {}
        }
        drop(core);
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Resumes a suspended job: restores its checkpoint from the
    /// topology cache and re-queues it. Only the scenarios the
    /// checkpoint does not hold run again; the final report — indices,
    /// labels, metric rows, solver counters and fingerprint — is
    /// indistinguishable from an uninterrupted run. When the byte
    /// budget evicted the checkpoint, everything re-runs, which by
    /// determinism yields the same report (the loss is counted in
    /// `serve.checkpoint.lost`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Auth`] unless the (tenant, job) pair matches,
    /// [`ServeError::Invalid`] unless the job is suspended,
    /// [`ServeError::Shutdown`] while draining.
    pub fn resume(&self, tenant_token: &str, job_token: &str) -> Result<(), ServeError> {
        let mut core = self.lock();
        if core.draining {
            return Err(ServeError::Shutdown);
        }
        let tenant = {
            let rec = core.job_for(tenant_token, job_token)?;
            if rec.state != JobState::Suspended {
                return Err(ServeError::invalid(format!(
                    "cannot resume a {} job",
                    rec.state.tag()
                )));
            }
            rec.tenant.clone()
        };
        let restored = core.cache.checkpoint_take(job_token);
        match &restored {
            Some(cp) => {
                core.metrics.counter_add("serve.checkpoint.restored", 1);
                core.metrics
                    .counter_add("serve.checkpoint.scenarios_restored", cp.done.len() as u64);
            }
            None => {
                if core.jobs[job_token].checkpointed {
                    core.metrics.counter_add("serve.checkpoint.lost", 1);
                }
            }
        }
        let rec = core.jobs.get_mut(job_token).expect("job exists");
        rec.checkpointed = false;
        rec.suspend = false;
        // The old token is permanently cancelled — the resumed run
        // needs a fresh one (handle.cancel() addresses the new token).
        rec.cancel = CancelToken::new();
        rec.state = JobState::Queued;
        match restored {
            Some(cp) => rec.partial = cp.done,
            None => {
                // Nothing restored: the whole job re-runs, so the event
                // stream restarts from scratch too.
                rec.partial.clear();
                rec.events.clear();
            }
        }
        core.metrics.counter_add("serve.jobs.resumed", 1);
        core.tenants
            .get_mut(&tenant)
            .expect("tenant state")
            .queue
            .push_back(job_token.to_string());
        drop(core);
        self.shared.cv.notify_all();
        Ok(())
    }

    /// A snapshot of the service metrics (`serve.*` counters and
    /// gauges, including the topology-cache accounting).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut core = self.lock();
        let queued = core.queued_total() as f64;
        let running = core.running_jobs as f64;
        let Core { cache, metrics, .. } = &mut *core;
        cache.export_metrics(metrics);
        metrics.gauge_set("serve.queue.depth", queued);
        metrics.gauge_set("serve.jobs.running", running);
        metrics.clone()
    }

    /// Begins draining: new submits and registrations are rejected,
    /// queued and running jobs complete normally. Idempotent.
    pub fn shutdown(&self) {
        self.lock().draining = true;
        self.shared.cv.notify_all();
    }

    /// Whether [`ServeHandle::shutdown`] has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Waits for the drain to finish (dispatcher exited, all jobs
    /// terminal). Call after [`ServeHandle::shutdown`]; joining without
    /// draining first would block forever, so this panics if called
    /// while accepting.
    pub fn join(&self) {
        assert!(self.is_draining(), "join() requires shutdown() first");
        let handle = self
            .shared
            .dispatcher
            .lock()
            .expect("dispatcher slot")
            .take();
        if let Some(h) = handle {
            h.join().expect("dispatcher panicked");
        }
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.shared.core.lock().expect("serve core poisoned")
    }
}

/// One admission decision, handed from the dispatcher to a job thread.
struct Dispatch {
    job_token: String,
    spec: JobSpec,
    cancel: CancelToken,
    lease: SlotLease,
}

fn dispatch_loop(shared: &Arc<Shared>) {
    loop {
        let dispatch = {
            let mut core = shared.core.lock().expect("serve core poisoned");
            loop {
                if core.draining && core.queued_total() == 0 && core.running_jobs == 0 {
                    return;
                }
                if let Some(d) = try_dispatch(&mut core, &shared.slots) {
                    break d;
                }
                core = shared.cv.wait(core).expect("serve core poisoned");
            }
        };
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("serve-job".into())
            .spawn(move || run_job(&shared, dispatch))
            .expect("spawn job thread");
    }
}

/// The WFQ admission step, under the core lock. Returns `None` when
/// nothing can dispatch right now (empty queues, quota-blocked
/// tenants, or — head-of-line — the winner's slots are not free yet).
fn try_dispatch(core: &mut Core, slots: &SlotPool) -> Option<Dispatch> {
    // Tenants whose head job fits their own quota compete; the WFQ
    // winner among them is the only one allowed to take slots (no
    // queue-jumping past a slot-starved winner by design).
    let eligible = core.tenants.values().filter(|t| {
        t.queue.front().is_some_and(|job| {
            core.jobs
                .get(job)
                .is_some_and(|rec| t.fits_quota(rec.scenarios, rec.shards))
        })
    });
    let winner = wfq_pick(eligible)?.config.name.clone();
    let job_token = core.tenants[&winner].queue.front().expect("head").clone();
    let (scenarios, shards) = {
        let rec = &core.jobs[&job_token];
        (rec.scenarios, rec.shards)
    };
    let lease = slots.try_acquire(shards)?;
    let tenant = core.tenants.get_mut(&winner).expect("tenant state");
    tenant.queue.pop_front();
    tenant.charge(scenarios, lease.count());
    core.running_jobs += 1;
    let rec = core.jobs.get_mut(&job_token).expect("job exists");
    rec.state = JobState::Running;
    rec.shards = lease.count();
    Some(Dispatch {
        job_token,
        spec: rec.spec.clone(),
        cancel: rec.cancel.clone(),
        lease,
    })
}

/// Runs one admitted job to a terminal state. Owns the slot lease for
/// the duration; dropping it (normal return or panic) frees the slots.
fn run_job(shared: &Arc<Shared>, dispatch: Dispatch) {
    let Dispatch {
        job_token,
        spec,
        cancel,
        lease,
    } = dispatch;
    // Cache entries are keyed by topology: jobs that differ only in
    // monitors still share the elaborated circuit, lint verdict and
    // symbolic factor.
    let fp = spec.circuit.fingerprint();
    let outcome = execute(shared, &job_token, &spec, fp, &cancel, lease.count());
    let mut core = shared.core.lock().expect("serve core poisoned");
    let rec = core.jobs.get_mut(&job_token).expect("job exists");
    let (scenarios, shards, tenant) = (rec.scenarios, rec.shards, rec.tenant.clone());
    match outcome {
        Ok(report) => {
            let totals = report.totals();
            core.metrics
                .counter_add("serve.lu.symbolic_analyses", totals.solve.symbolic_analyses);
            core.metrics
                .counter_add("serve.lu.numeric_refactors", totals.solve.numeric_refactors);
            core.metrics.counter_add("serve.jobs.completed", 1);
            let rec = core.jobs.get_mut(&job_token).expect("job exists");
            rec.report = Some(report);
            rec.state = JobState::Done;
            // A suspend that raced the completing run lost; the
            // partials are folded into the report already.
            rec.suspend = false;
            rec.partial.clear();
        }
        Err(ServeError::Cancelled) => {
            let suspend = {
                let rec = core.jobs.get_mut(&job_token).expect("job exists");
                std::mem::take(&mut rec.suspend)
            };
            if suspend {
                // Clone rather than drain: the record keeps its
                // partials so `status` (progress + verdict counts)
                // stays truthful while the job sits suspended. Resume
                // overwrites them from the checkpoint (or clears them
                // when the checkpoint was evicted).
                let done = {
                    let rec = core.jobs.get_mut(&job_token).expect("job exists");
                    rec.state = JobState::Suspended;
                    rec.checkpointed = true;
                    rec.partial.clone()
                };
                core.cache
                    .checkpoint_insert(&job_token, JobCheckpoint::new(done));
                core.metrics.counter_add("serve.jobs.suspended", 1);
                core.metrics.counter_add("serve.checkpoint.stored", 1);
            } else {
                core.metrics.counter_add("serve.jobs.cancelled", 1);
                core.jobs.get_mut(&job_token).expect("job exists").state = JobState::Cancelled;
            }
        }
        Err(e) => {
            core.metrics.counter_add("serve.jobs.failed", 1);
            let rec = core.jobs.get_mut(&job_token).expect("job exists");
            rec.suspend = false;
            rec.partial.clear();
            rec.state = JobState::Failed(e.to_string());
        }
    }
    core.tenants
        .get_mut(&tenant)
        .expect("tenant state")
        .release(scenarios, shards);
    core.running_jobs -= 1;
    drop(core);
    drop(lease);
    shared.cv.notify_all();
}

/// The cache-aware execution path: resolve the topology (warm or
/// cold), then run the sweep with streaming progress.
fn execute(
    shared: &Arc<Shared>,
    job_token: &str,
    spec: &JobSpec,
    fp: u64,
    cancel: &CancelToken,
    workers: usize,
) -> Result<SweepReport, ServeError> {
    let mut sweep_spec = spec.sweep.to_spec()?;

    // A resumed job carries checkpoint-restored partials: re-run only
    // the scenarios the checkpoint does not hold. `retain` keeps the
    // original indices and per-scenario seeds, so the remaining rows
    // are bit-identical to what an uninterrupted run would produce.
    let restored: Vec<PartialScenario> = {
        let core = shared.core.lock().expect("serve core poisoned");
        core.jobs
            .get(job_token)
            .map(|r| r.partial.clone())
            .unwrap_or_default()
    };
    if !restored.is_empty() {
        let done: std::collections::HashSet<usize> =
            restored.iter().map(|(i, _, _, _)| *i).collect();
        sweep_spec.retain(|s| !done.contains(&s.index()));
        if sweep_spec.is_empty() {
            // Every scenario was already checkpointed: the report is
            // the checkpoint, no simulation left to run.
            let mut report = SweepReport {
                metric_names: spec.metrics.iter().map(|m| m.name.clone()).collect(),
                monitor_names: spec.monitor_spec()?.map(|s| s.names()).unwrap_or_default(),
                scenarios: Vec::new(),
                exec: ams_exec::ExecStats::default(),
                trace: None,
                lanes: 1,
                bundles: 0,
                space_pruned: Vec::new(),
                prefix_forks: 0,
                prefix_steps: 0,
            };
            merge_restored(&mut report, restored, &spec.sweep.to_spec()?);
            return Ok(report);
        }
    }

    // Resolve the topology against the cache.
    let cached = {
        let mut core = shared.core.lock().expect("serve core poisoned");
        core.cache
            .lookup(fp)
            .map(|e| (e.built.clone(), e.lint_rejected.clone(), e.factor.clone()))
    };
    let (built, hint, cold) = match cached {
        Some((_, Some(msg), _)) => {
            return Err(ServeError::Failed(format!("lint rejected (cached): {msg}")));
        }
        Some((built, None, factor)) => (built, factor, false),
        None => {
            // Cold: elaborate and lint off-lock, then publish the
            // verdict (positive or negative) for every future job.
            let built = spec.circuit.build()?;
            let report = lint_circuit("serve", &built.circuit);
            let policy = LintPolicy::default();
            let denied = policy.denied(&report);
            let rejection = (!denied.is_empty()).then(|| {
                denied
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            });
            let mut core = shared.core.lock().expect("serve core poisoned");
            core.cache.count_lint_run();
            core.cache
                .insert(fp, CacheEntry::new(built.clone(), rejection.clone()));
            drop(core);
            if let Some(msg) = rejection {
                return Err(ServeError::Failed(format!("lint rejected: {msg}")));
            }
            (built, None, true)
        }
    };

    let prepared = spec.prepare_with(built)?;
    let progress: ams_sweep::ProgressFn = {
        let shared = shared.clone();
        let token = job_token.to_string();
        Arc::new(
            move |index, row: &[f64], stats, verdicts: &[ams_sweep::Verdict]| {
                let mut core = shared.core.lock().expect("serve core poisoned");
                core.metrics.counter_add("serve.scenarios.completed", 1);
                for v in verdicts {
                    let name = match v {
                        ams_sweep::Verdict::Pass => "serve.monitor.pass",
                        ams_sweep::Verdict::Fail { .. } => "serve.monitor.fail",
                        ams_sweep::Verdict::Vacuous => "serve.monitor.vacuous",
                    };
                    core.metrics.counter_add(name, 1);
                }
                if let Some(rec) = core.jobs.get_mut(&token) {
                    rec.events.push((index, row.to_vec()));
                    rec.partial
                        .push((index, row.to_vec(), *stats, verdicts.to_vec()));
                }
                drop(core);
                shared.cv.notify_all();
            },
        )
    };
    let sink: ams_sweep::FactorSink = Arc::new(Mutex::new(None));
    let result = prepared.run(
        &sweep_spec,
        workers,
        RunOpts {
            pre_linted: true,
            symbolic_hint: hint,
            cancel: Some(cancel.clone()),
            progress: Some(progress),
            factor_sink: cold.then(|| sink.clone()),
        },
    );

    // Publish the factor scenario 0 exported, even when the run was
    // later cancelled — the analysis is valid and paid for.
    if cold {
        if let Some(factor) = sink.lock().expect("factor sink poisoned").take() {
            let mut core = shared.core.lock().expect("serve core poisoned");
            core.cache.store_factor(fp, factor);
        }
    }
    let mut report = result?;
    if !restored.is_empty() {
        merge_restored(&mut report, restored, &spec.sweep.to_spec()?);
    }
    Ok(report)
}

/// Splices checkpoint-restored scenarios back into a resumed run's
/// report, in index order, with labels recomputed from the full spec.
/// The merged report is indistinguishable — fingerprint included —
/// from one uninterrupted run over the whole sweep.
fn merge_restored(report: &mut SweepReport, restored: Vec<PartialScenario>, full: &SweepSpec) {
    for (index, metrics, stats, verdicts) in restored {
        let label = full
            .scenarios()
            .iter()
            .find(|s| s.index() == index)
            .map(|s| s.label())
            .unwrap_or_else(|| format!("#{index}"));
        report.scenarios.push(ScenarioResult {
            index,
            label,
            metrics,
            stats,
            verdicts,
        });
    }
    report.scenarios.sort_by_key(|s| s.index);
    report.exec.windows = report.scenarios.len() as u64;
    report.exec.clusters = report
        .scenarios
        .iter()
        .map(|s| (s.label.clone(), s.stats))
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_mint_is_deterministic_per_seed_and_distinct() {
        let mut a = TokenMint::new(7);
        let mut b = TokenMint::new(7);
        let t1 = a.token("x");
        assert_eq!(t1, b.token("x"));
        assert_ne!(t1, a.token("x"));
        let mut c = TokenMint::new(8);
        assert_ne!(c.token("x"), t1);
    }

    #[test]
    fn end_to_end_submit_wait() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let job = handle.submit(&tenant, JobSpec::demo_rc(4, 3)).unwrap();
        let report = handle.wait(&tenant, &job).unwrap();
        assert_eq!(report.scenarios.len(), 4);
        let status = handle.status(&tenant, &job).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.completed, 4);
        // Streaming covered every scenario exactly once.
        let (events, _) = handle.poll(&tenant, &job, 0).unwrap();
        let mut idx: Vec<usize> = events.iter().map(|(i, _)| *i).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn authority_pairs_are_enforced() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 1,
            tenants: vec![TenantConfig::named("a"), TenantConfig::named("b")],
            ..ServeConfig::default()
        });
        let ta = handle.tenant_token("a").unwrap();
        let tb = handle.tenant_token("b").unwrap();
        let job = handle.submit(&ta, JobSpec::demo_rc(2, 0)).unwrap();
        // Tenant b cannot address tenant a's job, even with the real
        // job token; nor do forged tokens resolve.
        assert!(matches!(handle.status(&tb, &job), Err(ServeError::Auth)));
        assert!(matches!(
            handle.status("tenant-feedbeef", &job),
            Err(ServeError::Auth)
        ));
        assert!(matches!(
            handle.status(&ta, "job-0000000000000000"),
            Err(ServeError::Auth)
        ));
        assert!(matches!(
            handle.register_tenant("admin-nope", TenantConfig::named("c")),
            Err(ServeError::Auth)
        ));
        assert!(handle.wait(&ta, &job).is_ok());
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn space_admission_rejects_doomed_boxes_and_caches_the_verdict() {
        use crate::model::SweepDecl;
        let handle = ServeHandle::start(ServeConfig {
            workers: 1,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        // Drive every stage resistance negative over the whole box: the
        // same defect the sweep gate proves `SPC001`, caught at submit.
        let mut doomed = JobSpec::demo_rc(2, 0);
        if let SweepDecl::MonteCarlo { params, .. } = &mut doomed.sweep {
            params[0] = ("dr".into(), -1.5, -1.2);
        }
        let err = handle.submit(&tenant, doomed.clone()).unwrap_err();
        match err {
            ServeError::Invalid(msg) => {
                assert!(msg.contains("SPC001"), "{msg}");
                assert!(msg.contains("witness"), "{msg}");
            }
            other => panic!("unexpected error {other}"),
        }
        // The resubmit replays the cached verdict (no second pass), and
        // a healthy job over the same topology is unaffected.
        assert!(matches!(
            handle.submit(&tenant, doomed),
            Err(ServeError::Invalid(_))
        ));
        let job = handle.submit(&tenant, JobSpec::demo_rc(2, 0)).unwrap();
        assert!(handle.wait(&tenant, &job).is_ok());
        let m = handle.metrics();
        assert_eq!(m.counter("serve.space.runs"), 2); // doomed + healthy
        assert_eq!(m.counter("serve.space.hits"), 1); // the resubmit
        assert_eq!(m.counter("serve.space.rejects"), 1);
        handle.shutdown();
        handle.join();
    }

    /// `demo_rc` with a 10× finer step: each scenario runs long enough
    /// that a suspend issued after the first progress event lands at a
    /// scenario boundary with plenty of work left.
    fn slow_job(n: usize, seed: u64) -> JobSpec {
        let mut job = JobSpec::demo_rc(n, seed);
        job.h = 5e-9;
        job
    }

    fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
        for _ in 0..4000 {
            if cond() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    fn suspended_mid_run(handle: &ServeHandle, tenant: &str, job: JobSpec) -> String {
        let token = handle.submit(tenant, job).unwrap();
        wait_for("first scenario", || {
            handle.status(tenant, &token).unwrap().completed >= 1
        });
        handle.suspend(tenant, &token).unwrap();
        wait_for("suspension", || {
            let s = handle.status(tenant, &token).unwrap();
            assert!(
                !matches!(s.state, JobState::Done),
                "suspend raced job completion — slow_job is not slow enough"
            );
            s.state == JobState::Suspended
        });
        token
    }

    #[test]
    fn suspend_resume_reproduces_the_uninterrupted_fingerprint() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let spec = slow_job(32, 0xC0DE);
        let direct = spec.direct_run(2).unwrap();

        let job = suspended_mid_run(&handle, &tenant, spec);
        let status = handle.status(&tenant, &job).unwrap();
        assert!(status.completed >= 1 && status.completed < 32);
        let m = handle.metrics();
        assert_eq!(m.counter("serve.jobs.suspended"), 1);
        assert_eq!(m.counter("serve.checkpoint.stored"), 1);
        assert!(m.gauge("serve.checkpoint.bytes").unwrap() > 0.0);

        handle.resume(&tenant, &job).unwrap();
        let report = handle.wait(&tenant, &job).unwrap();
        assert_eq!(report.scenarios.len(), 32);
        assert_eq!(
            report.fingerprint(),
            direct.fingerprint(),
            "suspended+resumed job must be indistinguishable from an uninterrupted run"
        );
        // Labels and ordering survive the merge too.
        for (i, (got, want)) in report.scenarios.iter().zip(&direct.scenarios).enumerate() {
            assert_eq!(got.index, i);
            assert_eq!(got.label, want.label);
        }
        // The event stream covers every scenario exactly once.
        let (events, _) = handle.poll(&tenant, &job, 0).unwrap();
        let mut idx: Vec<usize> = events.iter().map(|(i, _)| *i).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..32).collect::<Vec<_>>());
        let m = handle.metrics();
        assert_eq!(m.counter("serve.checkpoint.restored"), 1);
        assert!(m.counter("serve.checkpoint.scenarios_restored") >= 1);
        assert_eq!(m.counter("serve.checkpoint.lost"), 0);
        assert_eq!(m.counter("serve.jobs.resumed"), 1);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn an_evicted_checkpoint_degrades_to_a_full_rerun() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let spec = slow_job(24, 7);
        let direct = spec.direct_run(2).unwrap();

        let job = suspended_mid_run(&handle, &tenant, spec);
        // Simulate the byte budget reclaiming the checkpoint while the
        // job sat suspended.
        handle.lock().cache.checkpoint_discard(&job);
        handle.resume(&tenant, &job).unwrap();
        let report = handle.wait(&tenant, &job).unwrap();
        assert_eq!(report.fingerprint(), direct.fingerprint());
        assert_eq!(report.scenarios.len(), 24);
        let (events, _) = handle.poll(&tenant, &job, 0).unwrap();
        let mut idx: Vec<usize> = events.iter().map(|(i, _)| *i).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..24).collect::<Vec<_>>(), "stream restarted clean");
        let m = handle.metrics();
        assert_eq!(m.counter("serve.checkpoint.lost"), 1);
        assert_eq!(m.counter("serve.checkpoint.restored"), 0);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn queued_jobs_suspend_in_place_and_cancel_discards_the_checkpoint() {
        // Tenant budget of 8 in-flight scenarios: while the 8-scenario
        // job A runs, job B deterministically sits queued.
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig {
                scenario_budget: 8,
                ..TenantConfig::named("t")
            }],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let a = handle.submit(&tenant, slow_job(8, 1)).unwrap();
        wait_for("job a running", || {
            handle.status(&tenant, &a).unwrap().state == JobState::Running
        });
        let b = handle.submit(&tenant, JobSpec::demo_rc(8, 2)).unwrap();
        assert_eq!(handle.status(&tenant, &b).unwrap().state, JobState::Queued);

        handle.suspend(&tenant, &b).unwrap();
        assert_eq!(
            handle.status(&tenant, &b).unwrap().state,
            JobState::Suspended,
            "queued jobs park synchronously"
        );
        // No checkpoint for a job that never ran.
        assert_eq!(handle.lock().cache.checkpoint_count(), 0);

        handle.cancel(&tenant, &b).unwrap();
        assert_eq!(
            handle.status(&tenant, &b).unwrap().state,
            JobState::Cancelled
        );
        assert!(matches!(
            handle.wait(&tenant, &b),
            Err(ServeError::Cancelled)
        ));
        assert!(handle.wait(&tenant, &a).is_ok());
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn resumed_then_cancelled_job_reaches_cancelled() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let job = suspended_mid_run(&handle, &tenant, slow_job(32, 5));
        handle.resume(&tenant, &job).unwrap();
        // Cancel right away: whether it lands while queued or running,
        // the restored job must end Cancelled, never Suspended.
        handle.cancel(&tenant, &job).unwrap();
        assert!(matches!(
            handle.wait(&tenant, &job),
            Err(ServeError::Cancelled)
        ));
        assert_eq!(
            handle.status(&tenant, &job).unwrap().state,
            JobState::Cancelled
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn resume_rejects_jobs_that_are_not_suspended() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let job = handle.submit(&tenant, JobSpec::demo_rc(2, 0)).unwrap();
        handle.wait(&tenant, &job).unwrap();
        assert!(matches!(
            handle.resume(&tenant, &job),
            Err(ServeError::Invalid(_))
        ));
        // Suspending a done job is a harmless no-op.
        handle.suspend(&tenant, &job).unwrap();
        assert_eq!(handle.status(&tenant, &job).unwrap().state, JobState::Done);
        // Authority still gates both verbs.
        assert!(matches!(
            handle.resume("tenant-feedbeef", &job),
            Err(ServeError::Auth)
        ));
        assert!(matches!(
            handle.suspend("tenant-feedbeef", &job),
            Err(ServeError::Auth)
        ));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn monitored_job_reports_verdicts_and_counters() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let spec = JobSpec::demo_rc_monitored(8, 3);
        let job = handle.submit(&tenant, spec.clone()).unwrap();
        let report = handle.wait(&tenant, &job).unwrap();
        assert_eq!(
            report.monitor_names,
            vec!["bounded".to_string(), "over".into(), "settled".into()]
        );
        for sc in &report.scenarios {
            assert_eq!(sc.verdicts.len(), 3, "every scenario carries a verdict row");
        }
        // Live counts agree with the finished report.
        let status = handle.status(&tenant, &job).unwrap();
        let m = status.monitors.expect("monitored job exposes counts");
        assert_eq!(m.pass + m.fail + m.vacuous, 8 * 3);
        let mut want = MonitorCounts::default();
        for sc in &report.scenarios {
            for v in &sc.verdicts {
                want.add(v);
            }
        }
        assert_eq!(m, want);
        // The RC ladder never leaves [lo, hi] nor overshoots a 1 V
        // pulse, so those two properties pass in every scenario.
        assert!(m.pass >= 16, "envelope+overshoot pass everywhere: {m:?}");
        let metrics = handle.metrics();
        assert_eq!(metrics.counter("serve.monitor.jobs"), 1);
        assert_eq!(
            metrics.counter("serve.monitor.pass")
                + metrics.counter("serve.monitor.fail")
                + metrics.counter("serve.monitor.vacuous"),
            8 * 3
        );
        // Verdicts are deterministic across worker counts.
        assert_eq!(
            spec.direct_run(1).unwrap().fingerprint(),
            spec.direct_run(4).unwrap().fingerprint()
        );
        assert_eq!(
            report.fingerprint(),
            spec.direct_run(1).unwrap().fingerprint()
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn monitored_suspend_resume_keeps_verdicts_and_fingerprint() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let mut spec = JobSpec::demo_rc_monitored(24, 0xBEEF);
        spec.h = 5e-9; // slow_job pacing, monitored
        let direct = spec.direct_run(2).unwrap();

        let job = suspended_mid_run(&handle, &tenant, spec);
        // The checkpoint already carries verdict counts for the
        // completed prefix.
        let status = handle.status(&tenant, &job).unwrap();
        let mid = status.monitors.expect("suspended monitored job");
        assert_eq!(
            mid.pass + mid.fail + mid.vacuous,
            status.completed as u64 * 3
        );

        handle.resume(&tenant, &job).unwrap();
        let report = handle.wait(&tenant, &job).unwrap();
        assert_eq!(
            report.fingerprint(),
            direct.fingerprint(),
            "restored verdicts must match an uninterrupted monitored run"
        );
        for (got, want) in report.scenarios.iter().zip(&direct.scenarios) {
            assert_eq!(got.verdicts, want.verdicts);
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn bad_monitor_specs_are_rejected_at_submit() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 1,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let mut garbled = JobSpec::demo_rc(2, 0);
        garbled.monitors = Some("p:settle(lo=".into());
        match handle.submit(&tenant, garbled) {
            Err(ServeError::Invalid(msg)) => assert!(msg.contains("monitor spec"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        let mut dangling = JobSpec::demo_rc(2, 0);
        dangling.monitors = Some("p:finite()@n99".into());
        match handle.submit(&tenant, dangling) {
            Err(ServeError::Invalid(msg)) => assert!(msg.contains("n99"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        // Rejection happens before admission: nothing was queued.
        assert_eq!(handle.metrics().counter("serve.jobs.submitted"), 0);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn draining_rejects_new_work_and_finishes_old() {
        let handle = ServeHandle::start(ServeConfig {
            workers: 1,
            tenants: vec![TenantConfig::named("t")],
            ..ServeConfig::default()
        });
        let tenant = handle.tenant_token("t").unwrap();
        let job = handle.submit(&tenant, JobSpec::demo_rc(3, 9)).unwrap();
        handle.shutdown();
        assert!(matches!(
            handle.submit(&tenant, JobSpec::demo_rc(1, 0)),
            Err(ServeError::Shutdown)
        ));
        // The pre-drain job still completes.
        assert!(handle.wait(&tenant, &job).is_ok());
        handle.join();
    }
}
