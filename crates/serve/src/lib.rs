//! Simulation-as-a-service for SystemC-AMS models.
//!
//! The DATE 2003 paper's speed argument (§3: statically scheduled
//! dataflow "can be implemented very efficiently") is about one run.
//! This crate amortizes across *many* runs: a long-lived daemon keeps
//! per-topology artifacts warm — the elaborated [`Circuit`], its
//! `ams-lint` verdict, and the sparse symbolic LU factor — so a repeat
//! job over a known topology pays **zero** lint passes and **zero**
//! symbolic analyses, only numeric work. Layers:
//!
//! * [`model`] — the declarative wire model: [`CircuitSpec`] /
//!   [`JobSpec`] describe a netlist, parameter binds, probes and a
//!   sweep as data (closures cannot travel over a socket), with
//!   deterministic JSON round-trips and a stable topology fingerprint;
//! * [`cache`] — [`TopologyCache`], an LRU over topology fingerprints
//!   with a byte budget, caching positive *and* negative lint verdicts
//!   and warm symbolic factors;
//! * [`sched`] — tenant quotas ([`TenantConfig`]) and weighted fair
//!   queuing across tenants;
//! * [`handle`] — [`ServeHandle`], the in-process service: submit /
//!   status / poll / wait / cancel / suspend / resume / metrics /
//!   shutdown, a dispatcher thread leasing worker slots from an
//!   [`ams_exec::SlotPool`], and per-job threads running `ams-sweep`
//!   batches with cooperative cancellation at scenario boundaries.
//!   Suspension checkpoints a job's completed scenarios into the
//!   topology cache (same byte budget); the resumed job re-runs only
//!   the remainder and its report fingerprints identically to an
//!   uninterrupted run;
//! * [`protocol`] — the newline-delimited JSON request/response mapping
//!   used over TCP (and directly testable without a socket);
//! * [`daemon`] — the accept loop over `std::net::TcpListener`, with
//!   graceful drain on SIGTERM ([`signal`]) or a `shutdown` request.
//!
//! Authority is capability-style: tenants and jobs are addressed by
//! unforgeable random tokens minted from the daemon's secret seed, and
//! every job operation requires the pair (tenant token, job token) to
//! match — a tenant can only reference what it submitted.
//!
//! # Example
//!
//! ```
//! use ams_serve::{JobSpec, ServeConfig, ServeHandle, TenantConfig};
//!
//! let handle = ServeHandle::start(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//! let admin = handle.admin_token().to_string();
//! let tenant = handle
//!     .register_tenant(&admin, TenantConfig::named("lab"))
//!     .unwrap();
//! let job = handle
//!     .submit(&tenant, JobSpec::demo_rc(8, 0x5EED))
//!     .unwrap();
//! let report = handle.wait(&tenant, &job).unwrap();
//! assert_eq!(report.scenarios.len(), 8);
//! handle.shutdown();
//! handle.join();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod cache;
pub mod daemon;
pub mod handle;
pub mod model;
pub mod protocol;
pub mod sched;
pub mod signal;

pub use cache::{JobCheckpoint, TopologyCache};
pub use daemon::serve;
pub use handle::{JobState, JobStatus, ScenarioEvent, ServeHandle};
pub use model::{
    BindTarget, CircuitSpec, ElementKindSpec, ElementSpec, JobSpec, MetricSpec, ParamBind,
    ProbeKind, SweepDecl, WaveSpec,
};
pub use sched::{ServeConfig, TenantConfig};

/// Failures of the service layer. Simulation-level failures are carried
/// through from [`ams_sweep::SweepError`]; the rest are admission,
/// authority and protocol outcomes with distinct wire codes (see
/// [`ServeError::code`]).
#[derive(Debug)]
pub enum ServeError {
    /// A malformed specification or request.
    Invalid(String),
    /// Unknown or mismatched token: the caller does not hold the
    /// authority it claimed. Deliberately unspecific about *why*.
    Auth,
    /// The tenant's submit queue is full; retry after draining. The
    /// acceptor never blocks on a full queue.
    Backpressure,
    /// The tenant or admin operation conflicts with a quota.
    Quota(String),
    /// The daemon is draining and accepts no new work.
    Shutdown,
    /// The underlying sweep failed (lint gate, scenario failure, …).
    Sweep(ams_sweep::SweepError),
    /// An asynchronous job ended in failure; the payload is the
    /// rendered cause (possibly replayed from a cached lint verdict).
    Failed(String),
    /// The job was cancelled before completion.
    Cancelled,
}

impl ServeError {
    pub(crate) fn invalid(msg: impl Into<String>) -> ServeError {
        ServeError::Invalid(msg.into())
    }

    /// Stable machine-readable code used in wire responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Invalid(_) => "invalid",
            ServeError::Auth => "auth",
            ServeError::Backpressure => "backpressure",
            ServeError::Quota(_) => "quota",
            ServeError::Shutdown => "shutdown",
            ServeError::Sweep(_) => "sweep",
            ServeError::Failed(_) => "failed",
            ServeError::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Auth => write!(f, "unknown or mismatched token"),
            ServeError::Backpressure => write!(f, "queue full, retry later"),
            ServeError::Quota(msg) => write!(f, "quota violation: {msg}"),
            ServeError::Shutdown => write!(f, "service is shutting down"),
            ServeError::Sweep(e) => write!(f, "sweep failed: {e}"),
            ServeError::Failed(msg) => write!(f, "job failed: {msg}"),
            ServeError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ams_sweep::SweepError> for ServeError {
    fn from(e: ams_sweep::SweepError) -> ServeError {
        match e {
            ams_sweep::SweepError::Cancelled => ServeError::Cancelled,
            other => ServeError::Sweep(other),
        }
    }
}
