//! Minimal SIGTERM/SIGINT latching without a libc crate.
//!
//! The build environment is sealed, so there is no `libc` or
//! `signal-hook` to lean on. Instead the module declares the one libc
//! symbol it needs — `signal(2)` — in an `extern "C"` block; the
//! symbol resolves against the C library std already links. The
//! handler does the only thing an async-signal-safe handler may do
//! here: store to a static atomic, which the daemon's accept loop
//! polls between accepts.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" {
    /// `signal(2)` from the platform C library (already linked by
    /// std). Returns the previous handler, `SIG_ERR` on failure.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a single relaxed atomic store.
    STOP.store(true, Ordering::Relaxed);
}

/// Installs SIGTERM and SIGINT handlers that latch the process-global
/// stop flag, and returns that flag for [`crate::daemon::serve`] to
/// poll. Idempotent.
pub fn install_stop_flag() -> &'static AtomicBool {
    // SAFETY: `signal` is the C library's documented interface for
    // installing a handler, and `on_signal` is an `extern "C"` fn that
    // only performs an atomic store — async-signal-safe by POSIX.
    let handler = on_signal as extern "C" fn(i32);
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
    &STOP
}

/// Whether a latched stop signal has been observed.
pub fn stop_requested() -> bool {
    STOP.load(Ordering::Relaxed)
}

/// Manually latch the stop flag (tests, or shutdown paths that want
/// to share it without raising a signal).
pub fn request_stop() {
    STOP.store(true, Ordering::Relaxed);
}
