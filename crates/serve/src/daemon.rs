//! The TCP front end: accept loop, connection threads, graceful drain.
//!
//! Pure `std::net` — no async runtime. The listener runs nonblocking
//! so the accept loop can poll two shutdown signals between accepts:
//! the process-level stop flag (SIGTERM, see [`crate::signal`]) and
//! the protocol-level `shutdown` op. Either way the sequence is the
//! same: stop accepting, reject new submits, let queued and running
//! jobs finish ([`ServeHandle::shutdown`] + [`ServeHandle::join`]),
//! then return so the process can exit 0.
//!
//! Each connection gets a thread reading newline-delimited requests
//! and writing newline-delimited responses ([`protocol`]); a slow or
//! blocked client never stalls the acceptor or other connections.

use crate::handle::ServeHandle;
use crate::protocol;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How often the accept loop polls the stop signals while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Serves requests on `listener` until `stop` becomes true or an
/// authorized `shutdown` request arrives, then drains and returns.
///
/// # Errors
///
/// Propagates listener configuration failures; per-connection I/O
/// errors only end that connection.
pub fn serve(
    handle: &ServeHandle,
    listener: TcpListener,
    stop: &'static AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if stop.load(Ordering::Acquire) || handle.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handle = handle.clone();
                std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || connection(&handle, stream, stop))
                    .expect("spawn connection thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    handle.shutdown();
    handle.join();
    Ok(())
}

/// One connection: read request lines, write response lines. Returns
/// on EOF, I/O error, or after answering a `shutdown` request (the
/// accept loop notices `is_draining` on its next poll).
fn connection(handle: &ServeHandle, stream: TcpStream, stop: &'static AtomicBool) {
    // Blocking I/O on the connection itself; `result` ops legitimately
    // park until the job finishes.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let reply = protocol::handle_request(handle, &line);
        if writer
            .write_all(reply.line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if reply.shutdown {
            stop.store(true, Ordering::Release);
            return;
        }
    }
}
