//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Grammar (one request object per line, one response object per
//! line; all tokens are opaque strings):
//!
//! ```text
//! request  := hello | submit | status | poll | result | cancel
//!           | suspend | resume | stats | shutdown
//! hello    := {"op":"hello","admin":TOK,"tenant":{"name":S,
//!              "weight"?:N,"max_queued"?:N,"max_shards"?:N,
//!              "scenario_budget"?:N}}
//! submit   := {"op":"submit","tenant":TOK,"job":JOBSPEC}
//! status   := {"op":"status","tenant":TOK,"job":TOK}
//! poll     := {"op":"poll","tenant":TOK,"job":TOK,"from"?:N}
//! result   := {"op":"result","tenant":TOK,"job":TOK}   (blocks)
//! cancel   := {"op":"cancel","tenant":TOK,"job":TOK}
//! suspend  := {"op":"suspend","tenant":TOK,"job":TOK}
//! resume   := {"op":"resume","tenant":TOK,"job":TOK}
//! stats    := {"op":"stats","admin":TOK}
//! shutdown := {"op":"shutdown","admin":TOK}
//!
//! response := {"ok":true, ...} | {"ok":false,"code":C,"error":S}
//! ```
//!
//! `JOBSPEC` may carry an optional `"monitors"` string — a
//! [`ams_monitor::MonitorSpec`] property list whose channels name
//! circuit nodes. Monitored jobs fold the spec text into their job
//! fingerprint (topology caching still keys on the circuit alone), and
//! `status`/`poll` responses gain a `"monitors"` object with running
//! `pass`/`fail`/`vacuous` verdict counts. `stats` returns the whole
//! metrics registry grouped as `counters`/`gauges`/`histograms` in
//! stable name order.
//!
//! Failure codes are [`ServeError::code`] values (`auth`,
//! `backpressure`, `quota`, `invalid`, `shutdown`, `failed`,
//! `cancelled`, `sweep`). The handler is a pure request→response
//! function over a [`ServeHandle`], so the whole protocol is testable
//! without a socket; [`crate::daemon`] adds the TCP framing.

use crate::handle::{JobStatus, ServeHandle};
use crate::model::JobSpec;
use crate::sched::TenantConfig;
use crate::ServeError;
use ams_sweep::json::{parse, report_to_json, Json};

/// Outcome of one request: the response line, plus whether the request
/// asked the daemon to shut down (the transport acts on it after
/// sending the response).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Rendered response object (no trailing newline).
    pub line: String,
    /// `true` for an authorized `shutdown` request.
    pub shutdown: bool,
}

impl Reply {
    fn ok(mut fields: Vec<(String, Json)>) -> Reply {
        let mut all = vec![("ok".to_string(), Json::Bool(true))];
        all.append(&mut fields);
        Reply {
            line: Json::Obj(all).render(),
            shutdown: false,
        }
    }

    fn err(e: &ServeError) -> Reply {
        Reply {
            line: Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("code".into(), Json::Str(e.code().into())),
                ("error".into(), Json::Str(e.to_string())),
            ])
            .render(),
            shutdown: false,
        }
    }
}

fn status_fields(status: &JobStatus) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("state".to_string(), Json::Str(status.state.tag().into())),
        (
            "completed".to_string(),
            Json::from_u64(status.completed as u64),
        ),
        ("total".to_string(), Json::from_u64(status.total as u64)),
    ];
    if let Some(m) = &status.monitors {
        fields.push((
            "monitors".to_string(),
            Json::Obj(vec![
                ("pass".into(), Json::from_u64(m.pass)),
                ("fail".into(), Json::from_u64(m.fail)),
                ("vacuous".into(), Json::from_u64(m.vacuous)),
            ]),
        ));
    }
    if let crate::handle::JobState::Failed(msg) = &status.state {
        fields.push(("error".to_string(), Json::Str(msg.clone())));
    }
    fields
}

/// Handles one request line against the service. Malformed JSON and
/// unknown ops produce `{"ok":false,...}` responses, never panics —
/// the daemon must survive hostile input.
pub fn handle_request(handle: &ServeHandle, line: &str) -> Reply {
    match dispatch(handle, line) {
        Ok(reply) => reply,
        Err(e) => Reply::err(&e),
    }
}

fn dispatch(handle: &ServeHandle, line: &str) -> Result<Reply, ServeError> {
    let req = parse(line).map_err(ServeError::Invalid)?;
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::invalid("request needs an \"op\""))?;
    let tok = |key: &str| {
        req.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::invalid(format!("{op:?} needs a {key:?} token")))
    };
    match op {
        "hello" => {
            let admin = tok("admin")?;
            let t = req
                .get("tenant")
                .ok_or_else(|| ServeError::invalid("hello needs a \"tenant\" object"))?;
            let name = t
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ServeError::invalid("tenant needs a \"name\""))?;
            let mut config = TenantConfig::named(name);
            if let Some(w) = t.get("weight").and_then(Json::as_u64) {
                config.weight = w;
            }
            if let Some(q) = t.get("max_queued").and_then(Json::as_usize) {
                config.max_queued = q;
            }
            if let Some(s) = t.get("max_shards").and_then(Json::as_usize) {
                config.max_concurrent_shards = s;
            }
            if let Some(b) = t.get("scenario_budget").and_then(Json::as_u64) {
                config.scenario_budget = b;
            }
            let token = handle.register_tenant(&admin, config)?;
            Ok(Reply::ok(vec![("tenant_token".into(), Json::Str(token))]))
        }
        "submit" => {
            let tenant = tok("tenant")?;
            let job = JobSpec::from_json(
                req.get("job")
                    .ok_or_else(|| ServeError::invalid("submit needs a \"job\""))?,
            )?;
            let scenarios = job.scenario_count() as u64;
            // Topology identity, deliberately distinct from job identity:
            // two jobs that differ only in monitor specs share cached
            // factorisations, and this field advertises that sharing.
            let fingerprint = job.circuit.fingerprint();
            let token = handle.submit(&tenant, job)?;
            Ok(Reply::ok(vec![
                ("job_token".into(), Json::Str(token)),
                ("scenarios".into(), Json::from_u64(scenarios)),
                ("topology".into(), Json::Str(format!("{fingerprint:016x}"))),
            ]))
        }
        "status" => {
            let status = handle.status(&tok("tenant")?, &tok("job")?)?;
            Ok(Reply::ok(status_fields(&status)))
        }
        "poll" => {
            let from = req.get("from").and_then(Json::as_usize).unwrap_or(0);
            let (events, status) = handle.poll(&tok("tenant")?, &tok("job")?, from)?;
            let mut fields = vec![(
                "events".to_string(),
                Json::Arr(
                    events
                        .into_iter()
                        .map(|(index, row)| {
                            Json::Obj(vec![
                                ("index".into(), Json::from_u64(index as u64)),
                                (
                                    "metrics".into(),
                                    Json::Arr(row.iter().map(|v| Json::from_f64(*v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            )];
            fields.extend(status_fields(&status));
            Ok(Reply::ok(fields))
        }
        "result" => {
            let report = handle.wait(&tok("tenant")?, &tok("job")?)?;
            Ok(Reply::ok(vec![
                (
                    "fingerprint".into(),
                    Json::Str(format!("{:016x}", report.fingerprint())),
                ),
                ("report".into(), report_to_json(&report)),
            ]))
        }
        "cancel" => {
            handle.cancel(&tok("tenant")?, &tok("job")?)?;
            Ok(Reply::ok(Vec::new()))
        }
        "suspend" => {
            handle.suspend(&tok("tenant")?, &tok("job")?)?;
            Ok(Reply::ok(Vec::new()))
        }
        "resume" => {
            handle.resume(&tok("tenant")?, &tok("job")?)?;
            Ok(Reply::ok(Vec::new()))
        }
        "stats" => {
            if tok("admin")? != handle.admin_token() {
                return Err(ServeError::Auth);
            }
            // The whole registry, grouped by kind in name order —
            // every counter, gauge and full histogram summary, not a
            // hand-picked subset.
            let metrics = handle.metrics();
            Ok(Reply::ok(vec![(
                "metrics".into(),
                ams_sweep::json::metrics_to_json(&metrics),
            )]))
        }
        "shutdown" => {
            if tok("admin")? != handle.admin_token() {
                return Err(ServeError::Auth);
            }
            handle.shutdown();
            Ok(Reply {
                line: Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("draining".into(), Json::Bool(true)),
                ])
                .render(),
                shutdown: true,
            })
        }
        other => Err(ServeError::invalid(format!("unknown op {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::ServeConfig;

    fn service() -> (ServeHandle, String, String) {
        let handle = ServeHandle::start(ServeConfig {
            workers: 2,
            tenants: Vec::new(),
            ..ServeConfig::default()
        });
        let admin = handle.admin_token().to_string();
        let hello = format!(r#"{{"op":"hello","admin":"{admin}","tenant":{{"name":"lab"}}}}"#);
        let reply = handle_request(&handle, &hello);
        let token = parse(&reply.line)
            .unwrap()
            .get("tenant_token")
            .and_then(Json::as_str)
            .expect("tenant token")
            .to_string();
        (handle, admin, token)
    }

    #[test]
    fn submit_poll_result_round_trip() {
        let (handle, _admin, tenant) = service();
        let job_json = JobSpec::demo_rc(3, 0x77).to_json().render();
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"submit","tenant":"{tenant}","job":{job_json}}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        assert_eq!(obj.get("ok").and_then(Json::as_bool), Some(true), "{obj:?}");
        let job = obj
            .get("job_token")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(obj.get("scenarios").and_then(Json::as_u64), Some(3));

        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"result","tenant":"{tenant}","job":"{job}"}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        assert_eq!(obj.get("ok").and_then(Json::as_bool), Some(true));
        let wire_fp = obj.get("fingerprint").and_then(Json::as_str).unwrap();
        let report =
            ams_sweep::json::report_from_json(obj.get("report").unwrap()).expect("valid report");
        assert_eq!(format!("{:016x}", report.fingerprint()), wire_fp);
        assert_eq!(report.scenarios.len(), 3);

        // Poll after completion replays the full stream.
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"poll","tenant":"{tenant}","job":"{job}","from":"1"}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        assert_eq!(obj.get("events").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(obj.get("state").and_then(Json::as_str), Some("done"));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn monitored_jobs_surface_verdict_counts_and_full_stats() {
        let (handle, admin, tenant) = service();
        let job_json = JobSpec::demo_rc_monitored(4, 0x51).to_json().render();
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"submit","tenant":"{tenant}","job":{job_json}}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        assert_eq!(obj.get("ok").and_then(Json::as_bool), Some(true), "{obj:?}");
        let job = obj
            .get("job_token")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        // The topology field advertises the *circuit* identity, which
        // an unmonitored job over the same netlist shares.
        assert_eq!(
            obj.get("topology").and_then(Json::as_str).unwrap(),
            format!("{:016x}", JobSpec::demo_rc(4, 0x51).circuit.fingerprint())
        );

        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"result","tenant":"{tenant}","job":"{job}"}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        let report =
            ams_sweep::json::report_from_json(obj.get("report").unwrap()).expect("valid report");
        assert_eq!(report.monitor_names.len(), 3);

        // Status carries the verdict tallies.
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"status","tenant":"{tenant}","job":"{job}"}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        let monitors = obj.get("monitors").expect("monitored status object");
        let total = ["pass", "fail", "vacuous"]
            .iter()
            .map(|k| monitors.get(k).and_then(Json::as_u64).unwrap())
            .sum::<u64>();
        assert_eq!(total, 4 * 3);

        // Stats exports the whole registry, grouped and ordered.
        let reply = handle_request(&handle, &format!(r#"{{"op":"stats","admin":"{admin}"}}"#));
        let obj = parse(&reply.line).unwrap();
        let metrics = obj.get("metrics").expect("metrics object");
        let counters = metrics.get("counters").expect("counters group");
        assert_eq!(
            counters.get("serve.monitor.jobs").and_then(Json::as_u64),
            Some(1)
        );
        let monitor_total = ["pass", "fail", "vacuous"]
            .iter()
            .map(|k| {
                counters
                    .get(&format!("serve.monitor.{k}"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            })
            .sum::<u64>();
        assert_eq!(monitor_total, 4 * 3);
        assert!(metrics.get("gauges").is_some());
        assert!(metrics.get("histograms").is_some());
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn suspend_and_resume_ops_are_wired() {
        let (handle, _admin, tenant) = service();
        let job_json = JobSpec::demo_rc(2, 3).to_json().render();
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"submit","tenant":"{tenant}","job":{job_json}}}"#),
        );
        let job = parse(&reply.line)
            .unwrap()
            .get("job_token")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        // Block until done, then exercise the verbs: suspending a done
        // job is a no-op success, resuming one is an invalid request.
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"result","tenant":"{tenant}","job":"{job}"}}"#),
        );
        assert!(reply.line.contains("\"ok\":true"));
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"suspend","tenant":"{tenant}","job":"{job}"}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        assert_eq!(obj.get("ok").and_then(Json::as_bool), Some(true));
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"resume","tenant":"{tenant}","job":"{job}"}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        assert_eq!(obj.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(obj.get("code").and_then(Json::as_str), Some("invalid"));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn hostile_input_gets_error_responses() {
        let (handle, admin, tenant) = service();
        for bad in [
            "not json at all",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"submit","tenant":"forged-token","job":{}}"#,
            r#"{"op":"shutdown","admin":"wrong"}"#,
        ] {
            let reply = handle_request(&handle, bad);
            let obj = parse(&reply.line).expect("error replies are valid JSON");
            assert_eq!(obj.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
            assert!(!reply.shutdown);
        }
        // A forged tenant token is an auth failure, not a parse failure.
        let job_json = JobSpec::demo_rc(1, 0).to_json().render();
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"submit","tenant":"tenant-bad","job":{job_json}}}"#),
        );
        let obj = parse(&reply.line).unwrap();
        assert_eq!(obj.get("code").and_then(Json::as_str), Some("auth"));
        let _ = tenant;
        // Authorized shutdown flips the flag.
        let reply = handle_request(
            &handle,
            &format!(r#"{{"op":"shutdown","admin":"{admin}"}}"#),
        );
        assert!(reply.shutdown);
        handle.join();
    }
}
