//! Admission control: tenant quotas and weighted fair queuing.
//!
//! The daemon multiplexes one machine across tenants. Admission has
//! two layers:
//!
//! * **Quotas** ([`TenantConfig`]) bound what one tenant can ask for:
//!   queue depth (excess submits get immediate backpressure, the
//!   acceptor never blocks), concurrent worker shards, and in-flight
//!   scenarios (a huge job does not starve the tenant's own small
//!   ones — or anyone else).
//! * **Weighted fair queuing** picks *which* tenant dispatches next:
//!   each tenant accrues virtual time in proportion to the scenarios
//!   it dispatched divided by its weight; the backlogged tenant with
//!   the smallest virtual time wins (ties break on name, so scheduling
//!   is deterministic). Head-of-line blocking is deliberate: when the
//!   winner's job cannot take its worker slots yet, nobody jumps the
//!   queue — cheap jobs cannot starve an expensive one forever.

use std::collections::VecDeque;

/// Per-tenant admission quotas and fair-share weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant name (unique; also the WFQ tiebreaker).
    pub name: String,
    /// Fair-share weight: a tenant with twice the weight accrues
    /// virtual time half as fast, so it dispatches twice the scenarios
    /// under contention. Clamped to ≥ 1.
    pub weight: u64,
    /// Maximum jobs waiting in the tenant's queue; further submits get
    /// [`ServeError::Backpressure`](crate::ServeError::Backpressure).
    pub max_queued: usize,
    /// Maximum worker shards the tenant's running jobs may hold at
    /// once; a job's request is clamped to this.
    pub max_concurrent_shards: usize,
    /// Maximum scenarios the tenant may have in flight across running
    /// jobs; an over-budget job waits in queue until running work
    /// completes.
    pub scenario_budget: u64,
}

impl TenantConfig {
    /// A tenant with default quotas (weight 1, 16 queued, 4 shards,
    /// 4096 in-flight scenarios).
    pub fn named(name: impl Into<String>) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            weight: 1,
            max_queued: 16,
            max_concurrent_shards: 4,
            scenario_budget: 4096,
        }
    }
}

/// Daemon-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker slots shared by all running jobs (the
    /// [`SlotPool`](ams_exec::SlotPool) capacity).
    pub workers: usize,
    /// Topology-cache byte budget.
    pub cache_bytes: usize,
    /// Secret seed for the token mint. A fixed default is fine for
    /// tests; a real deployment should pass something unpredictable.
    pub seed: u64,
    /// Tenants registered at startup (more can be added via the admin
    /// `hello` op).
    pub tenants: Vec<TenantConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            cache_bytes: 64 << 20,
            seed: 0xA55_5EED,
            tenants: Vec::new(),
        }
    }
}

/// Scheduler-side state of one tenant.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub config: TenantConfig,
    /// Job tokens waiting to dispatch, FIFO within the tenant.
    pub queue: VecDeque<String>,
    /// WFQ virtual time.
    pub vtime: u64,
    /// Worker shards currently held by running jobs.
    pub shards_in_flight: usize,
    /// Scenarios currently held by running jobs.
    pub scenarios_in_flight: u64,
}

impl TenantState {
    pub fn new(mut config: TenantConfig) -> TenantState {
        config.weight = config.weight.max(1);
        config.max_concurrent_shards = config.max_concurrent_shards.max(1);
        TenantState {
            config,
            queue: VecDeque::new(),
            vtime: 0,
            shards_in_flight: 0,
            scenarios_in_flight: 0,
        }
    }

    /// Whether a head-of-line job wanting `scenarios` scenarios and
    /// `shards` worker shards fits the tenant's own quota right now.
    pub fn fits_quota(&self, scenarios: u64, shards: usize) -> bool {
        self.shards_in_flight + shards <= self.config.max_concurrent_shards
            && self.scenarios_in_flight + scenarios <= self.config.scenario_budget
    }

    /// Charges a dispatch: WFQ virtual time plus in-flight quota.
    pub fn charge(&mut self, scenarios: u64, shards: usize) {
        self.vtime += (scenarios.max(1) * 1000) / self.config.weight;
        self.shards_in_flight += shards;
        self.scenarios_in_flight += scenarios;
    }

    /// Releases a completed/cancelled job's in-flight quota.
    pub fn release(&mut self, scenarios: u64, shards: usize) {
        self.shards_in_flight = self.shards_in_flight.saturating_sub(shards);
        self.scenarios_in_flight = self.scenarios_in_flight.saturating_sub(scenarios);
    }
}

/// Picks the backlogged tenant with the smallest (vtime, name) — the
/// WFQ winner — among `tenants`. Returns its name.
pub(crate) fn wfq_pick<'a>(
    tenants: impl Iterator<Item = &'a TenantState>,
) -> Option<&'a TenantState> {
    tenants.filter(|t| !t.queue.is_empty()).min_by(|a, b| {
        a.vtime
            .cmp(&b.vtime)
            .then_with(|| a.config.name.cmp(&b.config.name))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str, weight: u64) -> TenantState {
        let mut t = TenantState::new(TenantConfig {
            weight,
            ..TenantConfig::named(name)
        });
        t.queue.push_back(format!("job-{name}"));
        t
    }

    #[test]
    fn wfq_shares_in_proportion_to_weight() {
        // Tenant "b" has double weight: over many dispatches of equal
        // jobs it should win about twice as often.
        let mut a = tenant("a", 1);
        let mut b = tenant("b", 2);
        let (mut wins_a, mut wins_b) = (0, 0);
        for _ in 0..300 {
            let winner = wfq_pick([&a, &b].into_iter()).unwrap().config.name.clone();
            if winner == "a" {
                wins_a += 1;
                a.charge(10, 1);
                a.release(10, 1);
            } else {
                wins_b += 1;
                b.charge(10, 1);
                b.release(10, 1);
            }
        }
        assert_eq!(wins_a + wins_b, 300);
        assert_eq!(wins_b, 2 * wins_a, "2:1 weight ⇒ exactly 2:1 dispatches");
    }

    #[test]
    fn ties_break_deterministically_by_name() {
        let a = tenant("alpha", 1);
        let b = tenant("beta", 1);
        assert_eq!(wfq_pick([&b, &a].into_iter()).unwrap().config.name, "alpha");
    }

    #[test]
    fn quotas_gate_dispatch() {
        let mut t = TenantState::new(TenantConfig {
            max_concurrent_shards: 2,
            scenario_budget: 100,
            ..TenantConfig::named("t")
        });
        assert!(t.fits_quota(100, 1));
        assert!(!t.fits_quota(101, 1));
        t.charge(60, 1);
        assert!(t.fits_quota(40, 1));
        assert!(!t.fits_quota(41, 1));
        t.charge(40, 1);
        // Both shard slots taken now.
        assert!(!t.fits_quota(0, 1));
        t.release(40, 1);
        assert!(t.fits_quota(0, 1));
        t.release(60, 1);
        assert_eq!(t.shards_in_flight, 0);
        assert_eq!(t.scenarios_in_flight, 0);
    }
}
