//! The warm topology cache: elaborated circuits, lint verdicts and
//! symbolic LU factors, keyed by topology fingerprint.
//!
//! The cache is what turns the daemon from "a socket in front of
//! `ams-sweep`" into a service worth running: the second job over a
//! topology pays zero elaboration, zero lint and zero symbolic
//! analysis. Three design points:
//!
//! * **Negative verdicts are cached too.** A topology that failed the
//!   lint gate will fail it identically next time; re-linting a known
//!   bad netlist on every retry is how a misbehaving client DoSes the
//!   daemon. The rejection is stored and replayed for free.
//! * **Byte-budget LRU.** Entries are charged an estimate of their
//!   resident size (circuit + factor); inserting past the budget
//!   evicts least-recently-used entries first. A single entry larger
//!   than the whole budget is still admitted alone — refusing to cache
//!   it would make the hot topology the one that is never warm.
//! * **Counters, not logs.** Hits, misses, evictions, resident bytes
//!   and lint runs are exported into the shared
//!   [`MetricsRegistry`](ams_scope::MetricsRegistry) under `serve.*`
//!   names — the acceptance proof that a warm job did no cold work
//!   reads these.

use crate::model::BuiltCircuit;
use ams_net::SymbolicFactor;
use ams_scope::MetricsRegistry;
use ams_sweep::{ClusterStats, Verdict};
use std::collections::HashMap;

/// One checkpointed scenario: `(index, metric row, solver counters,
/// monitor verdicts)` — exactly the ScenarioResult-grade data the
/// progress callback streams and a resumed run merges back.
pub type PartialScenario = (usize, Vec<f64>, ClusterStats, Vec<Verdict>);

/// One cached topology.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The elaborated template and name→id maps.
    pub built: BuiltCircuit,
    /// `Some(message)` when the topology failed the lint gate — the
    /// cached *negative* verdict. `None` means it passed.
    pub lint_rejected: Option<String>,
    /// Warm symbolic factor, once some job has exported one.
    pub factor: Option<SymbolicFactor>,
    bytes: usize,
    stamp: u64,
}

impl CacheEntry {
    /// A fresh entry for a linted topology.
    pub fn new(built: BuiltCircuit, lint_rejected: Option<String>) -> CacheEntry {
        let bytes = circuit_bytes(&built);
        CacheEntry {
            built,
            lint_rejected,
            factor: None,
            bytes,
            stamp: 0,
        }
    }

    /// The entry's charged size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Partial results of a suspended job: the scenarios that completed
/// before the suspend landed, as [`PartialScenario`] tuples — exactly
/// the ScenarioResult-grade data (monitor verdicts included) the
/// resumed run needs to merge into a report that fingerprints
/// identically to an uninterrupted one.
///
/// Checkpoints live in the [`TopologyCache`] under the same LRU byte
/// budget as the warm topologies, so suspended jobs cannot grow the
/// daemon without bound. Eviction is safe by determinism: a lost
/// checkpoint only means the resumed job re-runs the completed
/// scenarios, producing bit-identical rows.
#[derive(Debug, Clone)]
pub struct JobCheckpoint {
    /// Completed scenarios, verdicts included.
    pub done: Vec<PartialScenario>,
    bytes: usize,
    stamp: u64,
}

impl JobCheckpoint {
    /// A checkpoint over the given completed scenarios.
    pub fn new(done: Vec<PartialScenario>) -> JobCheckpoint {
        let bytes = 48
            + done
                .iter()
                .map(|(_, row, _, verdicts)| {
                    row.len() * 8
                        + verdicts.len() * std::mem::size_of::<Verdict>()
                        + std::mem::size_of::<PartialScenario>()
                })
                .sum::<usize>();
        JobCheckpoint {
            done,
            bytes,
            stamp: 0,
        }
    }

    /// The checkpoint's charged size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Rough resident size of an elaborated template: elements, node
/// names, and the two name→id maps. An estimate — the eviction policy
/// needs proportionality, not exactness.
fn circuit_bytes(built: &BuiltCircuit) -> usize {
    let names: usize = built
        .elements
        .keys()
        .chain(built.nodes.keys())
        .map(|k| k.len() + 48)
        .sum();
    built.circuit.element_count() * 128 + built.circuit.node_count() * 48 + names
}

/// An LRU cache over topology fingerprints with a byte budget.
#[derive(Debug)]
pub struct TopologyCache {
    entries: HashMap<u64, CacheEntry>,
    /// Space-admission verdicts keyed by `(topology fingerprint,
    /// SpaceSpec fingerprint)`: `Some(message)` is a cached rejection,
    /// `None` a cached pass. Kept apart from [`CacheEntry`] so the
    /// warm-path invariants (zero lint runs, zero symbolic analyses on
    /// a cache hit) are untouched, and deliberately outside the byte
    /// budget — a verdict is a short string, never a resident circuit.
    space: HashMap<(u64, u64), Option<String>>,
    /// Suspended-job checkpoints keyed by job token. Charged to the
    /// same byte budget as the topology entries and evicted by the
    /// same LRU clock — an idle suspended job's partial results lose
    /// to actively reused topologies, by design.
    checkpoints: HashMap<String, JobCheckpoint>,
    budget: usize,
    clock: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    ckpt_bytes: usize,
    ckpt_evictions: u64,
    lint_runs: u64,
    space_hits: u64,
    space_runs: u64,
}

impl TopologyCache {
    /// A cache bounded by `budget` bytes.
    pub fn new(budget: usize) -> TopologyCache {
        TopologyCache {
            entries: HashMap::new(),
            space: HashMap::new(),
            checkpoints: HashMap::new(),
            budget,
            clock: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            ckpt_bytes: 0,
            ckpt_evictions: 0,
            lint_runs: 0,
            space_hits: 0,
            space_runs: 0,
        }
    }

    /// Looks up a topology, counting a hit or miss and refreshing its
    /// LRU stamp.
    pub fn lookup(&mut self, fp: u64) -> Option<&CacheEntry> {
        self.clock += 1;
        match self.entries.get_mut(&fp) {
            Some(e) => {
                e.stamp = self.clock;
                self.hits += 1;
                Some(e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident bytes currently charged.
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// Records that a lint pass actually ran (cold path only).
    pub fn count_lint_run(&mut self) {
        self.lint_runs += 1;
    }

    /// Looks up a cached space-admission verdict for a `(topology,
    /// space spec)` fingerprint pair. `Some(None)` is a cached pass,
    /// `Some(Some(msg))` a cached rejection, `None` means the pass has
    /// never run for this pair.
    pub fn space_lookup(&mut self, key: (u64, u64)) -> Option<&Option<String>> {
        let v = self.space.get(&key);
        if v.is_some() {
            self.space_hits += 1;
        }
        v
    }

    /// Publishes a space-admission verdict, counting the pass that
    /// produced it.
    pub fn space_insert(&mut self, key: (u64, u64), verdict: Option<String>) {
        self.space_runs += 1;
        self.space.insert(key, verdict);
    }

    /// Inserts (or replaces) an entry, then evicts least-recently-used
    /// entries until the budget holds. The newly inserted entry is
    /// never evicted by its own insertion, even when it alone exceeds
    /// the budget — the hot topology must be cacheable.
    pub fn insert(&mut self, fp: u64, mut entry: CacheEntry) {
        self.clock += 1;
        entry.stamp = self.clock;
        if let Some(old) = self.entries.insert(fp, entry) {
            self.bytes -= old.bytes;
        }
        self.bytes += self.entries[&fp].bytes;
        self.evict_to_budget(Some(fp), None);
    }

    /// Attaches a warm symbolic factor to an existing entry (no-op for
    /// an already-evicted fingerprint), recharging its size.
    pub fn store_factor(&mut self, fp: u64, factor: SymbolicFactor) {
        let Some(e) = self.entries.get_mut(&fp) else {
            return;
        };
        if e.factor.is_some() {
            return;
        }
        let extra = factor.approx_bytes();
        e.factor = Some(factor);
        e.bytes += extra;
        self.bytes += extra;
        self.evict_to_budget(Some(fp), None);
    }

    /// Persists a suspended job's checkpoint under the byte budget,
    /// replacing any previous checkpoint for the same job. May evict
    /// LRU topologies or other checkpoints; never evicts itself.
    pub fn checkpoint_insert(&mut self, job: &str, mut cp: JobCheckpoint) {
        self.clock += 1;
        cp.stamp = self.clock;
        let bytes = cp.bytes;
        if let Some(old) = self.checkpoints.insert(job.to_string(), cp) {
            self.bytes -= old.bytes;
            self.ckpt_bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.ckpt_bytes += bytes;
        self.evict_to_budget(None, Some(job));
    }

    /// Removes and returns a suspended job's checkpoint. `None` means
    /// the budget evicted it — the resumed job re-runs everything,
    /// which by determinism yields the same report.
    pub fn checkpoint_take(&mut self, job: &str) -> Option<JobCheckpoint> {
        let cp = self.checkpoints.remove(job)?;
        self.bytes -= cp.bytes;
        self.ckpt_bytes -= cp.bytes;
        Some(cp)
    }

    /// Drops a checkpoint without restoring it (the suspended job was
    /// cancelled). A no-op for an unknown or already-evicted job.
    pub fn checkpoint_discard(&mut self, job: &str) {
        if let Some(cp) = self.checkpoints.remove(job) {
            self.bytes -= cp.bytes;
            self.ckpt_bytes -= cp.bytes;
        }
    }

    /// Number of resident job checkpoints.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Evicts by global LRU stamp across topologies and checkpoints
    /// until the budget holds. The just-touched topology (`keep_entry`)
    /// and checkpoint (`keep_ckpt`) are exempt, so an oversized item is
    /// still admitted alone.
    fn evict_to_budget(&mut self, keep_entry: Option<u64>, keep_ckpt: Option<&str>) {
        while self.bytes > self.budget {
            let entry_victim = self
                .entries
                .iter()
                .filter(|(fp, _)| Some(**fp) != keep_entry)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(fp, e)| (*fp, e.stamp));
            let ckpt_victim = self
                .checkpoints
                .iter()
                .filter(|(job, _)| Some(job.as_str()) != keep_ckpt)
                .min_by_key(|(_, c)| c.stamp)
                .map(|(job, c)| (job.clone(), c.stamp));
            match (entry_victim, ckpt_victim) {
                (Some((fp, es)), Some((_, cs))) if es <= cs => self.evict_entry(fp),
                (_, Some((job, _))) => self.evict_checkpoint(&job),
                (Some((fp, _)), None) => self.evict_entry(fp),
                (None, None) => break,
            }
        }
    }

    fn evict_entry(&mut self, fp: u64) {
        let e = self.entries.remove(&fp).expect("victim exists");
        self.bytes -= e.bytes;
        self.evictions += 1;
    }

    fn evict_checkpoint(&mut self, job: &str) {
        let c = self.checkpoints.remove(job).expect("victim exists");
        self.bytes -= c.bytes;
        self.ckpt_bytes -= c.bytes;
        self.ckpt_evictions += 1;
    }

    /// Exports the cache counters into `metrics` under `serve.*` names
    /// (counters are monotonic deltas against what the registry already
    /// holds, so exporting repeatedly is safe).
    pub fn export_metrics(&self, metrics: &mut MetricsRegistry) {
        for (name, v) in [
            ("serve.cache.hits", self.hits),
            ("serve.cache.misses", self.misses),
            ("serve.cache.evictions", self.evictions),
            ("serve.checkpoint.evictions", self.ckpt_evictions),
            ("serve.lint.runs", self.lint_runs),
            ("serve.space.hits", self.space_hits),
            ("serve.space.runs", self.space_runs),
        ] {
            let cur = metrics.counter(name);
            metrics.counter_add(name, v.saturating_sub(cur));
        }
        metrics.gauge_set("serve.cache.bytes", self.bytes as f64);
        metrics.gauge_set("serve.cache.entries", self.entries.len() as f64);
        metrics.gauge_set("serve.checkpoint.bytes", self.ckpt_bytes as f64);
        metrics.gauge_set("serve.checkpoint.resident", self.checkpoints.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JobSpec;

    fn entry() -> CacheEntry {
        CacheEntry::new(JobSpec::demo_rc(2, 0).circuit.build().unwrap(), None)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = TopologyCache::new(1 << 20);
        assert!(c.lookup(42).is_none());
        c.insert(42, entry());
        assert!(c.lookup(42).is_some());
        assert!(c.lookup(7).is_none());
        let mut m = MetricsRegistry::new();
        c.export_metrics(&mut m);
        assert_eq!(m.counter("serve.cache.hits"), 1);
        assert_eq!(m.counter("serve.cache.misses"), 2);
        // Re-export does not double count.
        c.export_metrics(&mut m);
        assert_eq!(m.counter("serve.cache.misses"), 2);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let one = entry().bytes();
        // Room for two entries, not three.
        let mut c = TopologyCache::new(2 * one + one / 2);
        c.insert(1, entry());
        c.insert(2, entry());
        assert_eq!(c.len(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(1).is_some());
        c.insert(3, entry());
        assert_eq!(c.len(), 2);
        assert!(c.lookup(2).is_none(), "LRU entry evicted");
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(3).is_some());
        let mut m = MetricsRegistry::new();
        c.export_metrics(&mut m);
        assert_eq!(m.counter("serve.cache.evictions"), 1);
        assert!(c.resident_bytes() <= 2 * one + one / 2);
    }

    /// Regression for the byte accounting under the lane-aware
    /// `approx_bytes`: a stored factor must charge exactly its own
    /// estimate (scalar factors stay f64-sized — widening to a lane
    /// scalar happens in the sweep engine, never in this cache), and
    /// the recharge must be able to trigger eviction.
    #[test]
    fn storing_a_factor_recharges_the_entry_and_respects_the_budget() {
        use ams_net::{IntegrationMethod, SolverBackend, TransientSolver};

        let factor = || {
            let built = JobSpec::demo_rc(6, 0).circuit.build().unwrap();
            let mut tr =
                TransientSolver::new(&built.circuit, IntegrationMethod::Trapezoidal).unwrap();
            tr.backend = SolverBackend::Sparse;
            tr.initialize_dc().unwrap();
            tr.step(1e-9).unwrap();
            tr.symbolic_factor().expect("sparse run exports a factor")
        };
        let f = factor();
        let charge = f.approx_bytes();
        assert!(charge > 0, "factor estimate must be non-trivial");

        let mut c = TopologyCache::new(1 << 20);
        c.insert(1, entry());
        let before = c.resident_bytes();
        c.store_factor(1, f);
        assert_eq!(
            c.resident_bytes(),
            before + charge,
            "store_factor must charge exactly approx_bytes()"
        );
        // A second store is a no-op: no double charge.
        c.store_factor(1, factor());
        assert_eq!(c.resident_bytes(), before + charge);

        // The recharge participates in eviction: a budget with room for
        // two bare entries but not for one entry + factor + another
        // entry evicts the LRU sibling when the factor lands.
        let bare = entry().bytes();
        let mut c = TopologyCache::new(2 * bare + charge / 2);
        c.insert(1, entry());
        c.insert(2, entry());
        assert_eq!(c.len(), 2);
        c.store_factor(1, factor());
        assert_eq!(c.len(), 1, "factor recharge evicted the LRU entry");
        assert!(c.lookup(1).is_some(), "recharged entry survives");
        assert_eq!(c.lookup(1).unwrap().bytes(), bare + charge);
    }

    #[test]
    fn space_verdicts_are_cached_per_fingerprint_pair() {
        let mut c = TopologyCache::new(1);
        assert!(c.space_lookup((1, 2)).is_none());
        c.space_insert((1, 2), Some("space lint rejected: SPC001".into()));
        c.space_insert((1, 3), None);
        // Both polarities replay; neither touches entries or bytes.
        assert_eq!(
            c.space_lookup((1, 2)),
            Some(&Some("space lint rejected: SPC001".to_string()))
        );
        assert_eq!(c.space_lookup((1, 3)), Some(&None));
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
        let mut m = MetricsRegistry::new();
        c.export_metrics(&mut m);
        assert_eq!(m.counter("serve.space.runs"), 2);
        assert_eq!(m.counter("serve.space.hits"), 2);
        // The ordinary lint/cache counters stay untouched.
        assert_eq!(m.counter("serve.lint.runs"), 0);
        assert_eq!(m.counter("serve.cache.hits"), 0);
    }

    #[test]
    fn an_oversized_entry_is_still_admitted_alone() {
        let mut c = TopologyCache::new(1);
        c.insert(9, entry());
        assert_eq!(c.len(), 1);
        assert!(c.lookup(9).is_some());
    }

    fn checkpoint(rows: usize) -> JobCheckpoint {
        JobCheckpoint::new(
            (0..rows)
                .map(|i| (i, vec![1.0, 2.0], ClusterStats::default(), Vec::new()))
                .collect(),
        )
    }

    #[test]
    fn job_checkpoints_share_the_byte_budget_with_topologies() {
        let cp_bytes = checkpoint(4).bytes();
        assert!(cp_bytes > 0);
        let one = entry().bytes();
        // Room for one topology plus one checkpoint, nothing more.
        let mut c = TopologyCache::new(one + cp_bytes + cp_bytes / 2);
        c.insert(1, entry());
        c.checkpoint_insert("job-a", checkpoint(4));
        assert_eq!(c.resident_bytes(), one + cp_bytes);
        assert_eq!(c.checkpoint_count(), 1);

        // A second checkpoint evicts the LRU item — the topology, which
        // is older than job-a's checkpoint.
        c.checkpoint_insert("job-b", checkpoint(4));
        assert_eq!(c.len(), 0, "LRU topology evicted for the checkpoint");
        assert_eq!(c.checkpoint_count(), 2);

        // Taking a checkpoint releases its bytes; a second take misses
        // (it models the evicted-checkpoint path on resume).
        let cp = c.checkpoint_take("job-a").expect("resident checkpoint");
        assert_eq!(cp.done.len(), 4);
        assert!(c.checkpoint_take("job-a").is_none());
        assert_eq!(c.resident_bytes(), cp_bytes);

        // Discard drops without returning, and is a no-op when absent.
        c.checkpoint_discard("job-b");
        c.checkpoint_discard("job-b");
        assert_eq!(c.checkpoint_count(), 0);
        assert_eq!(c.resident_bytes(), 0);

        let mut m = MetricsRegistry::new();
        c.export_metrics(&mut m);
        assert_eq!(m.counter("serve.checkpoint.evictions"), 0);
        assert_eq!(m.counter("serve.cache.evictions"), 1);
        assert_eq!(m.gauge("serve.checkpoint.bytes"), Some(0.0));
    }

    #[test]
    fn checkpoint_eviction_prefers_the_oldest_stamp() {
        let cp_bytes = checkpoint(2).bytes();
        let mut c = TopologyCache::new(2 * cp_bytes + cp_bytes / 2);
        c.checkpoint_insert("old", checkpoint(2));
        c.checkpoint_insert("mid", checkpoint(2));
        // The third checkpoint overflows the budget: "old" goes first,
        // and the inserted one is never its own victim.
        c.checkpoint_insert("new", checkpoint(2));
        assert!(c.checkpoint_take("old").is_none(), "oldest evicted");
        assert!(c.checkpoint_take("mid").is_some());
        assert!(c.checkpoint_take("new").is_some());
        let mut m = MetricsRegistry::new();
        c.export_metrics(&mut m);
        assert_eq!(m.counter("serve.checkpoint.evictions"), 1);
        assert_eq!(m.counter("serve.cache.evictions"), 0);
    }
}
